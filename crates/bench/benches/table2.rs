//! Table 2 regeneration bench: the full static routing-option analysis
//! (it is cheap enough to bench whole — 10 topologies per class).

use criterion::{criterion_group, criterion_main, Criterion};
use iba_experiments::table2::{run, Table2Config};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("paper_16_32_switches", |b| {
        let cfg = Table2Config {
            sizes: vec![16, 32],
            ..Table2Config::paper(5)
        };
        b.iter(|| {
            let rows = run(&cfg).unwrap();
            assert_eq!(rows.len(), 2 * 2 * 3);
            black_box(rows)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
