//! Table 1 regeneration bench: one throughput-increase factor (saturation
//! of 100 % adaptive over deterministic) on a small ensemble — the unit
//! cell of the table. (`iba-experiments --bin table1` produces the full
//! matrix.)

use criterion::{criterion_group, criterion_main, Criterion};
use iba_core::SimTime;
use iba_experiments::fidelity::geometric_grid;
use iba_experiments::harness::{build_ensemble, throughput_factors};
use iba_routing::RoutingConfig;
use iba_sim::SimConfig;
use iba_topology::IrregularConfig;
use iba_workloads::WorkloadSpec;
use std::hint::black_box;

fn bench_table1_cell(c: &mut Criterion) {
    let ensemble = build_ensemble(
        IrregularConfig::paper(8, 7),
        2,
        RoutingConfig::two_options(),
    )
    .unwrap();
    let grid = geometric_grid(0.02, 0.45, 5);
    let mut cfg = SimConfig::paper(9);
    cfg.warmup = SimTime::from_us(15);
    cfg.measure_window = SimTime::from_us(60);

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("factor_cell_8sw_uniform_32B", |b| {
        b.iter(|| {
            let factors = throughput_factors(
                &ensemble,
                WorkloadSpec::uniform32(0.01),
                cfg,
                &grid,
                1.0,
                0.0,
            )
            .unwrap();
            assert!(factors.iter().all(|&f| f > 0.5));
            black_box(factors)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_table1_cell);
criterion_main!(benches);
