//! Figure 3 regeneration bench: one latency/accepted-traffic sweep at a
//! deterministic and a fully adaptive operating point, on one 8-switch
//! ensemble member — the smallest unit the figure is assembled from.
//! (`iba-experiments --bin fig3` produces the complete figure.)

use criterion::{criterion_group, criterion_main, Criterion};
use iba_core::SimTime;
use iba_experiments::fidelity::geometric_grid;
use iba_experiments::harness::{build_ensemble, sweep_curve};
use iba_routing::RoutingConfig;
use iba_sim::SimConfig;
use iba_topology::IrregularConfig;
use iba_workloads::WorkloadSpec;
use std::hint::black_box;

fn bench_fig3_unit(c: &mut Criterion) {
    let member = build_ensemble(
        IrregularConfig::paper(8, 5),
        1,
        RoutingConfig::two_options(),
    )
    .unwrap()
    .remove(0);
    let grid = geometric_grid(0.01, 0.45, 6);
    let mut cfg = SimConfig::paper(3);
    cfg.warmup = SimTime::from_us(15);
    cfg.measure_window = SimTime::from_us(60);

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for (label, fraction) in [("deterministic", 0.0), ("fully_adaptive", 1.0)] {
        g.bench_function(format!("sweep_8sw_{label}"), |b| {
            b.iter(|| {
                let spec = WorkloadSpec::uniform32(0.01).with_adaptive_fraction(fraction);
                let curve =
                    sweep_curve(&member.topology, &member.routing, spec, cfg, &grid).unwrap();
                assert!(curve.saturation_throughput().unwrap() > 0.0);
                black_box(curve)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig3_unit);
criterion_main!(benches);
