//! Ablation bench: the §5.2.2 routing-option sweep (1 vs 2 options) at
//! miniature scale — the unit the `ablation` binary scales up.

use criterion::{criterion_group, criterion_main, Criterion};
use iba_core::SimTime;
use iba_experiments::fidelity::geometric_grid;
use iba_experiments::harness::{build_ensemble, find_saturation};
use iba_routing::RoutingConfig;
use iba_sim::SimConfig;
use iba_topology::IrregularConfig;
use iba_workloads::WorkloadSpec;
use std::hint::black_box;

fn bench_option_ablation(c: &mut Criterion) {
    let grid = geometric_grid(0.02, 0.45, 5);
    let mut cfg = SimConfig::paper(13);
    cfg.warmup = SimTime::from_us(15);
    cfg.measure_window = SimTime::from_us(60);

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for &options in &[1u16, 2, 4] {
        let member = build_ensemble(
            IrregularConfig::paper_connected(8, 3),
            1,
            RoutingConfig::with_options(options),
        )
        .unwrap()
        .remove(0);
        let fraction = if options >= 2 { 1.0 } else { 0.0 };
        g.bench_function(format!("saturation_8sw_{options}_options"), |b| {
            b.iter(|| {
                let sat = find_saturation(
                    &member.topology,
                    &member.routing,
                    WorkloadSpec::uniform32(0.01).with_adaptive_fraction(fraction),
                    cfg,
                    &grid,
                )
                .unwrap();
                assert!(sat > 0.0);
                black_box(sat)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_option_ablation);
criterion_main!(benches);
