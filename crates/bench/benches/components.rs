//! Component benchmarks: the simulator's hot paths and the construction
//! pipeline (topology generation, up*/down* + minimal routing, table
//! compilation). These guard the measurement instrument's performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iba_bench::BenchFixture;
use iba_core::SimTime;
use iba_routing::{FaRouting, RoutingConfig};
use iba_sim::{Network, SimConfig};
use iba_topology::IrregularConfig;
use iba_workloads::WorkloadSpec;
use std::hint::black_box;

fn bench_topology_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_generate");
    for &n in &[8usize, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(IrregularConfig::paper(n, seed).generate().unwrap())
            });
        });
    }
    g.finish();
}

fn bench_routing_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("fa_routing_build");
    for &n in &[8usize, 16, 32, 64] {
        let topo = IrregularConfig::paper(n, 1).generate().unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            b.iter(|| black_box(FaRouting::build(topo, RoutingConfig::two_options()).unwrap()));
        });
    }
    g.finish();
}

fn bench_table_lookup(c: &mut Criterion) {
    let topo = IrregularConfig::paper(64, 1).generate().unwrap();
    let fa = FaRouting::build(&topo, RoutingConfig::with_options(4)).unwrap();
    let dlids: Vec<_> = topo.host_ids().map(|h| fa.dlid(h, true).unwrap()).collect();
    c.bench_function("forwarding_table_lookup_adaptive", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % dlids.len();
            black_box(fa.route(iba_core::SwitchId(0), dlids[i]).unwrap())
        });
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_300us");
    g.sample_size(10);
    for &n in &[8usize, 16] {
        let fixture = BenchFixture::paper(n, 2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &fixture, |b, f| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut cfg = SimConfig::paper(seed);
                cfg.warmup = SimTime::from_us(20);
                cfg.measure_window = SimTime::from_us(80);
                black_box(f.simulate(WorkloadSpec::uniform32(0.02), cfg))
            });
        });
    }
    g.finish();
}

fn bench_arbitrate_pass(c: &mut Criterion) {
    // One full §4.3 arbitration sweep over a loaded 32-switch network:
    // advance the simulation into its steady state, then probe
    // `arbitrate_pass` with simulated time frozen. After the first probe
    // the reachable grants are exhausted, so the steady-state figure is
    // the no-grant sweep — candidate collection plus feasibility checks
    // over every occupied VL buffer — which is exactly the pass the event
    // loop runs most often in a busy fabric. The hot-path-allocation rule
    // (DESIGN.md) keeps this pass heap-allocation-free.
    let topo = IrregularConfig::paper(32, 1).generate().unwrap();
    let routing = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
    let spec = WorkloadSpec::uniform32(0.02);
    let mut net = Network::builder(&topo, &routing)
        .workload(spec)
        .config(SimConfig::paper(3))
        .build()
        .unwrap();
    net.advance(200_000);
    c.bench_function("arbitrate_pass_32sw", |b| {
        b.iter(|| black_box(net.arbitrate_pass()));
    });
}

fn bench_event_queues(c: &mut Criterion) {
    use iba_core::SimTime as T;
    // A simulation-shaped workload: pop one event, schedule 1-2 nearby.
    let mut g = c.benchmark_group("event_queue_hold");
    for &n in &[1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("binary_heap", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = iba_engine::EventQueue::new();
                for i in 0..64u64 {
                    q.schedule(T::from_ns(i * 97), i);
                }
                let mut done = 0usize;
                while let Some((t, i)) = q.pop() {
                    done += 1;
                    if done < n {
                        q.schedule(t.plus_ns(128 + (i % 7) * 33), i + 1);
                        if i % 3 == 0 {
                            q.schedule(t.plus_ns(401), i + 2);
                        }
                    }
                }
                black_box(done)
            });
        });
        g.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = iba_engine::CalendarQueue::new();
                for i in 0..64u64 {
                    q.schedule(T::from_ns(i * 97), i);
                }
                let mut done = 0usize;
                while let Some((t, i)) = q.pop() {
                    done += 1;
                    if done < n {
                        q.schedule(t.plus_ns(128 + (i % 7) * 33), i + 1);
                        if i % 3 == 0 {
                            q.schedule(t.plus_ns(401), i + 2);
                        }
                    }
                }
                black_box(done)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_topology_generation,
    bench_routing_build,
    bench_table_lookup,
    bench_simulation,
    bench_arbitrate_pass,
    bench_event_queues
);
criterion_main!(benches);
