//! End-to-end simulator throughput benchmark: `BENCH_sim.json`.
//!
//! Runs the canonical perf workload — a 32-switch irregular paper
//! network under uniform traffic — a few times per event-queue backend,
//! in four instrumentation modes: everything off (the default, and the
//! number the performance work in this repository is measured by), the
//! telemetry probes armed at the default 1 µs cadence, the flight
//! recorder armed with default rings + watchdog, and the fault
//! machinery armed with an empty schedule plus a zero-probability
//! corruption hook (bounding each hook family's overhead separately —
//! the armed-but-empty fault row must match the bare row). Reports
//! events/second (median over
//! runs) as machine-readable JSON; see DESIGN.md ("Performance") for
//! how to read it.
//!
//! Usage: `cargo run --release -p iba-bench --bin bench_sim [out.json]`

use iba_bench::BenchFixture;
use iba_core::Json;
use iba_sim::{QueueBackend, RecorderOpts, SimConfig, TelemetryOpts};
use iba_workloads::WorkloadSpec;
use std::time::Instant;

const SWITCHES: usize = 32;
const TOPOLOGY_SEED: u64 = 1;
const RUNS: usize = 5;
/// Moderate uniform load (bytes/ns/host): busy but below saturation, so
/// the run exercises arbitration and flow control rather than queueing
/// pathology.
const INJECTION_RATE: f64 = 0.02;

struct Sample {
    events: u64,
    delivered: u64,
    wall_s: f64,
}

/// One (telemetry, recorder) instrumentation combination of the sweep.
#[derive(Clone, Copy)]
enum Mode {
    Bare,
    Telemetry,
    Recorder,
    FaultsArmed,
}

impl Mode {
    fn telemetry(self) -> &'static str {
        match self {
            Mode::Telemetry => "enabled",
            _ => "disabled",
        }
    }

    fn recorder(self) -> &'static str {
        match self {
            Mode::Recorder => "enabled",
            _ => "disabled",
        }
    }

    fn faults(self) -> &'static str {
        match self {
            Mode::FaultsArmed => "armed-empty",
            _ => "disabled",
        }
    }
}

fn run_once(fixture: &BenchFixture, backend: QueueBackend, seed: u64, mode: Mode) -> Sample {
    let mut cfg = SimConfig::paper(seed);
    cfg.queue_backend = backend;
    let spec = WorkloadSpec::uniform32(INJECTION_RATE);
    let t0 = Instant::now();
    let result = match mode {
        Mode::Bare => fixture.simulate(spec, cfg),
        Mode::Telemetry => fixture.simulate_instrumented(spec, cfg, TelemetryOpts::default()),
        Mode::Recorder => fixture.simulate_recorded(spec, cfg, RecorderOpts::default()),
        Mode::FaultsArmed => fixture.simulate_fault_armed(spec, cfg),
    };
    let wall_s = t0.elapsed().as_secs_f64();
    Sample {
        events: result.events,
        delivered: result.delivered,
        wall_s,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let fixture = BenchFixture::paper(SWITCHES, TOPOLOGY_SEED);

    let mut results = Vec::new();
    for (backend, which) in [
        ("binary_heap", QueueBackend::BinaryHeap),
        ("calendar", QueueBackend::Calendar),
    ] {
        for mode in [
            Mode::Bare,
            Mode::Telemetry,
            Mode::Recorder,
            Mode::FaultsArmed,
        ] {
            let mut rates = Vec::with_capacity(RUNS);
            let mut last = None;
            for run in 0..RUNS {
                let s = run_once(&fixture, which, 100 + run as u64, mode);
                eprintln!(
                    "{backend} (telemetry {}, recorder {}, faults {}) run {run}: {} events in {:.3}s = {:.0} events/s",
                    mode.telemetry(),
                    mode.recorder(),
                    mode.faults(),
                    s.events,
                    s.wall_s,
                    s.events as f64 / s.wall_s
                );
                rates.push(s.events as f64 / s.wall_s);
                last = Some(s);
            }
            let last = last.expect("RUNS > 0");
            let eps = median(&mut rates);
            results.push(Json::obj([
                ("backend", Json::from(backend)),
                ("telemetry", Json::from(mode.telemetry())),
                ("recorder", Json::from(mode.recorder())),
                ("faults", Json::from(mode.faults())),
                ("events_per_sec", Json::from(eps.round())),
                ("events_last_run", Json::from(last.events)),
                ("delivered_last_run", Json::from(last.delivered)),
                ("wall_s_last_run", Json::from(last.wall_s)),
            ]));
        }
    }

    let json = Json::obj([
        ("benchmark", Json::from("sim_events_per_sec")),
        ("switches", Json::from(SWITCHES)),
        ("topology_seed", Json::from(TOPOLOGY_SEED)),
        ("injection_rate_bytes_per_ns", Json::from(INJECTION_RATE)),
        ("runs_per_backend", Json::from(RUNS)),
        ("results", Json::Arr(results)),
    ])
    .to_string_pretty();
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
