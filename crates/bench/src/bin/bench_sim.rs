//! End-to-end simulator throughput benchmark: `BENCH_sim.json`.
//!
//! Runs the canonical perf workload — a 32-switch irregular paper
//! network under uniform traffic — a few times per event-queue backend
//! and reports events/second (median over runs) as machine-readable
//! JSON. This is the number the performance work in this repository is
//! measured by; see DESIGN.md ("Performance") for how to read it.
//!
//! Usage: `cargo run --release -p iba-bench --bin bench_sim [out.json]`

use iba_bench::BenchFixture;
use iba_sim::{QueueBackend, SimConfig};
use iba_workloads::WorkloadSpec;
use std::time::Instant;

const SWITCHES: usize = 32;
const TOPOLOGY_SEED: u64 = 1;
const RUNS: usize = 5;
/// Moderate uniform load (bytes/ns/host): busy but below saturation, so
/// the run exercises arbitration and flow control rather than queueing
/// pathology.
const INJECTION_RATE: f64 = 0.02;

struct Sample {
    events: u64,
    delivered: u64,
    wall_s: f64,
}

fn run_once(fixture: &BenchFixture, backend: QueueBackend, seed: u64) -> Sample {
    let mut cfg = SimConfig::paper(seed);
    cfg.queue_backend = backend;
    let spec = WorkloadSpec::uniform32(INJECTION_RATE);
    let t0 = Instant::now();
    let result = fixture.simulate(spec, cfg);
    let wall_s = t0.elapsed().as_secs_f64();
    Sample {
        events: result.events,
        delivered: result.delivered,
        wall_s,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let fixture = BenchFixture::paper(SWITCHES, TOPOLOGY_SEED);

    let mut backends_json = Vec::new();
    for (backend, which) in [
        ("binary_heap", QueueBackend::BinaryHeap),
        ("calendar", QueueBackend::Calendar),
    ] {
        let mut rates = Vec::with_capacity(RUNS);
        let mut last = None;
        for run in 0..RUNS {
            let s = run_once(&fixture, which, 100 + run as u64);
            eprintln!(
                "{backend} run {run}: {} events in {:.3}s = {:.0} events/s",
                s.events,
                s.wall_s,
                s.events as f64 / s.wall_s
            );
            rates.push(s.events as f64 / s.wall_s);
            last = Some(s);
        }
        let last = last.expect("RUNS > 0");
        let eps = median(&mut rates);
        backends_json.push(format!(
            concat!(
                "    {{\n",
                "      \"backend\": \"{}\",\n",
                "      \"events_per_sec\": {:.0},\n",
                "      \"events_last_run\": {},\n",
                "      \"delivered_last_run\": {},\n",
                "      \"wall_s_last_run\": {:.6}\n",
                "    }}"
            ),
            backend, eps, last.events, last.delivered, last.wall_s
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sim_events_per_sec\",\n",
            "  \"switches\": {},\n",
            "  \"topology_seed\": {},\n",
            "  \"injection_rate_bytes_per_ns\": {},\n",
            "  \"runs_per_backend\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SWITCHES,
        TOPOLOGY_SEED,
        INJECTION_RATE,
        RUNS,
        backends_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
