//! End-to-end simulator throughput benchmark: `BENCH_sim.json`.
//!
//! Two sweeps:
//!
//! * **instrumentation sweep** — the canonical perf workload (a
//!   32-switch irregular paper network under uniform traffic, serial
//!   engine) a few times per event-queue backend, in four
//!   instrumentation modes: everything off (the default, and the number
//!   the performance work in this repository is measured by), the
//!   telemetry probes armed at the default 1 µs cadence, the flight
//!   recorder armed with default rings + watchdog, and the fault
//!   machinery armed with an empty schedule plus a zero-probability
//!   corruption hook (bounding each hook family's overhead separately —
//!   the armed-but-empty fault row must match the bare row), and the
//!   metrics plane armed (engine profiling + post-run registry fill).
//!   These rows carry `"shards": 1` and are the serial regression
//!   baseline; the everything-off row (`"metrics": "disabled"`) is the
//!   one perf work is gated on.
//!
//! * **scaling sweep** — fabric sizes 32/64/128/256 crossed with shard
//!   counts 1/2/4/8 on the parallel engine (threads = shards, capped at
//!   the host's available parallelism), bare instrumentation,
//!   binary-heap backend. `"threads"` records the cap actually applied:
//!   on a single-core host the rows measure the conservative window
//!   protocol's overhead, not its speedup.
//!
//! Reports events/second (median over runs) as machine-readable JSON;
//! see DESIGN.md ("Performance") for how to read it.
//!
//! Usage: `cargo run --release -p iba-bench --bin bench_sim [out.json]`

use iba_bench::BenchFixture;
use iba_core::Json;
use iba_sim::{QueueBackend, RecorderOpts, SimConfig, TelemetryOpts};
use iba_workloads::WorkloadSpec;
use std::time::Instant;

const SWITCHES: usize = 32;
const TOPOLOGY_SEED: u64 = 1;
const RUNS: usize = 5;
/// Fabric sizes of the shard-scaling sweep (the first doubles as the
/// serial baseline size above).
const SCALE_SWITCHES: [usize; 4] = [32, 64, 128, 256];
const SCALE_SHARDS: [usize; 4] = [1, 2, 4, 8];
const SCALE_RUNS: usize = 3;
/// Moderate uniform load (bytes/ns/host): busy but below saturation, so
/// the run exercises arbitration and flow control rather than queueing
/// pathology.
const INJECTION_RATE: f64 = 0.02;

struct Sample {
    events: u64,
    delivered: u64,
    wall_s: f64,
}

/// One (telemetry, recorder) instrumentation combination of the sweep.
#[derive(Clone, Copy)]
enum Mode {
    Bare,
    Telemetry,
    Recorder,
    FaultsArmed,
    Metrics,
}

impl Mode {
    fn telemetry(self) -> &'static str {
        match self {
            Mode::Telemetry => "enabled",
            _ => "disabled",
        }
    }

    fn recorder(self) -> &'static str {
        match self {
            Mode::Recorder => "enabled",
            _ => "disabled",
        }
    }

    fn faults(self) -> &'static str {
        match self {
            Mode::FaultsArmed => "armed-empty",
            _ => "disabled",
        }
    }

    fn metrics(self) -> &'static str {
        match self {
            Mode::Metrics => "enabled",
            _ => "disabled",
        }
    }
}

fn run_once(fixture: &BenchFixture, backend: QueueBackend, seed: u64, mode: Mode) -> Sample {
    let mut cfg = SimConfig::paper(seed);
    cfg.queue_backend = backend;
    let spec = WorkloadSpec::uniform32(INJECTION_RATE);
    let t0 = Instant::now();
    let result = match mode {
        Mode::Bare => fixture.simulate(spec, cfg),
        Mode::Telemetry => fixture.simulate_instrumented(spec, cfg, TelemetryOpts::default()),
        Mode::Recorder => fixture.simulate_recorded(spec, cfg, RecorderOpts::default()),
        Mode::FaultsArmed => fixture.simulate_fault_armed(spec, cfg),
        Mode::Metrics => fixture.simulate_metered(spec, cfg),
    };
    let wall_s = t0.elapsed().as_secs_f64();
    Sample {
        events: result.events,
        delivered: result.delivered,
        wall_s,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let fixture = BenchFixture::paper(SWITCHES, TOPOLOGY_SEED);

    let mut results = Vec::new();
    for (backend, which) in [
        ("binary_heap", QueueBackend::BinaryHeap),
        ("calendar", QueueBackend::Calendar),
    ] {
        for mode in [
            Mode::Bare,
            Mode::Telemetry,
            Mode::Recorder,
            Mode::FaultsArmed,
            Mode::Metrics,
        ] {
            let mut rates = Vec::with_capacity(RUNS);
            let mut last = None;
            for run in 0..RUNS {
                let s = run_once(&fixture, which, 100 + run as u64, mode);
                eprintln!(
                    "{backend} (telemetry {}, recorder {}, faults {}, metrics {}) run {run}: {} events in {:.3}s = {:.0} events/s",
                    mode.telemetry(),
                    mode.recorder(),
                    mode.faults(),
                    mode.metrics(),
                    s.events,
                    s.wall_s,
                    s.events as f64 / s.wall_s
                );
                rates.push(s.events as f64 / s.wall_s);
                last = Some(s);
            }
            let last = last.expect("RUNS > 0");
            let eps = median(&mut rates);
            results.push(Json::obj([
                ("backend", Json::from(backend)),
                ("telemetry", Json::from(mode.telemetry())),
                ("recorder", Json::from(mode.recorder())),
                ("faults", Json::from(mode.faults())),
                ("metrics", Json::from(mode.metrics())),
                ("shards", Json::from(1u64)),
                ("events_per_sec", Json::from(eps.round())),
                ("events_last_run", Json::from(last.events)),
                ("delivered_last_run", Json::from(last.delivered)),
                ("wall_s_last_run", Json::from(last.wall_s)),
            ]));
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling = Vec::new();
    for switches in SCALE_SWITCHES {
        let fixture = BenchFixture::paper(switches, TOPOLOGY_SEED);
        for shards in SCALE_SHARDS {
            let threads = shards.min(cores);
            let mut rates = Vec::with_capacity(SCALE_RUNS);
            let mut last = None;
            for run in 0..SCALE_RUNS {
                let mut cfg = SimConfig::paper(100 + run as u64);
                cfg.queue_backend = QueueBackend::BinaryHeap;
                let spec = WorkloadSpec::uniform32(INJECTION_RATE);
                let t0 = Instant::now();
                let result = fixture.simulate_sharded(spec, cfg, shards, threads);
                let wall_s = t0.elapsed().as_secs_f64();
                eprintln!(
                    "{switches} switches, {shards} shards, {threads} threads, run {run}: \
                     {} events in {:.3}s = {:.0} events/s",
                    result.events,
                    wall_s,
                    result.events as f64 / wall_s
                );
                rates.push(result.events as f64 / wall_s);
                last = Some(Sample {
                    events: result.events,
                    delivered: result.delivered,
                    wall_s,
                });
            }
            let last = last.expect("SCALE_RUNS > 0");
            let eps = median(&mut rates);
            scaling.push(Json::obj([
                ("switches", Json::from(switches)),
                ("shards", Json::from(shards)),
                ("threads", Json::from(threads)),
                ("backend", Json::from("binary_heap")),
                ("metrics", Json::from("disabled")),
                ("events_per_sec", Json::from(eps.round())),
                ("events_last_run", Json::from(last.events)),
                ("delivered_last_run", Json::from(last.delivered)),
                ("wall_s_last_run", Json::from(last.wall_s)),
            ]));
        }
    }

    let json = Json::obj([
        ("benchmark", Json::from("sim_events_per_sec")),
        ("switches", Json::from(SWITCHES)),
        ("topology_seed", Json::from(TOPOLOGY_SEED)),
        ("injection_rate_bytes_per_ns", Json::from(INJECTION_RATE)),
        ("runs_per_backend", Json::from(RUNS)),
        ("available_parallelism", Json::from(cores)),
        ("results", Json::Arr(results)),
        ("shard_scaling", Json::Arr(scaling)),
    ])
    .to_string_pretty();
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
