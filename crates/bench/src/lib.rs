//! # iba-bench
//!
//! Criterion benchmarks for the iba-far workspace. Two families:
//!
//! * **component benches** — the simulator's hot paths (events/second on
//!   a fixed workload) and the routing/topology construction pipeline,
//!   guarding against performance regressions of the measurement
//!   instrument itself;
//! * **experiment benches** — one per paper artifact (`fig3`, `table1`,
//!   `table2`, ablations), running tightly scaled-down versions of the
//!   real experiment code so the full regeneration pipeline stays
//!   exercised and timed by `cargo bench`.
//!
//! The *results* of the experiments (the numbers the paper reports) come
//! from the `iba-experiments` binaries; these benches measure that the
//! machinery runs and how fast.

#![warn(missing_docs)]

use iba_routing::{FaRouting, RoutingConfig};
use iba_sim::{Network, RecorderOpts, RecoveryPolicy, RunResult, SimConfig, TelemetryOpts};
use iba_topology::{IrregularConfig, Topology};
use iba_workloads::{FaultSchedule, WorkloadSpec};

/// A prepared (topology, routing) pair for simulation benches.
pub struct BenchFixture {
    /// The wired topology.
    pub topology: Topology,
    /// Compiled FA routing.
    pub routing: FaRouting,
}

impl BenchFixture {
    /// Build the standard fixture: an irregular paper-style network.
    pub fn paper(switches: usize, seed: u64) -> BenchFixture {
        let topology = IrregularConfig::paper(switches, seed)
            .generate()
            .expect("valid paper configuration");
        let routing =
            FaRouting::build(&topology, RoutingConfig::two_options()).expect("routable topology");
        BenchFixture { topology, routing }
    }

    /// Run one simulation on the fixture.
    pub fn simulate(&self, spec: WorkloadSpec, cfg: SimConfig) -> RunResult {
        Network::builder(&self.topology, &self.routing)
            .workload(spec)
            .config(cfg)
            .build()
            .expect("consistent setup")
            .run()
    }

    /// Run one simulation on the parallel engine: the fabric split into
    /// `shards` partitions advanced in conservative lookahead windows by
    /// `threads` worker threads (`shards = 1` routes through the serial
    /// engine).
    pub fn simulate_sharded(
        &self,
        spec: WorkloadSpec,
        cfg: SimConfig,
        shards: usize,
        threads: usize,
    ) -> RunResult {
        Network::builder(&self.topology, &self.routing)
            .workload(spec)
            .config(cfg)
            .shards(shards)
            .threads(threads)
            .build()
            .expect("consistent setup")
            .run()
    }

    /// Run one simulation with the telemetry probes armed (in-memory
    /// sink) — the instrumented side of the hook-overhead benchmark.
    pub fn simulate_instrumented(
        &self,
        spec: WorkloadSpec,
        cfg: SimConfig,
        opts: TelemetryOpts,
    ) -> RunResult {
        Network::builder(&self.topology, &self.routing)
            .workload(spec)
            .config(cfg)
            .telemetry(opts)
            .build()
            .expect("consistent setup")
            .run()
    }

    /// Run one simulation with the fault machinery armed but idle: an
    /// empty fault schedule plus a zero-probability corruption hook.
    /// Nothing ever fires, so this must match the bare run's throughput
    /// — the armed-but-empty-hooks side of the overhead benchmark.
    pub fn simulate_fault_armed(&self, spec: WorkloadSpec, cfg: SimConfig) -> RunResult {
        let schedule = FaultSchedule::new(Vec::new()).expect("empty schedule is valid");
        Network::builder(&self.topology, &self.routing)
            .workload(spec)
            .config(cfg)
            .faults(&schedule, RecoveryPolicy::SmResweep, 2_000)
            .corruption(0.0)
            .build()
            .expect("consistent setup")
            .run()
    }

    /// Run one simulation with the metrics plane armed: engine
    /// profiling on, registry filled post-run (and discarded) — the
    /// observability side of the hook-overhead benchmark. The disabled
    /// counterpart is [`Self::simulate`]: its hot path carries only a
    /// `bool` check.
    pub fn simulate_metered(&self, spec: WorkloadSpec, cfg: SimConfig) -> RunResult {
        let mut net = Network::builder(&self.topology, &self.routing)
            .workload(spec)
            .config(cfg)
            .metrics()
            .build()
            .expect("consistent setup");
        let result = net.run();
        let _ = net.metrics_registry(&result);
        result
    }

    /// Run one simulation with the flight recorder armed — the
    /// always-on-capture side of the hook-overhead benchmark.
    pub fn simulate_recorded(
        &self,
        spec: WorkloadSpec,
        cfg: SimConfig,
        opts: RecorderOpts,
    ) -> RunResult {
        Network::builder(&self.topology, &self.routing)
            .workload(spec)
            .config(cfg)
            .recorder(opts)
            .build()
            .expect("consistent setup")
            .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_simulates() {
        let f = BenchFixture::paper(8, 1);
        let r = f.simulate(WorkloadSpec::uniform32(0.01), SimConfig::test(1));
        assert!(r.delivered > 0);
    }
}
