//! Golden pin: FA-over-up\*/down\* forwarding tables are byte-identical
//! to the pre-`EscapeEngine`-refactor output.
//!
//! The digests below were captured from the tree *before* the escape
//! layer was extracted behind the `EscapeEngine` trait. Any refactor of
//! `FaRouting`, `UpDownRouting` or the LID interleaving that changes a
//! single programmed entry on these fixed topologies fails this test —
//! the trait boundary must be a pure reshuffle, not a behaviour change.

use iba_core::SwitchId;
use iba_routing::{FaRouting, RoutingConfig};
use iba_topology::{Topology, TopologySpec};

/// FNV-1a over every switch's linear table view, in switch order.
/// Unprogrammed entries hash as 0xFF, programmed ones as `port + 1`, so
/// hole patterns are pinned too.
fn lft_digest(topo: &Topology, fa: &FaRouting) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for s in topo.switch_ids() {
        for entry in fa.table(s).linear_view() {
            match entry {
                Some(p) => eat(p.0.wrapping_add(1)),
                None => eat(0xFF),
            }
        }
    }
    h
}

/// (switches, topology seed, table options, root override, expected digest)
const GOLDEN: &[(usize, u64, u16, Option<u16>, u64)] = &[
    (8, 3, 2, None, 0x991e5859010c0484),
    (16, 42, 2, None, 0xb0ac371bf2337c6b),
    (16, 42, 4, None, 0xb9f5cbc013756e6e),
    (32, 7, 2, None, 0x406d20f7d4c38da4),
    (32, 7, 4, Some(5), 0x3972eb6435317fa0),
    (64, 11, 2, None, 0xbf92ece6983756c4),
];

#[test]
fn fa_over_updown_lfts_match_pre_refactor_bytes() {
    let mut failures = Vec::new();
    for &(n, seed, options, root, expected) in GOLDEN {
        let topo = TopologySpec::Irregular {
            switches: n,
            inter_switch_links: 4,
            hosts_per_switch: 4,
        }
        .generate(seed)
        .unwrap();
        let config = RoutingConfig {
            table_options: options,
            seed: 0,
            root: root.map(SwitchId),
        };
        let fa = FaRouting::build(&topo, config).unwrap();
        let got = lft_digest(&topo, &fa);
        if got != expected {
            failures.push(format!(
                "    ({n}, {seed}, {options}, {root:?}, {got:#018x}),"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "LFT digests diverged from the pre-refactor pin; actual values:\n{}",
        failures.join("\n")
    );
}

/// The regular shapes are pinned too (the `TopologySpec` consolidation
/// must not perturb generator wiring order).
#[test]
fn regular_shape_lfts_match_pre_refactor_bytes() {
    let cases: &[(TopologySpec, u64)] = &[
        (
            TopologySpec::Ring {
                switches: 8,
                hosts_per_switch: 2,
            },
            0x7507ec3e6df5613c,
        ),
        (
            TopologySpec::Torus2D {
                rows: 4,
                cols: 4,
                hosts_per_switch: 2,
            },
            0xc8b9473f5a05edb3,
        ),
        (
            TopologySpec::Hypercube {
                dim: 3,
                hosts_per_switch: 2,
            },
            0xd6ccab3a4eeacbe0,
        ),
        (
            TopologySpec::FullMesh {
                switches: 6,
                hosts_per_switch: 2,
            },
            0x1130c1989397c839,
        ),
    ];
    let mut failures = Vec::new();
    for (spec, expected) in cases {
        let name = spec.name();
        let topo: Topology = spec.generate(0).unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
        let got = lft_digest(&topo, &fa);
        if got != *expected {
            failures.push(format!("    (\"{name}\", ..., {got:#018x}),"));
        }
    }
    assert!(
        failures.is_empty(),
        "regular-shape LFT digests diverged; actual values:\n{}",
        failures.join("\n")
    );
}
