//! The engine-zoo contract: every [`EscapeEngine`] in the tree, on
//! every topology shape it claims, must produce escape chains the
//! channel-dependency certifier accepts — at the engine level
//! (`certify_engine`) and through the full LMC-interleaved FA tables
//! (`check_escape_routes` over the materialized escape offset).
//! Plus the determinism pin for the up\*/down\* root selection that
//! `UpDownRouting::build` documents.

use iba_core::SwitchId;
use iba_routing::{
    certify_engine, check_escape_routes, EscapeEngine, FaRouting, FullMeshRouting, OutflankRouting,
    RoutingConfig, UpDownRouting,
};
use iba_topology::{Topology, TopologySpec};
use proptest::prelude::*;

/// Certify the escape offset of fully built FA tables: the exact
/// next-hop function the simulator's in-run certification uses.
fn certify_fa_tables<E: EscapeEngine>(topo: &Topology, fa: &FaRouting<E>) {
    check_escape_routes(topo, |s, h| {
        let dlid = fa.dlid(h, false).ok()?;
        fa.route_shared(s, dlid).ok().map(|r| r.escape)
    })
    .unwrap_or_else(|e| panic!("{} escape tables not certifiable: {e}", E::NAME));
}

/// The shapes every engine must handle (up\*/down\* claims all of them).
fn universal_specs() -> Vec<TopologySpec> {
    vec![
        TopologySpec::Irregular {
            switches: 8,
            inter_switch_links: 3,
            hosts_per_switch: 2,
        },
        TopologySpec::Irregular {
            switches: 16,
            inter_switch_links: 4,
            hosts_per_switch: 4,
        },
        TopologySpec::Ring {
            switches: 6,
            hosts_per_switch: 1,
        },
        TopologySpec::Chain {
            switches: 5,
            hosts_per_switch: 1,
        },
        TopologySpec::Mesh2D {
            rows: 3,
            cols: 4,
            hosts_per_switch: 1,
        },
        TopologySpec::Torus2D {
            rows: 4,
            cols: 4,
            hosts_per_switch: 2,
        },
        TopologySpec::Hypercube {
            dim: 3,
            hosts_per_switch: 1,
        },
        TopologySpec::FullMesh {
            switches: 6,
            hosts_per_switch: 2,
        },
        TopologySpec::Dragonfly {
            groups: 5,
            switches_per_group: 4,
            global_links_per_switch: 1,
            hosts_per_switch: 2,
        },
    ]
}

#[test]
fn roots_are_deterministic_across_topology_specs() {
    // The documented rule: minimum eccentricity, lowest id among ties.
    // Two independent generations of the same spec must elect the same
    // root, and that root must satisfy the rule computed from scratch.
    for spec in universal_specs() {
        let a = spec.generate(7).unwrap();
        let b = spec.generate(7).unwrap();
        let ra = UpDownRouting::build(&a).unwrap().root();
        let rb = UpDownRouting::build(&b).unwrap().root();
        assert_eq!(ra, rb, "{}: root not reproducible", spec.name());

        let dist = a.switch_distances();
        let ecc = |s: usize| *dist[s].iter().max().unwrap();
        let best = (0..a.num_switches()).map(ecc).min().unwrap();
        assert_eq!(
            ecc(ra.index()),
            best,
            "{}: root is not minimum-eccentricity",
            spec.name()
        );
        let lowest_tied = (0..a.num_switches()).find(|&s| ecc(s) == best).unwrap();
        assert_eq!(
            ra,
            SwitchId(lowest_tied as u16),
            "{}: tie not broken towards the lowest id",
            spec.name()
        );
    }
}

#[test]
fn updown_certifies_on_every_spec() {
    for spec in universal_specs() {
        let topo = spec.generate(11).unwrap();
        let rt = UpDownRouting::build(&topo).unwrap();
        certify_engine(&topo, &rt).unwrap_or_else(|e| panic!("updown on {}: {e}", spec.name()));
    }
}

#[test]
fn outflank_certifies_at_scale() {
    // 64-switch torus: the headline zoo size, plus a rectangular one.
    for (rows, cols) in [(8, 8), (4, 6)] {
        let topo = TopologySpec::Torus2D {
            rows,
            cols,
            hosts_per_switch: 2,
        }
        .generate(0)
        .unwrap();
        let rt = OutflankRouting::build(&topo).unwrap();
        assert_eq!(rt.geometry(), (rows, cols));
        certify_engine(&topo, &rt).unwrap();
        let fa =
            FaRouting::<OutflankRouting>::build_with_engine(&topo, RoutingConfig::two_options())
                .unwrap();
        certify_fa_tables(&topo, &fa);
    }
}

#[test]
fn fullmesh_certifies_at_scale() {
    // K64 with 4 hosts per switch: 67 used ports per switch.
    let topo = TopologySpec::FullMesh {
        switches: 64,
        hosts_per_switch: 4,
    }
    .generate(0)
    .unwrap();
    let rt = FullMeshRouting::build(&topo).unwrap();
    certify_engine(&topo, &rt).unwrap();
    let fa = FaRouting::<FullMeshRouting>::build_with_engine(&topo, RoutingConfig::two_options())
        .unwrap();
    certify_fa_tables(&topo, &fa);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FA-over-up*/down* tables certify on random irregular fabrics for
    /// every LMC the table supports (1, 2 and 4 routing options).
    #[test]
    fn fa_over_updown_certifies(
        switches in 6usize..20,
        degree in 2usize..5,
        hosts in 1usize..4,
        options_log2 in 0u32..3,
        seed in 0u64..200,
    ) {
        // A degree-regular graph needs an even switches × degree product.
        let degree = if switches % 2 == 1 && degree % 2 == 1 {
            degree + 1
        } else {
            degree
        };
        let spec = TopologySpec::Irregular {
            switches,
            inter_switch_links: degree,
            hosts_per_switch: hosts,
        };
        let topo = spec.generate(seed).unwrap();
        let cfg = RoutingConfig::with_options(1 << options_log2);
        let fa = FaRouting::build(&topo, cfg).unwrap();
        certify_fa_tables(&topo, &fa);
    }

    /// FA-over-OutFlank tables certify on tori of every aspect ratio
    /// and LMC.
    #[test]
    fn fa_over_outflank_certifies(
        rows in 3usize..7,
        cols in 3usize..7,
        hosts in 1usize..3,
        options_log2 in 0u32..3,
    ) {
        let spec = TopologySpec::Torus2D { rows, cols, hosts_per_switch: hosts };
        let topo = spec.generate(0).unwrap();
        let cfg = RoutingConfig::with_options(1 << options_log2);
        let fa = FaRouting::<OutflankRouting>::build_with_engine(&topo, cfg).unwrap();
        certify_fa_tables(&topo, &fa);
    }

    /// FA-over-full-mesh tables certify on complete graphs of every
    /// size and LMC.
    #[test]
    fn fa_over_fullmesh_certifies(
        switches in 2usize..16,
        hosts in 1usize..4,
        options_log2 in 0u32..3,
    ) {
        let spec = TopologySpec::FullMesh { switches, hosts_per_switch: hosts };
        let topo = spec.generate(0).unwrap();
        let cfg = RoutingConfig::with_options(1 << options_log2);
        let fa = FaRouting::<FullMeshRouting>::build_with_engine(&topo, cfg).unwrap();
        certify_fa_tables(&topo, &fa);
    }
}
