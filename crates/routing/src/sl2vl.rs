//! The SLtoVL mapping table (§4.4).
//!
//! In IBA, the virtual lane a packet uses on its next hop is computed
//! from the input port, the selected output port and the packet's service
//! level, through the per-switch SLtoVL table. The paper's mechanism
//! deliberately leaves this machinery untouched: the adaptive and escape
//! queues live *inside* one VL's buffer, so the SLtoVL table keeps its
//! spec-defined role.
//!
//! The default mapping used in the evaluation is the identity (`SL n →
//! VL n`, clamped to the number of data VLs the switch operates), which
//! is what subnet managers program when no QoS separation is requested.

use iba_core::{IbaError, PortIndex, ServiceLevel, VirtualLane};
use serde::{Deserialize, Serialize};

/// A per-switch SLtoVL table.
///
/// Indexed by `(input port, output port, SL)`. Input port `None`
/// represents packets injected by the switch's own management interface —
/// not used by the data-path model, but kept for spec shape.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlToVlTable {
    ports: u8,
    /// `map[in_port][out_port][sl]` → VL.
    map: Vec<Vec<[u8; ServiceLevel::COUNT]>>,
}

impl SlToVlTable {
    /// Identity mapping over `data_vls` lanes for a switch with `ports`
    /// ports: `SL n → VL (n mod data_vls)`.
    pub fn identity(ports: u8, data_vls: u8) -> Result<SlToVlTable, IbaError> {
        if data_vls == 0 || data_vls as usize > VirtualLane::COUNT - 1 {
            return Err(IbaError::InvalidConfig(format!(
                "data VL count {data_vls} outside 1..=15"
            )));
        }
        let mut row = [0u8; ServiceLevel::COUNT];
        for (sl, vl) in row.iter_mut().enumerate() {
            *vl = (sl % data_vls as usize) as u8;
        }
        Ok(SlToVlTable {
            ports,
            map: vec![vec![row; ports as usize]; ports as usize],
        })
    }

    /// Program one entry (subnet-manager interface).
    pub fn set(
        &mut self,
        input: PortIndex,
        output: PortIndex,
        sl: ServiceLevel,
        vl: VirtualLane,
    ) -> Result<(), IbaError> {
        if input.index() >= self.ports as usize || output.index() >= self.ports as usize {
            return Err(IbaError::InvalidConfig(format!(
                "port out of range ({input}, {output})"
            )));
        }
        self.map[input.index()][output.index()][sl.index()] = vl.0;
        Ok(())
    }

    /// The VL a packet with service level `sl`, arriving on `input` and
    /// leaving through `output`, must use on the downstream link.
    #[inline]
    pub fn vl_for(&self, input: PortIndex, output: PortIndex, sl: ServiceLevel) -> VirtualLane {
        VirtualLane(self.map[input.index()][output.index()][sl.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_sl_to_same_vl() {
        let t = SlToVlTable::identity(8, 4).unwrap();
        assert_eq!(
            t.vl_for(PortIndex(0), PortIndex(1), ServiceLevel(2)),
            VirtualLane(2)
        );
        // Clamped modulo the data VL count.
        assert_eq!(
            t.vl_for(PortIndex(3), PortIndex(2), ServiceLevel(5)),
            VirtualLane(1)
        );
    }

    #[test]
    fn single_vl_collapses_everything_to_vl0() {
        let t = SlToVlTable::identity(8, 1).unwrap();
        for sl in 0..16 {
            assert_eq!(
                t.vl_for(PortIndex(0), PortIndex(7), ServiceLevel(sl)),
                VirtualLane(0)
            );
        }
    }

    #[test]
    fn set_overrides_one_entry() {
        let mut t = SlToVlTable::identity(4, 2).unwrap();
        t.set(PortIndex(1), PortIndex(2), ServiceLevel(0), VirtualLane(1))
            .unwrap();
        assert_eq!(
            t.vl_for(PortIndex(1), PortIndex(2), ServiceLevel(0)),
            VirtualLane(1)
        );
        // Other entries untouched.
        assert_eq!(
            t.vl_for(PortIndex(2), PortIndex(1), ServiceLevel(0)),
            VirtualLane(0)
        );
        assert!(t
            .set(PortIndex(9), PortIndex(0), ServiceLevel(0), VirtualLane(0))
            .is_err());
    }

    #[test]
    fn rejects_bad_vl_counts() {
        assert!(SlToVlTable::identity(8, 0).is_err());
        assert!(SlToVlTable::identity(8, 16).is_err());
        assert!(SlToVlTable::identity(8, 15).is_ok());
    }
}
