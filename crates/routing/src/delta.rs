//! Incremental ("delta") route recomputation after a single link
//! failure.
//!
//! A full SM re-sweep recomputes every forwarding-table row from
//! scratch; at scale that is the recovery bottleneck. This module
//! exploits a structural property of the paper's routing stack: both
//! per-destination layers — the escape engine's deterministic next hops
//! and the minimal adaptive option sets — are *destination-separable*.
//! A dead link can only change the column of a destination switch `t`
//! if the link was **tight** for `t`, i.e. lay on a shortest path of a
//! layer's distance relaxation or was the chosen next hop. Every other
//! column is provably unchanged, so every forwarding-table row
//! addressing a host on an unaffected switch is unchanged too.
//!
//! The escape half of that analysis belongs to the engine:
//! [`EscapeEngine::rebuild_after_link_failure`] either patches its own
//! columns (up\*/down\* has a tightness argument over its down/legal
//! distance relaxations) or refuses with a reason, in which case the
//! whole routing is rebuilt from scratch with the frame anchor pinned.
//! [`FaRouting::rebuild_after_link_failure`] unions the engine's
//! affected set with the minimal layer's own tightness test, recomputes
//! only those columns and rewrites only their hosts' LID rows (at every
//! switch — an affected *destination* changes rows fabric-wide),
//! reusing the same row-programming routine as the full build so the
//! result is byte-identical to a from-scratch rebuild by construction.
//!
//! Fallback situations (always correct, just slower):
//!
//! * the engine refuses — for up\*/down\*: the failed link touches the
//!   spanning-tree root, or the BFS levels from the pinned root shift
//!   (the up/down orientation of *surviving* links would change);
//!   engines without an incremental argument refuse unconditionally,
//! * the tables are not plain FA (APM alternate sets and
//!   source-selected multipath interleave per-destination state in ways
//!   a column patch does not cover).
//!
//! Two machine-checked gates guard the delta path: the escape layer of
//! the result must pass [`check_escape_routes`], and (in debug builds)
//! the whole table set is compared against a from-scratch rebuild.

use crate::analysis::check_escape_routes;
use crate::engine::{DeltaOutcome, EscapeEngine};
use crate::fa::{program_host_rows, FaRouting, RoutingConfig};
use crate::updown::{UpDownRouting, INF};
use iba_core::{HostId, IbaError, PortIndex, SwitchId};
use iba_topology::Topology;
use std::sync::Arc;

/// What one incremental rebuild did — the accounting half of the
/// recovery-scaling story.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaStats {
    /// `true` when a fallback condition forced a from-scratch rebuild.
    pub full_rebuild: bool,
    /// Why the fallback fired (`None` on the delta path).
    pub fallback_reason: Option<String>,
    /// Destination switches whose routing columns were recomputed.
    pub affected_switches: usize,
    /// Destination LIDs whose table rows were rewritten (per switch).
    pub affected_lids: usize,
    /// Forwarding-table entries recomputed across the fabric.
    pub entries_recomputed: u64,
}

impl DeltaStats {
    /// Export this rebuild into `reg`. All counters are deterministic
    /// functions of the topology change, so they participate in
    /// determinism digests.
    pub fn record_metrics(&self, reg: &mut iba_stats::MetricsRegistry) {
        reg.add("iba_routing_delta_rebuilds_total", &[], 1);
        if self.full_rebuild {
            reg.add("iba_routing_delta_fallbacks_total", &[], 1);
        }
        reg.add(
            "iba_routing_delta_affected_switches_total",
            &[],
            self.affected_switches as u64,
        );
        reg.add(
            "iba_routing_delta_affected_lids_total",
            &[],
            self.affected_lids as u64,
        );
        reg.add(
            "iba_routing_delta_entries_recomputed_total",
            &[],
            self.entries_recomputed,
        );
    }
}

/// The result of an incremental rebuild: the patched routing plus the
/// delta accounting.
#[derive(Clone, Debug)]
pub struct DeltaRebuild<E: EscapeEngine = UpDownRouting> {
    /// Routing valid for the degraded topology, byte-identical to a
    /// root-pinned from-scratch rebuild.
    pub routing: FaRouting<E>,
    /// What the rebuild touched.
    pub stats: DeltaStats,
}

impl<E: EscapeEngine> FaRouting<E> {
    /// Incrementally rebuild this routing for `degraded` — the same
    /// fabric with the single link `a.pa ↔ b.pb` removed. Only the
    /// destination columns the dead link could have influenced are
    /// recomputed; the escape engine's frame anchor stays pinned (the SM
    /// keeps its spanning-tree anchor stable across sweeps, which is
    /// also what makes delta-vs-full equality well-defined).
    ///
    /// Errors when `degraded` still contains the link, has a different
    /// shape than the routing was built for, or is disconnected.
    pub fn rebuild_after_link_failure(
        &self,
        degraded: &Topology,
        a: SwitchId,
        pa: PortIndex,
        b: SwitchId,
        pb: PortIndex,
    ) -> Result<DeltaRebuild<E>, IbaError> {
        let n = self.tables.len();
        if degraded.num_switches() != n {
            return Err(IbaError::InvalidConfig(format!(
                "degraded topology has {} switches, routing was built for {n}",
                degraded.num_switches()
            )));
        }
        if a.index() >= n || b.index() >= n || a == b {
            return Err(IbaError::InvalidConfig(format!(
                "bad failed link {a}.{pa} <-> {b}.{pb}"
            )));
        }
        if degraded.endpoint(a, pa).is_some() || degraded.endpoint(b, pb).is_some() {
            return Err(IbaError::InvalidConfig(
                "degraded topology still wires the failed link".into(),
            ));
        }
        if self.apm.is_some() {
            return self.full_fallback(degraded, "APM tables carry an alternate path set");
        }
        if self.source_multipath.is_some() {
            return self.full_fallback(degraded, "source-selected multipath tables");
        }

        // Ask the escape engine for its half of the analysis first: it
        // owns the root/level fallback conditions and patches its own
        // distance and next-hop columns.
        let (engine, escape_affected) = match self
            .escape
            .rebuild_after_link_failure(degraded, a, pa, b, pb)?
        {
            DeltaOutcome::FullRebuild { reason } => return self.full_fallback(degraded, &reason),
            DeltaOutcome::Patched { engine, affected } => (engine, affected),
        };

        // Union with the minimal (adaptive) layer's own tightness test:
        // the edge lies on some shortest path to `t` iff its endpoint
        // distances to `t` differ by exactly one.
        let mut affected = escape_affected;
        for t in 0..n {
            if self.minimal.dist[a.index()][t].abs_diff(self.minimal.dist[b.index()][t]) == 1 {
                affected.push(t);
            }
        }
        affected.sort_unstable();
        affected.dedup();

        let mut next = self.clone();
        next.escape = engine;
        // 1. Adaptive layer: per-destination shortest distances and
        //    minimal option sets, in the same neighbor order as the full
        //    build so the stored lists match byte for byte.
        for &t in &affected {
            let dcol = degraded.distances_from(SwitchId(t as u16));
            if dcol.contains(&INF) {
                return Err(IbaError::RoutingFailed(
                    "link failure disconnected the fabric".into(),
                ));
            }
            for (s, &d) in dcol.iter().enumerate() {
                next.minimal.dist[s][t] = d;
            }
            for s in 0..n {
                let opts = &mut next.minimal.options[t][s];
                opts.clear();
                if s != t {
                    for (port, peer, _) in degraded.switch_neighbors(SwitchId(s as u16)) {
                        if dcol[peer.index()] + 1 == dcol[s] {
                            opts.push(port);
                        }
                    }
                }
            }
        }
        // 2. Table rows: every host attached to an affected destination
        //    switch gets its whole LID group reprogrammed at every
        //    switch, through the same routine as the full build.
        let affected_hosts: Vec<HostId> = degraded
            .host_ids()
            .filter(|&h| {
                affected
                    .binary_search(&degraded.host_switch(h).index())
                    .is_ok()
            })
            .collect();
        let x = next.config.table_options;
        let mut entries_recomputed = 0u64;
        for s in degraded.switch_ids() {
            let table = &mut next.tables[s.index()];
            for &h in &affected_hosts {
                entries_recomputed += program_host_rows(
                    degraded,
                    &next.escape,
                    &next.minimal,
                    &next.adaptive_capable,
                    &next.config,
                    &next.lid_map,
                    table,
                    s,
                    h,
                )?;
            }
        }
        // 3. Refresh the decoded route cache for the rewritten rows.
        for s in 0..n {
            for &h in &affected_hosts {
                for k in 0..x {
                    let lid = next.lid_map.lid_for(h, k)?;
                    let dec = next.decode(SwitchId(s as u16), lid).ok().map(Arc::new);
                    next.route_cache[s][lid.raw() as usize] = dec;
                }
            }
        }

        let stats = DeltaStats {
            full_rebuild: false,
            fallback_reason: None,
            affected_switches: affected.len(),
            affected_lids: affected_hosts.len() * x as usize,
            entries_recomputed,
        };
        next.certify_delta(degraded)?;
        #[cfg(debug_assertions)]
        {
            let full = Self::build_mixed_with_engine(
                degraded,
                pinned(&self.config, self.escape.root()),
                &self.adaptive_capable,
            )?;
            debug_assert!(
                next.tables_equal(&full),
                "delta rebuild diverged from a from-scratch rebuild"
            );
        }
        Ok(DeltaRebuild {
            routing: next,
            stats,
        })
    }

    /// Fallback: from-scratch rebuild with the frame anchor pinned,
    /// packaged as a (degenerate) delta result.
    fn full_fallback(
        &self,
        degraded: &Topology,
        reason: &str,
    ) -> Result<DeltaRebuild<E>, IbaError> {
        let cfg = pinned(&self.config, self.escape.root());
        let routing = if self.apm.is_some() {
            Self::build_apm_with_engine(degraded, cfg)?
        } else if self.source_multipath.is_some() {
            Self::build_source_multipath_with_engine(degraded, cfg)?
        } else {
            Self::build_mixed_with_engine(degraded, cfg, &self.adaptive_capable)?
        };
        let entries = (routing.lid_map.table_len() * degraded.num_switches()) as u64;
        let stats = DeltaStats {
            full_rebuild: true,
            fallback_reason: Some(reason.to_string()),
            affected_switches: degraded.num_switches(),
            affected_lids: routing.lid_map.table_len(),
            entries_recomputed: entries,
        };
        Ok(DeltaRebuild { routing, stats })
    }

    /// Always-on gate: the delta result's escape layer must still be
    /// certifiably deadlock-free.
    fn certify_delta(&self, degraded: &Topology) -> Result<(), IbaError> {
        check_escape_routes(degraded, |s, h| {
            let dlid = self.dlid(h, false).ok()?;
            self.route_shared(s, dlid).ok().map(|r| r.escape)
        })
    }
}

/// `config` with the engine's frame anchor pinned to `root` — the
/// comparison frame for delta-vs-full equality (an unpinned rebuild may
/// elect a different anchor on the degraded topology and produce
/// legitimately different, incomparable tables).
fn pinned(config: &RoutingConfig, root: SwitchId) -> RoutingConfig {
    RoutingConfig {
        root: Some(root),
        ..*config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fa::RoutingConfig;
    use iba_topology::IrregularConfig;

    /// Remove the wire `a.pa ↔ b.pb` from `topo`, keeping every id and
    /// port number.
    fn without_link(topo: &Topology, a: SwitchId, b: SwitchId) -> (Topology, PortIndex, PortIndex) {
        let (pa, _, pb) = topo
            .switch_neighbors(a)
            .find_map(|(p, peer, pp)| (peer == b).then_some((p, peer, pp)))
            .expect("link exists");
        let mut builder =
            iba_topology::TopologyBuilder::new(topo.num_switches(), topo.ports_per_switch());
        for s in topo.switch_ids() {
            for (p, peer, pp) in topo.switch_neighbors(s) {
                if peer.0 > s.0
                    && !(s == a && peer == b && p == pa)
                    && !(s == b && peer == a && p == pb)
                {
                    builder.connect_ports(s, p, peer, pp).unwrap();
                }
            }
        }
        for h in topo.host_ids() {
            let (sw, port) = topo.host_attachment(h);
            builder.attach_host_at(sw, port).unwrap();
        }
        (builder.build().unwrap(), pa, pb)
    }

    /// Every inter-switch link of `topo` whose removal keeps the switch
    /// graph connected.
    fn removable_links(topo: &Topology) -> Vec<(SwitchId, SwitchId)> {
        let mut links = Vec::new();
        for s in topo.switch_ids() {
            for (_, peer, _) in topo.switch_neighbors(s) {
                if peer.0 > s.0 {
                    let n = topo.num_switches();
                    let mut seen = vec![false; n];
                    let mut stack = vec![SwitchId(0)];
                    seen[0] = true;
                    while let Some(cur) = stack.pop() {
                        for (_, nb, _) in topo.switch_neighbors(cur) {
                            let dead = (cur == s && nb == peer) || (cur == peer && nb == s);
                            if !dead && !seen[nb.index()] {
                                seen[nb.index()] = true;
                                stack.push(nb);
                            }
                        }
                    }
                    if seen.iter().all(|&v| v) {
                        links.push((s, peer));
                    }
                }
            }
        }
        links
    }

    /// The delta rebuild must equal a root-pinned from-scratch rebuild
    /// byte for byte, for every removable link over an ensemble of
    /// irregular fabrics, and must touch strictly fewer entries than a
    /// full rebuild (away from degenerate tiny fabrics).
    #[test]
    fn delta_equals_full_rebuild_on_every_removable_link() {
        for seed in [1u64, 7, 42] {
            let topo = IrregularConfig::paper(16, seed).generate().unwrap();
            let fa = FaRouting::build(&topo, RoutingConfig::with_options(4)).unwrap();
            let root = fa.escape().root();
            for (a, b) in removable_links(&topo) {
                let (degraded, pa, pb) = without_link(&topo, a, b);
                let delta = fa
                    .rebuild_after_link_failure(&degraded, a, pa, b, pb)
                    .unwrap();
                let full = FaRouting::build_mixed(
                    &degraded,
                    RoutingConfig {
                        root: Some(root),
                        ..*fa.config()
                    },
                    &(0..16).map(|_| true).collect::<Vec<_>>(),
                )
                .unwrap();
                assert!(
                    delta.routing.tables_equal(&full),
                    "seed {seed}, link {a}-{b}: delta diverged from full rebuild \
                     (fallback: {:?})",
                    delta.stats.fallback_reason
                );
                // The gate also certified the escape layer; assert the
                // public claim directly too.
                delta.routing.certify_delta(&degraded).unwrap();
                if !delta.stats.full_rebuild {
                    let total = (fa.lid_map().table_len() * topo.num_switches()) as u64;
                    assert!(
                        delta.stats.entries_recomputed < total,
                        "seed {seed}, link {a}-{b}: delta recomputed everything"
                    );
                    assert!(delta.stats.affected_switches <= topo.num_switches());
                }
            }
        }
    }

    /// The affected-destination analysis must actually prune: on a
    /// 32-switch fabric a single link failure leaves most destination
    /// columns untouched for at least some links.
    #[test]
    fn delta_prunes_unaffected_destinations() {
        let topo = IrregularConfig::paper(32, 3).generate().unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
        let mut pruned_somewhere = false;
        for (a, b) in removable_links(&topo).into_iter().take(8) {
            let (degraded, pa, pb) = without_link(&topo, a, b);
            let delta = fa
                .rebuild_after_link_failure(&degraded, a, pa, b, pb)
                .unwrap();
            if !delta.stats.full_rebuild && delta.stats.affected_switches < topo.num_switches() {
                pruned_somewhere = true;
            }
        }
        assert!(pruned_somewhere, "the delta path never pruned a column");
    }

    /// Killing a root link must fall back to a full rebuild (and still
    /// produce root-pinned full-rebuild tables).
    #[test]
    fn root_link_failure_falls_back_to_full_rebuild() {
        let topo = IrregularConfig::paper(16, 5).generate().unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
        let root = fa.escape().root();
        let (a, b) = removable_links(&topo)
            .into_iter()
            .find(|&(a, b)| a == root || b == root)
            .expect("some root link is removable");
        let (degraded, pa, pb) = without_link(&topo, a, b);
        let delta = fa
            .rebuild_after_link_failure(&degraded, a, pa, b, pb)
            .unwrap();
        assert!(delta.stats.full_rebuild);
        assert!(delta
            .stats
            .fallback_reason
            .as_deref()
            .unwrap()
            .contains("root"));
        let full = FaRouting::build_mixed(
            &degraded,
            RoutingConfig {
                root: Some(root),
                ..*fa.config()
            },
            &[true; 16],
        )
        .unwrap();
        assert!(delta.routing.tables_equal(&full));
    }

    /// APM and multipath tables always take the fallback.
    #[test]
    fn non_plain_tables_fall_back() {
        let topo = IrregularConfig::paper(16, 8).generate().unwrap();
        let (a, b) = removable_links(&topo)[0];
        let (degraded, pa, pb) = without_link(&topo, a, b);
        for fa in [
            FaRouting::build_with_apm(&topo, RoutingConfig::two_options()).unwrap(),
            FaRouting::build_source_multipath(&topo, RoutingConfig::two_options()).unwrap(),
        ] {
            let delta = fa
                .rebuild_after_link_failure(&degraded, a, pa, b, pb)
                .unwrap();
            assert!(delta.stats.full_rebuild);
        }
    }

    /// A disconnecting failure is an error, not a bogus table set. The
    /// topology layer already refuses to build a disconnected graph, so
    /// the error surfaces before the delta is even attempted — assert
    /// that contract holds (it is what `rebuild_after_link_failure`'s
    /// own disconnection check backstops).
    #[test]
    fn disconnection_is_an_error() {
        // A 2-switch chain: its single link is a bridge.
        let topo = iba_topology::regular::chain(2, 1).unwrap();
        let mut builder = iba_topology::TopologyBuilder::new(2, topo.ports_per_switch());
        for h in topo.host_ids() {
            let (sw, port) = topo.host_attachment(h);
            builder.attach_host_at(sw, port).unwrap();
        }
        assert!(builder.build().is_err(), "bridge removal must not build");
    }

    /// Passing a topology that still wires the link is rejected.
    #[test]
    fn undegraded_topology_is_rejected() {
        let topo = IrregularConfig::paper(8, 2).generate().unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
        let (a, b) = removable_links(&topo)[0];
        let (_, pa, pb) = without_link(&topo, a, b);
        assert!(fa.rebuild_after_link_failure(&topo, a, pa, b, pb).is_err());
    }

    /// The interned route cache shares identical decodes across switches.
    #[test]
    fn route_cache_interning_shares_identical_decodes() {
        let topo = IrregularConfig::paper(16, 4).generate().unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
        let (total, unique) = fa.route_cache_sharing();
        assert!(total > 0);
        assert!(
            unique < total / 2,
            "expected heavy sharing, got {unique}/{total} distinct decodes"
        );
        // Sharing must not change what any access returns.
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let dlid = fa.dlid(h, true).unwrap();
                let shared = fa.route_shared(s, dlid).unwrap();
                let direct = fa.decode(s, dlid).unwrap();
                assert_eq!(*shared, direct);
            }
        }
    }

    #[test]
    fn delta_refreshes_the_route_cache() {
        let topo = IrregularConfig::paper(16, 6).generate().unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::with_options(2)).unwrap();
        for (a, b) in removable_links(&topo).into_iter().take(4) {
            let (degraded, pa, pb) = without_link(&topo, a, b);
            let delta = fa
                .rebuild_after_link_failure(&degraded, a, pa, b, pb)
                .unwrap();
            for s in degraded.switch_ids() {
                for h in degraded.host_ids() {
                    for adaptive in [false, true] {
                        let dlid = delta.routing.dlid(h, adaptive).unwrap();
                        let shared = delta.routing.route_shared(s, dlid).unwrap();
                        let direct = delta.routing.decode(s, dlid).unwrap();
                        assert_eq!(*shared, direct, "{s} {h} stale cache entry");
                    }
                }
            }
        }
    }
}
