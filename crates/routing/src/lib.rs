//! # iba-routing
//!
//! Routing for the iba-far reproduction: everything between the topology
//! and the simulator.
//!
//! * [`engine`] — the [`EscapeEngine`] contract every escape layer
//!   implements: deterministic per-destination next hops that certify
//!   acyclic through [`check_escape_routes`]. `FaRouting`, the delta
//!   rebuild, the SM and the simulator are all generic over it.
//! * [`updown`] — the up\*/down\* routing algorithm \[Schroeder et al.,
//!   Autonet\]: BFS spanning tree, up/down link orientation, and a
//!   destination-based deterministic next-hop function whose paths never
//!   take a forbidden down→up turn. This is both the paper's baseline
//!   (deterministic routing, 0 % adaptive traffic) and the *default*
//!   escape layer of the FA algorithm.
//! * [`outflank`] — dateline-free dimension-order escape for 2-D tori:
//!   deadlock-free without extra virtual channels because the escape
//!   layer never crosses a wrap-around link.
//! * [`fullmesh`] — direct single-hop escape for complete switch
//!   graphs; trivially acyclic, no VCs needed.
//! * [`minimal`] — minimal-path routing options: every output port on a
//!   shortest path to the destination. These are the *adaptive* options
//!   of the FA algorithm.
//! * [`fa`] — the Fully Adaptive routing function of §3: minimal adaptive
//!   options + one up\*/down\* escape option per destination, materialized
//!   into per-switch forwarding tables through the LMC virtual-addressing
//!   scheme.
//! * [`table`] — the paper's core mechanism (§4.1): a *linear* forwarding
//!   table physically organized as an interleaved memory so one access
//!   returns all `2^LMC` routing options of a destination at once, while
//!   the subnet-manager-facing interface stays a plain LID-indexed array.
//! * [`sl2vl`] — the SLtoVL table (§4.4) computing the VL from (input
//!   port, output port, SL).
//! * [`analysis`] — static routing analysis: the routing-option
//!   distribution of Table 2 and path-length statistics.
//! * [`delta`] — incremental route recomputation after a link failure:
//!   only the destination columns the dead link was *tight* for are
//!   recomputed, byte-identical to a from-scratch rebuild.

#![warn(missing_docs)]

pub mod analysis;
pub mod delta;
pub mod engine;
pub mod fa;
pub mod fullmesh;
pub mod minimal;
pub mod outflank;
pub mod sl2vl;
pub mod table;
pub mod updown;

pub use analysis::{check_escape_routes, OptionDistribution, PathLengthStats};
pub use delta::{DeltaRebuild, DeltaStats};
pub use engine::{certify_engine, DeltaOutcome, EscapeEngine};
pub use fa::{AdaptiveOptions, FaRouting, RouteOptions, RoutingConfig};
pub use fullmesh::FullMeshRouting;
pub use minimal::MinimalRouting;
pub use outflank::OutflankRouting;
pub use sl2vl::SlToVlTable;
pub use table::InterleavedForwardingTable;
pub use updown::UpDownRouting;
