//! The pluggable escape-layer contract.
//!
//! The paper's fully adaptive mechanism (§3) is deliberately agnostic to
//! the deterministic sub-function it escapes into: any routing function
//! that (a) gives every switch a terminating deterministic next hop to
//! every destination switch and (b) induces an acyclic channel-dependency
//! graph can serve as the escape layer under the same LMC
//! virtual-addressing scheme. [`EscapeEngine`] captures exactly that
//! contract, so [`crate::fa::FaRouting`] — and everything above it: the
//! delta rebuild, the subnet manager's programmer, the simulator — is
//! generic over the escape layer.
//!
//! Three engines ship with the workspace:
//!
//! | engine | topology | escape discipline |
//! |---|---|---|
//! | [`crate::updown::UpDownRouting`] | any connected | up\* then down\* over a BFS spanning tree |
//! | [`crate::outflank::OutflankRouting`] | 2-D torus | dateline-free dimension-order (never crosses a wraparound link) |
//! | [`crate::fullmesh::FullMeshRouting`] | complete graph | direct one-hop delivery, no virtual channels needed |
//!
//! Every engine — built-in or external — is held to the same certifier:
//! [`crate::analysis::check_escape_routes`] walks the materialized
//! escape chains and Kahn-peels the channel-dependency graph. An engine
//! whose next hops fail that check is not a valid escape layer, however
//! plausible its construction argument; [`certify_engine`] packages the
//! call for engine authors.

use crate::analysis::check_escape_routes;
use iba_core::{IbaError, PortIndex, SwitchId};
use iba_topology::Topology;

/// What an engine's incremental rebuild produced after a single link
/// failure (see [`EscapeEngine::rebuild_after_link_failure`]).
#[derive(Clone, Debug)]
pub enum DeltaOutcome<E> {
    /// The engine patched itself in place: `engine` is valid for the
    /// degraded topology and only the destination-switch columns in
    /// `affected` (ascending, deduplicated indices) changed. Every
    /// column outside `affected` must be *provably* identical to a
    /// from-scratch rebuild with the same frame anchor.
    Patched {
        /// The patched engine.
        engine: E,
        /// Destination switches whose columns were recomputed.
        affected: Vec<usize>,
    },
    /// The engine cannot patch incrementally; the caller must rebuild
    /// from scratch (with the frame anchor pinned) and report `reason`.
    FullRebuild {
        /// Why the incremental path was refused.
        reason: String,
    },
}

/// A deadlock-free deterministic escape layer.
///
/// The contract, in the order the stack relies on it:
///
/// 1. **Construction** — [`build`](Self::build) compiles the engine for
///    a topology; [`build_with_root`](Self::build_with_root) pins the
///    engine's *frame anchor* (the up\*/down\* spanning-tree root;
///    engines without a meaningful root accept any valid switch id and
///    may ignore it). Rebuilding with the same anchor must be
///    deterministic — byte-identical next hops — which is what makes
///    cross-sweep and cross-engine comparisons well-defined.
/// 2. **Routing** — [`next_hop`](Self::next_hop) is a pure function of
///    `(source switch, destination switch)`: IBA forwarding tables know
///    nothing about a packet's history, so the per-hop choices must
///    compose into terminating, deadlock-free paths *globally*.
/// 3. **Certification** — the materialized next hops must pass
///    [`check_escape_routes`]: every escape chain terminates at the
///    right host and the channel-dependency graph over directed links
///    is acyclic. [`FaRouting`](crate::fa::FaRouting) does not re-prove
///    an engine's paper argument; it checks the artifact.
///
/// Engines are value types the routing tables embed and the simulator
/// shares across threads, hence the `Clone + Send + Sync` supertraits.
pub trait EscapeEngine: Clone + Send + Sync + std::fmt::Debug + Sized + 'static {
    /// Short stable identifier (`"updown"`, `"outflank"`, `"fullmesh"`)
    /// used in experiment reports and engine matrices.
    const NAME: &'static str;

    /// Compile the engine for `topo`, choosing the frame anchor
    /// automatically.
    fn build(topo: &Topology) -> Result<Self, IbaError>;

    /// Compile with an explicit frame anchor. Engines for which the
    /// anchor is meaningless (e.g. dimension-order on a torus) validate
    /// the id and otherwise ignore it.
    fn build_with_root(topo: &Topology, root: SwitchId) -> Result<Self, IbaError>;

    /// The engine's frame anchor — re-building with
    /// [`build_with_root`](Self::build_with_root) at this switch must
    /// reproduce the engine exactly.
    fn root(&self) -> SwitchId;

    /// The output port `s` uses towards switch `t`; `None` when `s == t`
    /// (local delivery is the table builder's job, not the engine's).
    fn next_hop(&self, s: SwitchId, t: SwitchId) -> Option<PortIndex>;

    /// *All* deterministic next-hop choices of `s` towards `t` such that
    /// any per-switch mixture of them still yields terminating,
    /// deadlock-free paths — the raw material of source-selected
    /// multipath. The default is the singleton chosen hop (always a
    /// safe mixture); engines with a real variant structure (up\*/down\*
    /// has one) override this.
    fn next_hop_variants(&self, topo: &Topology, s: SwitchId, t: SwitchId) -> Vec<PortIndex> {
        let _ = topo;
        if s == t {
            return Vec::new();
        }
        self.next_hop(s, t).into_iter().collect()
    }

    /// The full switch path `s → t` following the deterministic rule.
    /// Errors if the walk does not terminate within `2 × n + 2` hops
    /// (which would indicate a broken engine).
    fn path(&self, topo: &Topology, s: SwitchId, t: SwitchId) -> Result<Vec<SwitchId>, IbaError> {
        let mut path = vec![s];
        let mut cur = s;
        let bound = 2 * topo.num_switches() + 2;
        while cur != t {
            if path.len() > bound {
                return Err(IbaError::RoutingFailed(format!(
                    "path {s}→{t} did not terminate"
                )));
            }
            let port = self
                .next_hop(cur, t)
                .ok_or_else(|| IbaError::RoutingFailed("missing next hop".into()))?;
            let ep = topo
                .endpoint(cur, port)
                .ok_or_else(|| IbaError::RoutingFailed("next hop port unwired".into()))?;
            cur = ep
                .node
                .as_switch()
                .ok_or_else(|| IbaError::RoutingFailed("next hop is a host".into()))?;
            path.push(cur);
        }
        Ok(path)
    }

    /// Incrementally rebuild this engine for `degraded` — the same
    /// fabric with the single link `a.pa ↔ b.pb` removed — keeping the
    /// frame anchor pinned. The caller (the FA delta rebuild in
    /// `crate::delta`) has already validated the link arguments and
    /// handles the adaptive (minimal) layer itself; the engine only
    /// answers for its own columns.
    ///
    /// The default refuses: engines without a column-separability
    /// argument fall back to a from-scratch rebuild, which is always
    /// correct (just slower). Returning
    /// [`DeltaOutcome::Patched`] with an unsound `affected` set is a
    /// correctness bug the debug-build byte-equality gate will catch.
    fn rebuild_after_link_failure(
        &self,
        degraded: &Topology,
        a: SwitchId,
        pa: PortIndex,
        b: SwitchId,
        pb: PortIndex,
    ) -> Result<DeltaOutcome<Self>, IbaError> {
        let _ = (degraded, a, pa, b, pb);
        Ok(DeltaOutcome::FullRebuild {
            reason: format!("{} engine has no incremental rebuild", Self::NAME),
        })
    }
}

/// Certify `engine` against `topo`: every escape chain must terminate at
/// its destination host and the induced channel-dependency graph must be
/// acyclic. This is the gate every engine — shipped or external — must
/// pass before its tables are trusted; `FaRouting` materializes exactly
/// these next hops into the offset-0 (escape) rows.
pub fn certify_engine<E: EscapeEngine>(topo: &Topology, engine: &E) -> Result<(), IbaError> {
    check_escape_routes(topo, |s, h| {
        let (hsw, hp) = topo.host_attachment(h);
        if hsw == s {
            Some(hp)
        } else {
            engine.next_hop(s, hsw)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown::UpDownRouting;
    use iba_topology::IrregularConfig;

    #[test]
    fn default_variants_are_the_singleton_hop() {
        let topo = IrregularConfig::paper(8, 1).generate().unwrap();
        let rt = UpDownRouting::build(&topo).unwrap();
        // A probe type that only implements the required methods.
        #[derive(Clone, Debug)]
        struct Probe(UpDownRouting);
        impl EscapeEngine for Probe {
            const NAME: &'static str = "probe";
            fn build(topo: &Topology) -> Result<Self, IbaError> {
                UpDownRouting::build(topo).map(Probe)
            }
            fn build_with_root(topo: &Topology, root: SwitchId) -> Result<Self, IbaError> {
                UpDownRouting::build_with_root(topo, root).map(Probe)
            }
            fn root(&self) -> SwitchId {
                self.0.root()
            }
            fn next_hop(&self, s: SwitchId, t: SwitchId) -> Option<PortIndex> {
                self.0.next_hop(s, t)
            }
        }
        let probe = Probe(rt.clone());
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    assert!(probe.next_hop_variants(&topo, s, t).is_empty());
                } else {
                    assert_eq!(
                        probe.next_hop_variants(&topo, s, t),
                        vec![rt.next_hop(s, t).unwrap()]
                    );
                }
            }
        }
        // The default delta hook refuses with the engine's name.
        let (a, pa) = (SwitchId(0), PortIndex(0));
        match probe
            .rebuild_after_link_failure(&topo, a, pa, SwitchId(1), PortIndex(0))
            .unwrap()
        {
            DeltaOutcome::FullRebuild { reason } => assert!(reason.contains("probe")),
            DeltaOutcome::Patched { .. } => panic!("default hook must refuse"),
        }
        certify_engine(&topo, &probe).unwrap();
    }
}
