//! The Fully Adaptive (FA) routing function, materialized into IBA
//! forwarding tables.
//!
//! FA (§3) extends a deadlock-free base routing — any
//! [`EscapeEngine`]; up\*/down\* by default — with fully adaptive
//! *minimal* options: when a packet is routed, any minimal output port
//! whose downstream adaptive queue has room may be taken; the escape
//! option is always available. Under virtual cut-through a packet may
//! return to adaptive queues after using an escape queue, and livelock
//! is avoided by preferring the (minimal) adaptive options.
//!
//! [`FaRouting::build`] compiles this routing function into one
//! [`InterleavedForwardingTable`] per switch, exactly as the paper's
//! subnet manager would (§4.1): each destination port owns
//! `x = 2^LMC` consecutive LIDs; address `d` (offset 0) is programmed
//! with the escape next hop, addresses `d+1 .. d+x−1` with minimal
//! options. When a destination has more minimal options than adaptive
//! slots, a deterministic seed-mixed rotation picks which ones are
//! stored — different switches favour different options, balancing load.
//! When it has fewer, the available options are repeated (the lookup
//! de-duplicates).
//!
//! The escape layer is a type parameter: `FaRouting<E>` is FA over any
//! [`EscapeEngine`] (up\*/down\* on arbitrary graphs, dateline-free
//! dimension-order on tori, direct routing on full meshes, ...). The
//! default `FaRouting` = `FaRouting<UpDownRouting>` reproduces the
//! paper's stack bit for bit — the golden LFT pins in
//! `crates/routing/tests/golden_lft.rs` hold across the trait boundary.

use crate::engine::EscapeEngine;
use crate::minimal::MinimalRouting;
use crate::table::InterleavedForwardingTable;
use crate::updown::UpDownRouting;
use iba_core::{HostId, IbaError, InlineVec, Lid, LidMap, PortIndex, SwitchId, MAX_PORTS};
use iba_topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the FA table construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Total routing options (= forwarding-table addresses) per
    /// destination port: 1 escape + `table_options − 1` adaptive slots.
    /// The paper's "two routing options" is `2`, "up to four" is `4`.
    /// Must be a power of two so the LMC interleaving works; 1 disables
    /// adaptivity entirely (pure escape routing).
    pub table_options: u16,
    /// Seed for the option-balancing rotation.
    pub seed: u64,
    /// Optional explicit escape-engine frame anchor (the up\*/down\*
    /// root; default: the engine picks — min eccentricity for
    /// up\*/down\*).
    pub root: Option<SwitchId>,
}

impl RoutingConfig {
    /// The paper's default: two routing options (escape + one adaptive).
    pub fn two_options() -> RoutingConfig {
        RoutingConfig {
            table_options: 2,
            seed: 0,
            root: None,
        }
    }

    /// `x` routing options.
    pub fn with_options(table_options: u16) -> RoutingConfig {
        RoutingConfig {
            table_options,
            ..RoutingConfig::two_options()
        }
    }
}

impl Default for RoutingConfig {
    fn default() -> Self {
        RoutingConfig::two_options()
    }
}

/// The adaptive option list of one table access, stored inline: after
/// de-duplication it can never exceed the switch radix, which
/// [`FaRouting`] validates against [`MAX_PORTS`] at build time.
pub type AdaptiveOptions = InlineVec<PortIndex, MAX_PORTS>;

/// The routing options a switch offers one packet — the decoded result of
/// the forwarding-table access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteOptions {
    /// The escape option; always present.
    pub escape: PortIndex,
    /// Adaptive (minimal) options; empty for deterministic requests.
    /// Inline (no heap) so the simulator's per-hop decode stays
    /// allocation-free.
    pub adaptive: AdaptiveOptions,
}

/// FA routing compiled for one topology: the LID assignment plus one
/// interleaved forwarding table per switch. Generic over the escape
/// layer `E`; the default is the paper's up\*/down\*.
///
/// Fields are crate-visible so the delta rebuild (`crate::delta`) can
/// patch affected destination rows in place after a link failure.
#[derive(Clone, Debug)]
pub struct FaRouting<E: EscapeEngine = UpDownRouting> {
    pub(crate) config: RoutingConfig,
    pub(crate) lid_map: LidMap,
    pub(crate) escape: E,
    pub(crate) minimal: MinimalRouting,
    pub(crate) tables: Vec<InterleavedForwardingTable>,
    /// Which switches support the adaptive mechanism (§4.2 allows mixing
    /// enhanced and plain deterministic switches in one subnet).
    pub(crate) adaptive_capable: Vec<bool>,
    /// `Some(x)` when the tables implement *source-selected multipath*
    /// over `x` deterministic path variants instead of switch adaptivity.
    pub(crate) source_multipath: Option<u16>,
    /// APM coexistence (§4.1 footnote): `Some` when the upper half of
    /// every destination's LID range holds an *alternate* path set.
    pub(crate) apm: Option<ApmInfo>,
    /// Precomputed decode of every (switch, DLID) table access, shared by
    /// reference — the simulator resolves millions of routes per run and
    /// must not re-derive (and re-allocate) the option lists each time.
    /// Identical decodes are *interned*: switches whose tables agree on a
    /// destination share one allocation (structural sharing).
    pub(crate) route_cache: Vec<Vec<Option<Arc<RouteOptions>>>>,
}

/// APM bookkeeping.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ApmInfo {
    /// First LID offset of the alternate (APM) half.
    base_offset: u16,
    /// Frame anchor of the alternate escape orientation.
    alt_root: SwitchId,
}

fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(c.wrapping_mul(0x1656_67B1_9E37_79F9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// The four canonical constructors on the **default** (up\*/down\*)
/// instantiation. Kept on the concrete type so the ~hundred existing
/// call sites (`FaRouting::build(&topo, cfg)`) need no turbofish; the
/// generic spellings live in the `impl<E: EscapeEngine>` block below.
impl FaRouting {
    /// Compile FA-over-up\*/down\* with every switch adaptive-capable.
    pub fn build(topo: &Topology, config: RoutingConfig) -> Result<FaRouting, IbaError> {
        Self::build_with_engine(topo, config)
    }

    /// Compile FA-over-up\*/down\* for a *mixed* fabric (§4.2). See
    /// [`Self::build_mixed_with_engine`].
    pub fn build_mixed(
        topo: &Topology,
        config: RoutingConfig,
        adaptive_capable: &[bool],
    ) -> Result<FaRouting, IbaError> {
        Self::build_mixed_with_engine(topo, config, adaptive_capable)
    }

    /// Compile FA-over-up\*/down\* with APM coexistence. See
    /// [`Self::build_apm_with_engine`].
    pub fn build_with_apm(topo: &Topology, config: RoutingConfig) -> Result<FaRouting, IbaError> {
        Self::build_apm_with_engine(topo, config)
    }

    /// Compile source-selected multipath tables over up\*/down\*
    /// variants. See [`Self::build_source_multipath_with_engine`].
    pub fn build_source_multipath(
        topo: &Topology,
        config: RoutingConfig,
    ) -> Result<FaRouting, IbaError> {
        Self::build_source_multipath_with_engine(topo, config)
    }
}

impl<E: EscapeEngine> FaRouting<E> {
    /// Compile FA over escape engine `E` with every switch
    /// adaptive-capable.
    pub fn build_with_engine(topo: &Topology, config: RoutingConfig) -> Result<Self, IbaError> {
        Self::build_mixed_with_engine(topo, config, &vec![true; topo.num_switches()])
    }

    /// Build the escape engine honouring an explicit frame anchor.
    fn engine_for(topo: &Topology, config: &RoutingConfig) -> Result<E, IbaError> {
        match config.root {
            Some(root) => E::build_with_root(topo, root),
            None => E::build(topo),
        }
    }

    /// Compile FA routing for a *mixed* fabric (§4.2): switches with
    /// `adaptive_capable[s] == false` are plain deterministic IBA
    /// switches. Per the paper, their forwarding tables are programmed
    /// with "all the table addresses that correspond to the same
    /// destination port with the same switch output port" — the escape
    /// hop.
    ///
    /// Additionally, adaptive slots at *capable* switches only store
    /// minimal options whose next hop is another capable switch (or the
    /// destination host): a deterministic switch's buffer has no escape
    /// read point, so its drainage is only guaranteed when every packet
    /// it holds continues a legal escape chain — which is exactly
    /// the case when packets enter it via escape options only.
    pub fn build_mixed_with_engine(
        topo: &Topology,
        config: RoutingConfig,
        adaptive_capable: &[bool],
    ) -> Result<Self, IbaError> {
        if adaptive_capable.len() != topo.num_switches() {
            return Err(IbaError::InvalidConfig(format!(
                "capability vector has {} entries for {} switches",
                adaptive_capable.len(),
                topo.num_switches()
            )));
        }
        ensure_radix(topo)?;
        if !config.table_options.is_power_of_two() {
            return Err(IbaError::InvalidOptionCount(config.table_options));
        }
        let lid_map = LidMap::for_options(topo.num_hosts() as u16, config.table_options)?;
        let escape = Self::engine_for(topo, &config)?;
        let minimal = MinimalRouting::build(topo)?;

        let x = config.table_options;
        let mut tables = Vec::with_capacity(topo.num_switches());
        for s in topo.switch_ids() {
            let mut table = InterleavedForwardingTable::new(lid_map.table_len(), x)?;
            for h in topo.host_ids() {
                program_host_rows(
                    topo,
                    &escape,
                    &minimal,
                    adaptive_capable,
                    &config,
                    &lid_map,
                    &mut table,
                    s,
                    h,
                )?;
            }
            tables.push(table);
        }
        let mut fa = FaRouting {
            config,
            lid_map,
            escape,
            minimal,
            tables,
            adaptive_capable: adaptive_capable.to_vec(),
            source_multipath: None,
            apm: None,
            route_cache: Vec::new(),
        };
        fa.fill_route_cache();
        Ok(fa)
    }

    /// Compile FA routing with **Automatic Path Migration coexistence**
    /// (§4.1, footnote 3): each destination's LID range doubles to
    /// `2 × table_options`; the top LMC bit selects the *path set*. The
    /// lower half is the ordinary FA group (escape + minimal adaptive
    /// options); the upper half is an equally-shaped group whose escape
    /// is an **alternate** orientation of the same engine, anchored at
    /// the switch farthest from the primary anchor — the independent
    /// path a CA migrates to on failure. The switch's interleave fanout
    /// stays `table_options`, so each half forms its own
    /// deterministic/adaptive group and "the APM mechanism uses
    /// different LIDs from those used for adaptive routing".
    ///
    /// Deadlock discipline: the two escape orientations are only jointly
    /// safe when they do not share virtual lanes. Keep primary and
    /// alternate traffic on SLs that map to different VLs (the simulator
    /// validates this for scripted traffic).
    pub fn build_apm_with_engine(topo: &Topology, config: RoutingConfig) -> Result<Self, IbaError> {
        if !config.table_options.is_power_of_two() {
            return Err(IbaError::InvalidOptionCount(config.table_options));
        }
        ensure_radix(topo)?;
        let x = config.table_options;
        let total = x.checked_mul(2).ok_or(IbaError::InvalidOptionCount(x))?;
        let lid_map = LidMap::for_options(topo.num_hosts() as u16, total)?;
        let escape = Self::engine_for(topo, &config)?;
        // Alternate orientation: anchored at the switch farthest from
        // the primary anchor (ties to the lowest id).
        let dist = topo.distances_from(escape.root());
        let alt_root = topo
            .switch_ids()
            .max_by_key(|s| (dist[s.index()], std::cmp::Reverse(s.0)))
            .ok_or_else(|| IbaError::InvalidTopology("empty topology".into()))?;
        let alternate = E::build_with_root(topo, alt_root)?;
        let minimal = MinimalRouting::build(topo)?;

        let mut tables = Vec::with_capacity(topo.num_switches());
        for s in topo.switch_ids() {
            let mut table = InterleavedForwardingTable::new(lid_map.table_len(), x)?;
            for h in topo.host_ids() {
                let t = topo.host_switch(h);
                for (half, layer) in [(0u16, &escape), (x, &alternate)] {
                    let (escape_port, adaptive): (PortIndex, Vec<PortIndex>) = if t == s {
                        let (_, port) = topo.host_attachment(h);
                        (port, vec![port])
                    } else {
                        (escape_hop(layer, s, t)?, minimal.options(s, t).to_vec())
                    };
                    table.set(lid_map.lid_for(h, half)?, escape_port)?;
                    let slots = x as usize - 1;
                    if slots > 0 {
                        let adaptive = if adaptive.is_empty() {
                            vec![escape_port]
                        } else {
                            adaptive
                        };
                        let start = (mix(s.0 as u64, h.0 as u64 ^ half as u64, config.seed)
                            % adaptive.len() as u64) as usize;
                        for k in 0..slots {
                            let opt = adaptive[(start + k) % adaptive.len()];
                            table.set(lid_map.lid_for(h, half + 1 + k as u16)?, opt)?;
                        }
                    }
                }
            }
            tables.push(table);
        }
        let mut fa = FaRouting {
            config,
            lid_map,
            escape,
            minimal,
            tables,
            adaptive_capable: vec![true; topo.num_switches()],
            source_multipath: None,
            apm: Some(ApmInfo {
                base_offset: x,
                alt_root,
            }),
            route_cache: Vec::new(),
        };
        fa.fill_route_cache();
        Ok(fa)
    }

    /// Whether the tables carry an APM alternate path set.
    #[inline]
    pub fn has_apm(&self) -> bool {
        self.apm.is_some()
    }

    /// Frame anchor of the alternate orientation, if APM is provisioned.
    pub fn apm_alt_root(&self) -> Option<SwitchId> {
        self.apm.map(|a| a.alt_root)
    }

    /// The DLID addressing `host` through the **alternate** (APM) path
    /// set, deterministic or adaptive.
    pub fn apm_dlid(&self, host: HostId, adaptive: bool) -> Result<Lid, IbaError> {
        let apm = self
            .apm
            .ok_or_else(|| IbaError::InvalidConfig("tables have no APM half".into()))?;
        if adaptive && self.config.table_options < 2 {
            return Err(IbaError::AdaptiveNeedsLmc);
        }
        self.lid_map
            .lid_for(host, apm.base_offset + u16::from(adaptive))
    }

    /// Compile *source-selected multipath* tables — the IBA-compatible
    /// alternative the paper's introduction dismisses: "IBA allows the
    /// use of alternative paths between any source-destination pair. The
    /// final path can be selected at each source node... However, by
    /// using alternative paths selected at the source node, the overall
    /// network performance is hardly improved."
    ///
    /// Plain (unmodified) switches forward linearly by the packet's exact
    /// DLID; each of a destination's `x` addresses is programmed with a
    /// *different deterministic* variant of the escape engine (the k-th
    /// consistent next-hop choice at every switch, per
    /// [`EscapeEngine::next_hop_variants`]), and sources rotate over the
    /// addresses per packet. All variants are legal moves of one
    /// orientation, so any mixture stays deadlock-free. Engines without
    /// a variant structure degrade to `x` copies of the single escape
    /// path.
    pub fn build_source_multipath_with_engine(
        topo: &Topology,
        config: RoutingConfig,
    ) -> Result<Self, IbaError> {
        if !config.table_options.is_power_of_two() {
            return Err(IbaError::InvalidOptionCount(config.table_options));
        }
        let lid_map = LidMap::for_options(topo.num_hosts() as u16, config.table_options)?;
        let escape = Self::engine_for(topo, &config)?;
        let minimal = MinimalRouting::build(topo)?;
        let x = config.table_options;
        let mut tables = Vec::with_capacity(topo.num_switches());
        for s in topo.switch_ids() {
            let mut table = InterleavedForwardingTable::new(lid_map.table_len(), x)?;
            for h in topo.host_ids() {
                let t = topo.host_switch(h);
                if t == s {
                    let (_, port) = topo.host_attachment(h);
                    for k in 0..x {
                        table.set(lid_map.lid_for(h, k)?, port)?;
                    }
                } else {
                    let variants = escape.next_hop_variants(topo, s, t);
                    debug_assert!(!variants.is_empty());
                    // Rotate which variant lands at which offset so that a
                    // fixed source offset spreads across the fabric.
                    let start =
                        (mix(s.0 as u64, h.0 as u64, config.seed) % variants.len() as u64) as usize;
                    for k in 0..x as usize {
                        let port = variants[(start + k) % variants.len()];
                        table.set(lid_map.lid_for(h, k as u16)?, port)?;
                    }
                }
            }
            tables.push(table);
        }
        let mut fa = FaRouting {
            config,
            lid_map,
            escape,
            minimal,
            tables,
            adaptive_capable: vec![false; topo.num_switches()],
            source_multipath: Some(x),
            apm: None,
            route_cache: Vec::new(),
        };
        fa.fill_route_cache();
        Ok(fa)
    }

    /// Decode every programmed (switch, DLID) entry once, *interning*
    /// identical decodes: two switches whose tables agree on a
    /// destination (common — escape chains converge, and deterministic
    /// switches repeat one port across the whole group) share a single
    /// allocation instead of carrying one copy per switch.
    fn fill_route_cache(&mut self) {
        let len = self.lid_map.table_len();
        let mut interned: HashMap<InternKey, Arc<RouteOptions>> = HashMap::new();
        self.route_cache = (0..self.tables.len())
            .map(|s| {
                (0..len)
                    .map(|lid| {
                        self.decode(SwitchId(s as u16), Lid(lid as u16))
                            .ok()
                            .map(|opts| {
                                interned
                                    .entry(intern_key(&opts))
                                    .or_insert_with(|| Arc::new(opts))
                                    .clone()
                            })
                    })
                    .collect()
            })
            .collect();
    }

    /// Structural-sharing statistics of the decoded forwarding state:
    /// `(programmed entries, distinct shared decodes)`. The gap between
    /// the two is memory the interning in [`Self::route_cache`] saved.
    pub fn route_cache_sharing(&self) -> (usize, usize) {
        let mut total = 0usize;
        let mut unique: std::collections::HashSet<*const RouteOptions> =
            std::collections::HashSet::new();
        for per_switch in &self.route_cache {
            for entry in per_switch.iter().flatten() {
                total += 1;
                unique.insert(Arc::as_ptr(entry));
            }
        }
        (total, unique.len())
    }

    /// Whether two routings program byte-identical forwarding tables on
    /// every switch — the machine-checked equality gate the incremental
    /// re-sweep is held to. The comparison is escape-engine-agnostic
    /// (tables are just bytes), so FA-over-different-engines can be
    /// compared directly.
    pub fn tables_equal<F: EscapeEngine>(&self, other: &FaRouting<F>) -> bool {
        self.tables == other.tables
    }

    /// `Some(x)` when the tables implement source-selected multipath over
    /// `x` addresses per destination (sources rotate the DLID offset; the
    /// switches stay plain deterministic).
    #[inline]
    pub fn source_multipath(&self) -> Option<u16> {
        self.source_multipath
    }

    /// Whether switch `s` supports the adaptive mechanism.
    #[inline]
    pub fn switch_adaptive(&self, s: SwitchId) -> bool {
        self.adaptive_capable[s.index()]
    }

    /// The configuration the tables were built with.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// The LID assignment.
    pub fn lid_map(&self) -> &LidMap {
        &self.lid_map
    }

    /// The escape-layer engine.
    pub fn escape(&self) -> &E {
        &self.escape
    }

    /// The minimal-option analysis the adaptive slots were filled from.
    pub fn minimal(&self) -> &MinimalRouting {
        &self.minimal
    }

    /// The forwarding table of one switch.
    pub fn table(&self, s: SwitchId) -> &InterleavedForwardingTable {
        &self.tables[s.index()]
    }

    /// Route a packet at switch `s`: one physical table access returning
    /// the packet's options. Errors only on unprogrammed DLIDs.
    ///
    /// At a deterministic switch the adaptive option list is always empty
    /// — the switch has no selection logic, whatever the table rows hold
    /// (§4.2 programs them all with the escape port anyway). An adaptive
    /// entry that happens to equal the escape entry is still a valid
    /// adaptive option: it is a legal escape hop that may simply be
    /// taken under the adaptive-queue credit rule.
    pub fn route(&self, s: SwitchId, dlid: Lid) -> Result<RouteOptions, IbaError> {
        self.route_shared(s, dlid).map(|r| (*r).clone())
    }

    /// Like [`Self::route`], returning the precomputed shared decode —
    /// the simulator's hot path (no allocation, no table walk).
    pub fn route_shared(&self, s: SwitchId, dlid: Lid) -> Result<Arc<RouteOptions>, IbaError> {
        self.route_cache[s.index()]
            .get(dlid.raw() as usize)
            .and_then(|e| e.clone())
            .ok_or(IbaError::UnknownLid(dlid.raw()))
    }

    /// Decode one physical table access (uncached; used to build the
    /// cache and by the delta rebuild to refresh affected entries).
    pub(crate) fn decode(&self, s: SwitchId, dlid: Lid) -> Result<RouteOptions, IbaError> {
        if self.adaptive_capable[s.index()] {
            let lookup = self.tables[s.index()].lookup(dlid);
            let escape = lookup.escape.ok_or(IbaError::UnknownLid(dlid.raw()))?;
            Ok(RouteOptions {
                escape,
                adaptive: lookup.adaptive.iter().copied().collect(),
            })
        } else {
            // A plain IBA switch forwards linearly by the exact DLID —
            // which is what lets source-selected multipath address
            // different paths through different addresses of the range.
            let escape = self.tables[s.index()]
                .get(dlid)
                .ok_or(IbaError::UnknownLid(dlid.raw()))?;
            Ok(RouteOptions {
                escape,
                adaptive: AdaptiveOptions::new(),
            })
        }
    }

    /// Convenience: the DLID for `host` in the given mode (delegates to
    /// the LID map).
    pub fn dlid(&self, host: HostId, adaptive: bool) -> Result<Lid, IbaError> {
        self.lid_map.dlid(host, adaptive)
    }
}

/// The inline option lists of [`RouteOptions`] (and the simulator's
/// feasible-candidate sets built from them) hold one entry per port at
/// most; reject exotic radices up front instead of overflowing later.
fn ensure_radix(topo: &Topology) -> Result<(), IbaError> {
    let ports = topo.ports_per_switch() as usize;
    if ports > MAX_PORTS {
        return Err(IbaError::InvalidConfig(format!(
            "switch radix {ports} exceeds the supported maximum {MAX_PORTS}"
        )));
    }
    Ok(())
}

fn escape_hop<E: EscapeEngine>(
    engine: &E,
    s: SwitchId,
    t: SwitchId,
) -> Result<PortIndex, IbaError> {
    engine
        .next_hop(s, t)
        .ok_or_else(|| IbaError::RoutingFailed(format!("no escape hop {s}→{t}")))
}

/// Interning key of one decoded table access: the escape port followed by
/// the adaptive ports, in slot order (build-time only, so the small
/// allocation per *distinct* decode is irrelevant).
type InternKey = Vec<u8>;

fn intern_key(opts: &RouteOptions) -> InternKey {
    let mut key = Vec::with_capacity(1 + opts.adaptive.len());
    key.push(opts.escape.0);
    for p in &opts.adaptive {
        key.push(p.0);
    }
    key
}

/// Program the whole LID group of host `h` into switch `s`'s table: the
/// escape row at offset 0, the adaptive rows (capability-filtered,
/// seed-rotated) at offsets `1..x`. Returns the number of table entries
/// written.
///
/// This is the single source of the per-row build logic, shared between
/// [`FaRouting::build_mixed_with_engine`] and the delta rebuild
/// (`crate::delta`) so an incremental recompute is byte-identical to a
/// full build *by construction*, not by coincidence.
#[allow(clippy::too_many_arguments)]
pub(crate) fn program_host_rows<E: EscapeEngine>(
    topo: &Topology,
    escape_engine: &E,
    minimal: &MinimalRouting,
    adaptive_capable: &[bool],
    config: &RoutingConfig,
    lid_map: &LidMap,
    table: &mut InterleavedForwardingTable,
    s: SwitchId,
    h: HostId,
) -> Result<u64, IbaError> {
    let t = topo.host_switch(h);
    let x = config.table_options;
    let (escape, mut adaptive): (PortIndex, Vec<PortIndex>) = if t == s {
        // Local delivery: the only option is the host port.
        let (_, port) = topo.host_attachment(h);
        (port, vec![port])
    } else {
        let escape = escape_hop(escape_engine, s, t)?;
        (escape, minimal.options(s, t).to_vec())
    };
    if !adaptive_capable[s.index()] {
        // Deterministic switch: every address stores the escape port
        // (§4.2).
        adaptive.clear();
    } else if t != s {
        // Safety filter for mixed fabrics: adaptive hops may only lead
        // into adaptive-capable switches.
        adaptive.retain(|&p| {
            topo.endpoint(s, p)
                .and_then(|ep| ep.node.as_switch())
                .is_none_or(|peer| adaptive_capable[peer.index()])
        });
    }
    table.set(lid_map.lid_for(h, 0)?, escape)?;
    let mut written = 1u64;
    let slots = x as usize - 1;
    if slots > 0 {
        if adaptive.is_empty() {
            // No usable adaptive option: program the escape port
            // everywhere, as a deterministic switch would.
            adaptive.push(escape);
        }
        // Seed-mixed rotation balances which minimal options are stored
        // when there are more than fit.
        let start = (mix(s.0 as u64, h.0 as u64, config.seed) % adaptive.len() as u64) as usize;
        for k in 0..slots {
            let opt = adaptive[(start + k) % adaptive.len()];
            table.set(lid_map.lid_for(h, 1 + k as u16)?, opt)?;
            written += 1;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topology::{regular, IrregularConfig};
    use proptest::prelude::*;

    fn build(n: usize, seed: u64, options: u16) -> (Topology, FaRouting) {
        let topo = IrregularConfig::paper(n, seed).generate().unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::with_options(options)).unwrap();
        (topo, fa)
    }

    #[test]
    fn deterministic_dlid_gets_exactly_the_escape_option() {
        let (topo, fa) = build(16, 1, 2);
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let r = fa.route(s, fa.dlid(h, false).unwrap()).unwrap();
                assert!(r.adaptive.is_empty());
                let t = topo.host_switch(h);
                if t == s {
                    let (_, port) = topo.host_attachment(h);
                    assert_eq!(r.escape, port);
                } else {
                    assert_eq!(Some(r.escape), fa.escape().next_hop(s, t));
                }
            }
        }
    }

    #[test]
    fn adaptive_dlid_gets_minimal_options() {
        let (topo, fa) = build(16, 2, 4);
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let t = topo.host_switch(h);
                if t == s {
                    continue;
                }
                let r = fa.route(s, fa.dlid(h, true).unwrap()).unwrap();
                assert!(!r.adaptive.is_empty());
                // Every adaptive option is a genuine minimal option.
                for p in &r.adaptive {
                    assert!(
                        fa.minimal().options(s, t).contains(p),
                        "{s}→{h}: {p} is not minimal"
                    );
                }
                // No duplicates.
                let mut dedup = r.adaptive.to_vec();
                dedup.dedup();
                dedup.sort();
                dedup.dedup();
                assert_eq!(dedup.len(), r.adaptive.len());
                // With x options we can store at most x−1 adaptive ones.
                assert!(r.adaptive.len() <= 3);
            }
        }
    }

    #[test]
    fn local_delivery_routes_to_the_host_port() {
        let (topo, fa) = build(8, 3, 2);
        for h in topo.host_ids() {
            let s = topo.host_switch(h);
            let (_, port) = topo.host_attachment(h);
            let det = fa.route(s, fa.dlid(h, false).unwrap()).unwrap();
            let ada = fa.route(s, fa.dlid(h, true).unwrap()).unwrap();
            assert_eq!(det.escape, port);
            assert_eq!(ada.escape, port);
            assert_eq!(ada.adaptive, vec![port]);
        }
    }

    #[test]
    fn single_option_config_is_pure_updown() {
        let (topo, fa) = build(8, 4, 1);
        // No adaptive DLIDs exist with LMC 0.
        assert!(fa.dlid(HostId(0), true).is_err());
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let r = fa.route(s, fa.dlid(h, false).unwrap()).unwrap();
                assert!(r.adaptive.is_empty());
                let t = topo.host_switch(h);
                if t != s {
                    assert_eq!(Some(r.escape), fa.escape().next_hop(s, t));
                }
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two_options() {
        let topo = regular::ring(4, 1).unwrap();
        assert!(FaRouting::build(
            &topo,
            RoutingConfig {
                table_options: 3,
                seed: 0,
                root: None
            }
        )
        .is_err());
    }

    #[test]
    fn rotation_balances_stored_options() {
        // On a 6-ring, switch 0 → switch 3 has two minimal options; with
        // x = 2 only one fits. Different (switch, host) pairs must not all
        // store the same one — check both directions appear somewhere.
        let topo = regular::ring(6, 2).unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let t = topo.host_switch(h);
                if fa.minimal().option_count(s, t) >= 2 {
                    let r = fa.route(s, fa.dlid(h, true).unwrap()).unwrap();
                    seen.insert(
                        (fa.minimal()
                            .options(s, t)
                            .iter()
                            .position(|p| *p == r.adaptive[0]))
                        .unwrap(),
                    );
                }
            }
        }
        assert_eq!(seen.len(), 2, "rotation never picked the second option");
    }

    #[test]
    fn mixed_fabric_deterministic_switches_offer_only_escape() {
        let topo = IrregularConfig::paper(16, 9).generate().unwrap();
        let mut caps = vec![true; 16];
        caps[3] = false;
        caps[7] = false;
        let fa = FaRouting::build_mixed(&topo, RoutingConfig::with_options(2), &caps).unwrap();
        assert!(!fa.switch_adaptive(SwitchId(3)));
        assert!(fa.switch_adaptive(SwitchId(0)));
        for h in topo.host_ids() {
            for &det_sw in &[SwitchId(3), SwitchId(7)] {
                let r = fa.route(det_sw, fa.dlid(h, true).unwrap()).unwrap();
                assert!(r.adaptive.is_empty(), "det switch offered adaptive options");
                // §4.2: every table address of the group holds the escape port.
                let base = fa.lid_map().base_lid(h);
                for off in 0..2u16 {
                    let lid = iba_core::Lid(base.raw() + off);
                    assert_eq!(fa.table(det_sw).get(lid), Some(r.escape));
                }
            }
        }
    }

    #[test]
    fn mixed_fabric_adaptive_hops_avoid_deterministic_switches() {
        let topo = IrregularConfig::paper(16, 10).generate().unwrap();
        let caps: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let fa = FaRouting::build_mixed(&topo, RoutingConfig::with_options(4), &caps).unwrap();
        for s in topo.switch_ids().filter(|s| caps[s.index()]) {
            for h in topo.host_ids() {
                if topo.host_switch(h) == s {
                    continue;
                }
                let r = fa.route(s, fa.dlid(h, true).unwrap()).unwrap();
                for &p in &r.adaptive {
                    // Every adaptive hop lands on a host or a capable switch —
                    // except fill-up copies of the escape port, which follow
                    // the escape chain and are always legal.
                    if p == r.escape {
                        continue;
                    }
                    let ep = topo.endpoint(s, p).unwrap();
                    if let Some(peer) = ep.node.as_switch() {
                        assert!(
                            caps[peer.index()],
                            "{s}: adaptive hop {p} leads into deterministic {peer}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_deterministic_fabric_equals_pure_updown() {
        let topo = IrregularConfig::paper(8, 11).generate().unwrap();
        let caps = vec![false; 8];
        let fa = FaRouting::build_mixed(&topo, RoutingConfig::with_options(2), &caps).unwrap();
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let r = fa.route(s, fa.dlid(h, true).unwrap()).unwrap();
                assert!(r.adaptive.is_empty());
                let t = topo.host_switch(h);
                if t != s {
                    assert_eq!(Some(r.escape), fa.escape().next_hop(s, t));
                }
            }
        }
    }

    #[test]
    fn source_multipath_paths_terminate_for_every_offset() {
        let topo = IrregularConfig::paper(16, 13).generate().unwrap();
        let fa = FaRouting::build_source_multipath(&topo, RoutingConfig::with_options(4)).unwrap();
        assert_eq!(fa.source_multipath(), Some(4));
        for s in topo.switch_ids() {
            assert!(!fa.switch_adaptive(s), "multipath uses plain switches");
        }
        for offset in 0..4u16 {
            for h in topo.host_ids().take(16) {
                let dlid = fa.lid_map().lid_for(h, offset).unwrap();
                // Walk the fixed-offset path.
                let mut cur = topo.host_switch(HostId(0));
                let src_sw = cur;
                let _ = src_sw;
                let mut hops = 0;
                loop {
                    let r = fa.route(cur, dlid).unwrap();
                    assert!(r.adaptive.is_empty());
                    match topo.endpoint(cur, r.escape).unwrap().node {
                        iba_core::NodeRef::Host(reached) => {
                            assert_eq!(reached, h, "offset {offset} path reached wrong host");
                            break;
                        }
                        iba_core::NodeRef::Switch(next) => {
                            cur = next;
                            hops += 1;
                            assert!(
                                hops <= 3 * topo.num_switches(),
                                "offset {offset} path to {h} does not terminate"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn source_multipath_offers_distinct_paths_somewhere() {
        let topo = IrregularConfig::paper(16, 14).generate().unwrap();
        let fa = FaRouting::build_source_multipath(&topo, RoutingConfig::two_options()).unwrap();
        let mut distinct = 0;
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let a = fa.route(s, fa.lid_map().lid_for(h, 0).unwrap()).unwrap();
                let b = fa.route(s, fa.lid_map().lid_for(h, 1).unwrap()).unwrap();
                if a.escape != b.escape {
                    distinct += 1;
                }
            }
        }
        assert!(distinct > 0, "multipath never offered a second path");
    }

    #[test]
    fn capability_vector_must_match_topology() {
        let topo = IrregularConfig::paper(8, 12).generate().unwrap();
        assert!(FaRouting::build_mixed(&topo, RoutingConfig::two_options(), &[true; 4]).is_err());
    }

    #[test]
    fn apm_tables_carry_two_independent_path_sets() {
        let topo = IrregularConfig::paper(16, 21).generate().unwrap();
        let fa = FaRouting::build_with_apm(&topo, RoutingConfig::two_options()).unwrap();
        assert!(fa.has_apm());
        assert_eq!(fa.lid_map().lmc().bits(), 2); // 2 primary + 2 APM addresses
        assert_ne!(fa.apm_alt_root(), Some(fa.escape().root()));
        let mut first_hops_differ = 0;
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let t = topo.host_switch(h);
                let primary = fa.route(s, fa.dlid(h, false).unwrap()).unwrap();
                let alt = fa.route(s, fa.apm_dlid(h, false).unwrap()).unwrap();
                // Deterministic requests return exactly one option in
                // either half.
                assert!(primary.adaptive.is_empty());
                assert!(alt.adaptive.is_empty());
                if t == s {
                    assert_eq!(primary.escape, alt.escape, "local delivery");
                } else if primary.escape != alt.escape {
                    first_hops_differ += 1;
                }
                // Adaptive requests offer minimal options in both halves.
                let alt_ada = fa.route(s, fa.apm_dlid(h, true).unwrap()).unwrap();
                for p in &alt_ada.adaptive {
                    if *p != alt_ada.escape && t != s {
                        assert!(fa.minimal().options(s, t).contains(p));
                    }
                }
            }
        }
        assert!(first_hops_differ > 0, "alternate paths never diverged");
    }

    #[test]
    fn apm_alternate_escape_chains_terminate() {
        let topo = IrregularConfig::paper(8, 22).generate().unwrap();
        let fa = FaRouting::build_with_apm(&topo, RoutingConfig::two_options()).unwrap();
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let mut cur = s;
                let mut hops = 0;
                loop {
                    let r = fa.route(cur, fa.apm_dlid(h, false).unwrap()).unwrap();
                    match topo.endpoint(cur, r.escape).unwrap().node {
                        iba_core::NodeRef::Host(reached) => {
                            assert_eq!(reached, h);
                            break;
                        }
                        iba_core::NodeRef::Switch(next) => {
                            cur = next;
                            hops += 1;
                            assert!(hops <= 2 * topo.num_switches(), "APM chain loops");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn apm_dlid_requires_apm_tables() {
        let topo = IrregularConfig::paper(8, 23).generate().unwrap();
        let fa = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
        assert!(!fa.has_apm());
        assert!(fa.apm_dlid(HostId(0), false).is_err());
    }

    #[test]
    fn route_rejects_unknown_dlid() {
        let (_, fa) = build(8, 5, 2);
        assert!(fa.route(SwitchId(0), Lid(0)).is_err());
    }

    #[test]
    fn tables_conform_to_linear_interface() {
        // The subnet-manager view of every switch's table must be fully
        // programmed for every assigned LID.
        let (topo, fa) = build(8, 6, 4);
        for s in topo.switch_ids() {
            let view = fa.table(s).linear_view();
            for h in topo.host_ids() {
                for off in 0..4u16 {
                    let lid = fa.lid_map().lid_for(h, off).unwrap();
                    assert!(
                        view[lid.raw() as usize].is_some(),
                        "{s} lid {lid} unprogrammed"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Escape chains always reach the destination switch (the
        /// deadlock-free layer is complete), and adaptive options always
        /// reduce distance by one.
        #[test]
        fn prop_fa_options_sound(seed in any::<u64>(), options_log in 1u32..3) {
            let topo = IrregularConfig::paper(16, seed).generate().unwrap();
            let fa = FaRouting::build(&topo, RoutingConfig::with_options(1 << options_log)).unwrap();
            for s in topo.switch_ids() {
                for h in topo.host_ids() {
                    let t = topo.host_switch(h);
                    if t == s { continue; }
                    let r = fa.route(s, fa.dlid(h, true).unwrap()).unwrap();
                    for p in &r.adaptive {
                        let peer = topo.endpoint(s, *p).unwrap().node.as_switch().unwrap();
                        prop_assert_eq!(fa.minimal().distance(peer, t) + 1, fa.minimal().distance(s, t));
                    }
                }
            }
        }
    }
}
