//! Minimal-path routing options.
//!
//! The adaptive options of the FA algorithm (§3) are *minimal*: at each
//! switch, any output port that lies on a shortest path to the
//! destination's switch is a valid adaptive choice. This module computes,
//! for every `(switch, destination switch)` pair, the full set of such
//! ports — the raw material both for the forwarding tables (`fa`) and for
//! the Table 2 analysis (`analysis`).

use iba_core::{IbaError, PortIndex, SwitchId};
use iba_topology::Topology;

/// All minimal next-hop ports for every (switch, destination-switch) pair.
///
/// Fields are crate-visible so the delta rebuild (`crate::delta`) can
/// patch individual destination columns in place after a link failure.
#[derive(Clone, Debug)]
pub struct MinimalRouting {
    /// `dist[s][t]`: unconstrained shortest distance between switches.
    pub(crate) dist: Vec<Vec<u32>>,
    /// `options[t][s]`: ports of `s` on shortest paths to `t`, in
    /// ascending port order. Empty for `s == t`.
    pub(crate) options: Vec<Vec<Vec<PortIndex>>>,
}

impl MinimalRouting {
    /// Compute minimal options for `topo`.
    pub fn build(topo: &Topology) -> Result<MinimalRouting, IbaError> {
        let n = topo.num_switches();
        let dist = topo.switch_distances();
        if dist.iter().any(|row| row.contains(&u32::MAX)) {
            return Err(IbaError::RoutingFailed("topology disconnected".into()));
        }
        let mut options = vec![vec![Vec::new(); n]; n];
        for s in topo.switch_ids() {
            for (port, peer, _) in topo.switch_neighbors(s) {
                for t in 0..n {
                    if s.index() != t && dist[peer.index()][t] + 1 == dist[s.index()][t] {
                        options[t][s.index()].push(port);
                    }
                }
            }
        }
        Ok(MinimalRouting { dist, options })
    }

    /// Shortest distance between two switches, in hops.
    #[inline]
    pub fn distance(&self, s: SwitchId, t: SwitchId) -> u32 {
        self.dist[s.index()][t.index()]
    }

    /// Minimal next-hop ports of `s` towards `t`, ascending by port.
    /// Empty iff `s == t`.
    #[inline]
    pub fn options(&self, s: SwitchId, t: SwitchId) -> &[PortIndex] {
        &self.options[t.index()][s.index()]
    }

    /// Number of distinct minimal options of `s` towards `t`.
    #[inline]
    pub fn option_count(&self, s: SwitchId, t: SwitchId) -> usize {
        self.options(s, t).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topology::{regular, IrregularConfig};
    use proptest::prelude::*;

    #[test]
    fn ring_has_two_options_only_across() {
        // On an even ring, opposite switches have two minimal directions;
        // all other pairs have one.
        let topo = regular::ring(6, 1).unwrap();
        let mr = MinimalRouting::build(&topo).unwrap();
        assert_eq!(mr.option_count(SwitchId(0), SwitchId(3)), 2);
        assert_eq!(mr.option_count(SwitchId(0), SwitchId(1)), 1);
        assert_eq!(mr.option_count(SwitchId(0), SwitchId(2)), 1);
        assert_eq!(mr.option_count(SwitchId(0), SwitchId(0)), 0);
    }

    #[test]
    fn hypercube_option_count_is_hamming_distance() {
        // In a hypercube every differing dimension is a minimal first hop.
        let topo = regular::hypercube(4, 1).unwrap();
        let mr = MinimalRouting::build(&topo).unwrap();
        for s in 0..16u16 {
            for t in 0..16u16 {
                let hamming = (s ^ t).count_ones() as usize;
                assert_eq!(
                    mr.option_count(SwitchId(s), SwitchId(t)),
                    hamming,
                    "sw{s} → sw{t}"
                );
            }
        }
    }

    #[test]
    fn options_point_strictly_closer() {
        let topo = IrregularConfig::paper(32, 11).generate().unwrap();
        let mr = MinimalRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                for &port in mr.options(s, t) {
                    let peer = topo.endpoint(s, port).unwrap().node.as_switch().unwrap();
                    assert_eq!(mr.distance(peer, t) + 1, mr.distance(s, t));
                }
            }
        }
    }

    #[test]
    fn every_remote_pair_has_at_least_one_option() {
        let topo = IrregularConfig::paper(16, 2).generate().unwrap();
        let mr = MinimalRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s != t {
                    assert!(mr.option_count(s, t) >= 1);
                }
            }
        }
    }

    #[test]
    fn option_count_bounded_by_degree() {
        let topo = IrregularConfig::paper(16, 3).generate().unwrap();
        let mr = MinimalRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                assert!(mr.option_count(s, t) <= topo.switch_degree(s));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Higher connectivity gives at least as many multi-option pairs,
        /// in ensemble average (the driver of the paper's §5.2.2).
        #[test]
        fn prop_options_valid_on_any_seed(seed in any::<u64>()) {
            let topo = IrregularConfig::paper(16, seed).generate().unwrap();
            let mr = MinimalRouting::build(&topo).unwrap();
            for s in topo.switch_ids() {
                for t in topo.switch_ids() {
                    if s == t {
                        prop_assert!(mr.options(s, t).is_empty());
                    } else {
                        prop_assert!(!mr.options(s, t).is_empty());
                        // Sorted, distinct ports.
                        let opts = mr.options(s, t);
                        prop_assert!(opts.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }
        }
    }
}
