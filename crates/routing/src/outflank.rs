//! OutFlank-style escape routing for 2-D tori (after arXiv:1310.7453,
//! "OFAR"-family routing on tori): a deterministic, VC-free escape
//! layer that never crosses a wrap-around ("dateline") link.
//!
//! The classic problem with torus escape layers is that rings deadlock:
//! dimension-order over the *wrap-around* links creates a credit cycle
//! per ring, conventionally broken with an extra virtual channel per
//! dateline crossing. IBA switches give us no routing-relevant VCs to
//! spare (the paper's FA mechanism already spends the VL split on
//! adaptive-vs-escape separation), so this engine takes the other exit:
//! the escape layer simply *never uses the wrap-around links*. Routing
//! X-first-then-Y over the mesh sub-graph is plain dimension-order
//! routing on a mesh, whose channel-dependency graph is acyclic by the
//! standard turn argument — certified here by construction *and* by
//! [`certify_engine`](crate::engine::certify_engine) like every other
//! engine.
//!
//! The adaptive (minimal) layer above is free to cross datelines: FA's
//! deadlock argument only needs the escape layer to be acyclic and
//! always available. That is exactly the OutFlank trade — escape paths
//! are longer (up to `rows + cols − 2` hops instead of the torus
//! diameter), but they are rarely taken under load, while minimal
//! adaptive options exploit the full torus bisection.
//!
//! The engine infers the `rows × cols` geometry from the wiring (ids
//! are row-major, as produced by `iba_topology::regular::torus2d`) and
//! rejects anything that is not a 2-D torus with `rows, cols ≥ 3`.

use crate::engine::EscapeEngine;
use iba_core::{IbaError, PortIndex, SwitchId};
use iba_topology::Topology;

/// Dateline-free dimension-order escape routing on a 2-D torus.
#[derive(Clone, Debug)]
pub struct OutflankRouting {
    rows: usize,
    cols: usize,
    /// `next_hop[t][s]`: output port of `s` towards destination `t`
    /// (`None` on the diagonal).
    next_hop: Vec<Vec<Option<PortIndex>>>,
}

impl OutflankRouting {
    /// Compile the engine, inferring the torus geometry from the wiring.
    pub fn build(topo: &Topology) -> Result<OutflankRouting, IbaError> {
        let (rows, cols) = infer_geometry(topo).ok_or_else(|| {
            IbaError::InvalidTopology(
                "outflank escape requires a row-major 2-D torus (rows, cols >= 3)".into(),
            )
        })?;
        let n = rows * cols;
        let mut next_hop = vec![vec![None; n]; n];
        for (t, row) in next_hop.iter_mut().enumerate() {
            let (tr, tc) = (t / cols, t % cols);
            for (s, hop) in row.iter_mut().enumerate() {
                if s == t {
                    continue;
                }
                let (r, c) = (s / cols, s % cols);
                // X first, then Y — always through the mesh sub-graph
                // (no index ever wraps), so no dateline is crossed.
                let neighbor = if c != tc {
                    r * cols + if tc > c { c + 1 } else { c - 1 }
                } else {
                    (if tr > r { r + 1 } else { r - 1 }) * cols + c
                };
                let port = topo
                    .port_towards(SwitchId(s as u16), SwitchId(neighbor as u16))
                    .ok_or_else(|| {
                        IbaError::InvalidTopology(format!(
                            "torus wiring lacks the {s}→{neighbor} mesh link"
                        ))
                    })?;
                *hop = Some(port);
            }
        }
        Ok(OutflankRouting {
            rows,
            cols,
            next_hop,
        })
    }

    /// The inferred geometry `(rows, cols)`.
    pub fn geometry(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Smallest-rows-first factorization of the switch count whose row-major
/// torus wiring matches `topo` exactly. Non-square tori admit only one
/// valid factorization (the neighbor relation differs); square tori are
/// symmetric and the scan order keeps the choice deterministic.
fn infer_geometry(topo: &Topology) -> Option<(usize, usize)> {
    let n = topo.num_switches();
    (3..=n / 3)
        .filter(|&rows| n.is_multiple_of(rows) && n / rows >= 3)
        .map(|rows| (rows, n / rows))
        .find(|&(rows, cols)| wiring_matches(topo, rows, cols))
}

fn wiring_matches(topo: &Topology, rows: usize, cols: usize) -> bool {
    // A torus has exactly 2 links per switch-pair-free dimension step;
    // extra or missing links disqualify the shape outright.
    if topo.num_switch_links() != 2 * rows * cols {
        return false;
    }
    for r in 0..rows {
        for c in 0..cols {
            let s = SwitchId((r * cols + c) as u16);
            let right = SwitchId((r * cols + (c + 1) % cols) as u16);
            let down = SwitchId(((r + 1) % rows * cols + c) as u16);
            if topo.port_towards(s, right).is_none() || topo.port_towards(s, down).is_none() {
                return false;
            }
        }
    }
    true
}

impl EscapeEngine for OutflankRouting {
    const NAME: &'static str = "outflank";

    fn build(topo: &Topology) -> Result<Self, IbaError> {
        OutflankRouting::build(topo)
    }

    fn build_with_root(topo: &Topology, root: SwitchId) -> Result<Self, IbaError> {
        // Dimension-order routing has no root; validate the id so a
        // stale anchor from another topology is still caught.
        if root.index() >= topo.num_switches() {
            return Err(IbaError::InvalidConfig(format!(
                "root {root} out of range for {} switches",
                topo.num_switches()
            )));
        }
        OutflankRouting::build(topo)
    }

    fn root(&self) -> SwitchId {
        SwitchId(0)
    }

    fn next_hop(&self, s: SwitchId, t: SwitchId) -> Option<PortIndex> {
        self.next_hop[t.index()][s.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::certify_engine;
    use iba_topology::{regular, IrregularConfig};

    #[test]
    fn escape_paths_are_dateline_free_dimension_order() {
        let topo = regular::torus2d(4, 5, 1).unwrap();
        let rt = OutflankRouting::build(&topo).unwrap();
        assert_eq!(rt.geometry(), (4, 5));
        let (rows, cols) = rt.geometry();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    assert!(rt.next_hop(s, t).is_none());
                    continue;
                }
                let path = rt.path(&topo, s, t).unwrap();
                // Mesh-restricted DOR length: coordinate deltas without
                // wrap-around.
                let (r, c) = (s.index() / cols, s.index() % cols);
                let (tr, tc) = (t.index() / cols, t.index() % cols);
                let expect = r.abs_diff(tr) + c.abs_diff(tc);
                assert_eq!(path.len() - 1, expect, "{s}→{t} not mesh-DOR");
                // No hop ever crosses a dateline (index wrap in either
                // dimension).
                for w in path.windows(2) {
                    let (ar, ac) = (w[0].index() / cols, w[0].index() % cols);
                    let (br, bc) = (w[1].index() / cols, w[1].index() % cols);
                    assert!(
                        ar.abs_diff(br) + ac.abs_diff(bc) == 1,
                        "{s}→{t} crossed a dateline at {}→{}",
                        w[0],
                        w[1]
                    );
                }
                let _ = rows;
            }
        }
    }

    #[test]
    fn certified_acyclic_on_square_and_rectangular_tori() {
        for (rows, cols) in [(3, 3), (4, 4), (3, 5), (8, 8)] {
            let topo = regular::torus2d(rows, cols, 2).unwrap();
            let rt = OutflankRouting::build(&topo).unwrap();
            certify_engine(&topo, &rt).unwrap();
        }
    }

    #[test]
    fn rectangular_geometry_is_inferred_correctly() {
        // 12 switches factor as 3×4 and 4×3; only the wired one matches.
        let topo = regular::torus2d(3, 4, 1).unwrap();
        assert_eq!(OutflankRouting::build(&topo).unwrap().geometry(), (3, 4));
        let topo = regular::torus2d(4, 3, 1).unwrap();
        assert_eq!(OutflankRouting::build(&topo).unwrap().geometry(), (4, 3));
    }

    #[test]
    fn non_torus_topologies_are_rejected() {
        for topo in [
            IrregularConfig::paper(16, 1).generate().unwrap(),
            regular::mesh2d(4, 4, 1).unwrap(),
            regular::ring(9, 1).unwrap(),
            regular::hypercube(4, 1).unwrap(),
        ] {
            assert!(
                OutflankRouting::build(&topo).is_err(),
                "accepted a non-torus with {} switches",
                topo.num_switches()
            );
        }
    }

    #[test]
    fn root_is_ignored_but_validated() {
        let topo = regular::torus2d(3, 3, 1).unwrap();
        let a = <OutflankRouting as EscapeEngine>::build_with_root(&topo, SwitchId(5)).unwrap();
        let b = OutflankRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                assert_eq!(a.next_hop(s, t), b.next_hop(s, t));
            }
        }
        assert!(<OutflankRouting as EscapeEngine>::build_with_root(&topo, SwitchId(99)).is_err());
    }
}
