//! The interleaved linear forwarding table (§4.1, Figure 1).
//!
//! IBA's *linear forwarding table* is a plain array: the DLID indexes the
//! table and each entry holds one output port. The paper's mechanism
//! keeps that external interface — the subnet manager still programs the
//! table entry-by-entry as if destinations were ordinary LIDs — but
//! organizes the memory internally as `x` interleaved modules selected by
//! the `log2(x)` least-significant bits of the address. One access then
//! returns the data at *all* `x` addresses of the aligned group
//! simultaneously: the full set of routing options of the packet's
//! destination.
//!
//! The switch decides how much of the group to use from a single header
//! bit (§4.2): if the DLID's least-significant bit is clear the packet
//! asked for deterministic routing and only the entry at the group's
//! first address (the escape/up\*/down\* option) is returned; if it is
//! set, the whole group is returned.

use iba_core::{IbaError, Lid, PortIndex};
use serde::{Deserialize, Serialize};

/// Value IBA uses for an unprogrammed forwarding-table entry.
const INVALID_PORT: u8 = 0xFF;

/// The result of one (physical) forwarding-table access for a packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableLookup {
    /// The escape / deterministic option: entry at the group's first
    /// address. `None` if unprogrammed.
    pub escape: Option<PortIndex>,
    /// The adaptive options: entries at the remaining addresses of the
    /// group, de-duplicated, in module order. Empty for a deterministic
    /// request.
    pub adaptive: Vec<PortIndex>,
}

/// A linear forwarding table stored as `x` interleaved memory modules.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterleavedForwardingTable {
    /// `modules[m][row]` = entry at linear address `row * x + m`.
    modules: Vec<Vec<u8>>,
    /// Number of modules (`x`, a power of two).
    fanout: u16,
    /// Linear capacity (number of addressable LIDs).
    len: usize,
}

impl InterleavedForwardingTable {
    /// An empty (all-invalid) table of `len` linear entries organized in
    /// `fanout` modules. `fanout` must be a power of two (the module is
    /// selected by low address bits), matching `2^LMC`.
    pub fn new(len: usize, fanout: u16) -> Result<Self, IbaError> {
        if fanout == 0 || !fanout.is_power_of_two() || fanout > 128 {
            return Err(IbaError::InvalidOptionCount(fanout));
        }
        let rows = len.div_ceil(fanout as usize);
        Ok(InterleavedForwardingTable {
            modules: vec![vec![INVALID_PORT; rows]; fanout as usize],
            fanout,
            len,
        })
    }

    /// Number of linear entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of interleaved modules (`x` = routing options per
    /// destination).
    #[inline]
    pub fn fanout(&self) -> u16 {
        self.fanout
    }

    #[inline]
    fn split(&self, addr: usize) -> (usize, usize) {
        (addr % self.fanout as usize, addr / self.fanout as usize)
    }

    /// Linear (subnet-manager) write: program one entry, exactly as a
    /// spec-conformant SMP `SubnSet(LinearForwardingTable)` would.
    pub fn set(&mut self, lid: Lid, port: PortIndex) -> Result<(), IbaError> {
        let addr = lid.raw() as usize;
        if addr >= self.len {
            return Err(IbaError::UnknownLid(lid.raw()));
        }
        let (m, row) = self.split(addr);
        self.modules[m][row] = port.0;
        Ok(())
    }

    /// Linear (subnet-manager) read of one entry.
    pub fn get(&self, lid: Lid) -> Option<PortIndex> {
        let addr = lid.raw() as usize;
        if addr >= self.len {
            return None;
        }
        let (m, row) = self.split(addr);
        let v = self.modules[m][row];
        (v != INVALID_PORT).then_some(PortIndex(v))
    }

    /// The physical *simultaneous* access a packet triggers (Figure 1):
    /// all modules are read at the packet's group row in parallel; the
    /// DLID's least-significant bit decides whether only the first entry
    /// (deterministic) or the whole group (adaptive) is used.
    pub fn lookup(&self, dlid: Lid) -> TableLookup {
        let addr = dlid.raw() as usize;
        if addr >= self.len {
            return TableLookup {
                escape: None,
                adaptive: Vec::new(),
            };
        }
        let row = addr / self.fanout as usize;
        let escape = {
            let v = self.modules[0][row];
            (v != INVALID_PORT).then_some(PortIndex(v))
        };
        let mut adaptive = Vec::new();
        if dlid.requests_adaptive() {
            for module in &self.modules[1..] {
                let v = module[row];
                if v != INVALID_PORT {
                    let p = PortIndex(v);
                    if !adaptive.contains(&p) {
                        adaptive.push(p);
                    }
                }
            }
        }
        TableLookup { escape, adaptive }
    }

    /// View the table as the plain linear array the subnet manager sees
    /// (`None` = unprogrammed). The interleaving is invisible here — this
    /// is the compatibility guarantee of §4.1.
    pub fn linear_view(&self) -> Vec<Option<PortIndex>> {
        (0..self.len)
            .map(|a| {
                let (m, row) = self.split(a);
                let v = self.modules[m][row];
                (v != INVALID_PORT).then_some(PortIndex(v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table4() -> InterleavedForwardingTable {
        InterleavedForwardingTable::new(64, 4).unwrap()
    }

    #[test]
    fn fanout_must_be_power_of_two() {
        assert!(InterleavedForwardingTable::new(16, 1).is_ok());
        assert!(InterleavedForwardingTable::new(16, 2).is_ok());
        assert!(InterleavedForwardingTable::new(16, 3).is_err());
        assert!(InterleavedForwardingTable::new(16, 0).is_err());
        assert!(InterleavedForwardingTable::new(16, 256).is_err());
    }

    #[test]
    fn linear_set_get_roundtrip() {
        let mut t = table4();
        t.set(Lid(9), PortIndex(3)).unwrap();
        assert_eq!(t.get(Lid(9)), Some(PortIndex(3)));
        assert_eq!(t.get(Lid(8)), None);
        assert!(t.set(Lid(64), PortIndex(0)).is_err());
        assert_eq!(t.get(Lid(64)), None);
    }

    #[test]
    fn group_lookup_returns_all_options_simultaneously() {
        let mut t = table4();
        // Destination owns addresses 8..12: escape at 8, adaptive at 9-11.
        t.set(Lid(8), PortIndex(0)).unwrap();
        t.set(Lid(9), PortIndex(1)).unwrap();
        t.set(Lid(10), PortIndex(2)).unwrap();
        t.set(Lid(11), PortIndex(5)).unwrap();
        // Adaptive request (LSB set).
        let r = t.lookup(Lid(9));
        assert_eq!(r.escape, Some(PortIndex(0)));
        assert_eq!(r.adaptive, vec![PortIndex(1), PortIndex(2), PortIndex(5)]);
        // Any adaptive-flagged address of the group sees the same options.
        assert_eq!(t.lookup(Lid(11)), r);
    }

    #[test]
    fn deterministic_request_returns_only_the_escape_entry() {
        let mut t = table4();
        t.set(Lid(8), PortIndex(0)).unwrap();
        t.set(Lid(9), PortIndex(1)).unwrap();
        let r = t.lookup(Lid(8)); // LSB clear
        assert_eq!(r.escape, Some(PortIndex(0)));
        assert!(r.adaptive.is_empty());
    }

    #[test]
    fn duplicate_adaptive_entries_are_deduped() {
        let mut t = table4();
        t.set(Lid(8), PortIndex(0)).unwrap();
        // Fewer real options than modules: the subnet manager fills the
        // rest with copies (§4.1); the switch must not offer duplicates.
        t.set(Lid(9), PortIndex(1)).unwrap();
        t.set(Lid(10), PortIndex(1)).unwrap();
        t.set(Lid(11), PortIndex(1)).unwrap();
        assert_eq!(t.lookup(Lid(9)).adaptive, vec![PortIndex(1)]);
    }

    #[test]
    fn unprogrammed_entries_are_invisible() {
        let t = table4();
        let r = t.lookup(Lid(9));
        assert_eq!(r.escape, None);
        assert!(r.adaptive.is_empty());
    }

    #[test]
    fn out_of_range_lookup_is_empty() {
        let t = table4();
        let r = t.lookup(Lid(1000));
        assert_eq!(r.escape, None);
        assert!(r.adaptive.is_empty());
    }

    #[test]
    fn fanout_one_behaves_like_a_plain_linear_table() {
        let mut t = InterleavedForwardingTable::new(8, 1).unwrap();
        t.set(Lid(3), PortIndex(2)).unwrap();
        let r = t.lookup(Lid(3)); // LSB set but there are no extra modules
        assert_eq!(r.escape, Some(PortIndex(2)));
        assert!(r.adaptive.is_empty());
    }

    proptest! {
        /// The interleaved organization is externally equivalent to a
        /// plain linear table: writing through the linear interface and
        /// reading back (entry-wise or via linear_view) agrees with a
        /// shadow Vec, for any fanout.
        #[test]
        fn prop_interleaved_equals_linear(
            fanout_log in 0u32..4,
            writes in proptest::collection::vec((0usize..128, 0u8..16), 0..200)
        ) {
            let fanout = 1u16 << fanout_log;
            let mut t = InterleavedForwardingTable::new(128, fanout).unwrap();
            let mut shadow: Vec<Option<PortIndex>> = vec![None; 128];
            for (addr, port) in writes {
                t.set(Lid(addr as u16), PortIndex(port)).unwrap();
                shadow[addr] = Some(PortIndex(port));
            }
            for (a, &expect) in shadow.iter().enumerate() {
                prop_assert_eq!(t.get(Lid(a as u16)), expect);
            }
            prop_assert_eq!(t.linear_view(), shadow);
        }

        /// Full `set`/`get` round-trip across every legal fanout and
        /// arbitrary table lengths — including lengths that leave the
        /// last interleave row partially filled and straddle the SM's
        /// 64-entry LFT upload blocks. Out-of-range writes must error
        /// without perturbing any in-range entry; out-of-range reads
        /// are `None`.
        #[test]
        fn prop_set_get_roundtrip_across_fanouts_blocks_and_range(
            fanout_log in 0u32..8,
            len in 1usize..300,
            writes in proptest::collection::vec((0usize..512, 0u8..32), 0..300)
        ) {
            let fanout = 1u16 << fanout_log; // 1..=128, every legal value
            let mut t = InterleavedForwardingTable::new(len, fanout).unwrap();
            let mut shadow: Vec<Option<PortIndex>> = vec![None; len];
            for (addr, port) in writes {
                if addr < len {
                    t.set(Lid(addr as u16), PortIndex(port)).unwrap();
                    shadow[addr] = Some(PortIndex(port));
                } else {
                    prop_assert!(t.set(Lid(addr as u16), PortIndex(port)).is_err());
                }
            }
            // Probe past the end too (to 512 > any len): every in-range
            // entry reads back exactly, every out-of-range read is None
            // — i.e. rejected writes really left no trace.
            for a in 0..512usize {
                let expect = shadow.get(a).copied().flatten();
                prop_assert_eq!(t.get(Lid(a as u16)), expect);
            }
            prop_assert_eq!(t.len(), len);
            prop_assert_eq!(t.fanout(), fanout);
        }

        /// Group lookup agrees with the linear view: escape is the entry
        /// at the group base; adaptive are the deduped non-base entries.
        #[test]
        fn prop_lookup_matches_linear_semantics(
            writes in proptest::collection::vec((0usize..64, 0u8..16), 0..100),
            probe in 0usize..64
        ) {
            let fanout = 4u16;
            let mut t = InterleavedForwardingTable::new(64, fanout).unwrap();
            for (addr, port) in writes {
                t.set(Lid(addr as u16), PortIndex(port)).unwrap();
            }
            let view = t.linear_view();
            let base = probe / 4 * 4;
            let r = t.lookup(Lid(probe as u16));
            prop_assert_eq!(r.escape, view[base]);
            if probe % 2 == 1 {
                let mut expect = Vec::new();
                for v in view[base + 1..base + 4].iter().flatten() {
                    if !expect.contains(v) {
                        expect.push(*v);
                    }
                }
                prop_assert_eq!(r.adaptive, expect);
            } else {
                prop_assert!(r.adaptive.is_empty());
            }
        }
    }
}
