//! Direct (single-hop) escape routing for fully connected switch
//! graphs — the VC-free full-mesh discipline of the recent HOTI-line
//! work on flattened all-to-all fabrics.
//!
//! On a complete switch graph every destination is one hop away, so the
//! escape layer can simply take the direct link. Each escape chain is
//! then at most `switch link → host link`, and a channel-dependency
//! edge always points from an inter-switch link to a *terminal* host
//! link — the dependency graph is trivially acyclic with **no virtual
//! channels at all**. Up\*/down\* on the same graph also degenerates to
//! single-hop routes (a lone link move is a legal up or down move), so
//! the two engines agree on every path; what the direct engine removes
//! is the spanning tree, root election and level bookkeeping
//! altogether. The engine-zoo run doubles as a calibration point: the
//! two must measure identically on a full mesh.
//!
//! The adaptive layer is unchanged FA: minimal options on a complete
//! graph are just the direct link, so FA-over-full-mesh degenerates to
//! direct routing with the escape/adaptive split only affecting VL
//! queue accounting — the interesting adaptivity on these fabrics would
//! come from non-minimal (UGAL-style) selection, which is out of scope
//! for the escape contract.

use crate::engine::EscapeEngine;
use iba_core::{IbaError, PortIndex, SwitchId};
use iba_topology::Topology;

/// Direct one-hop escape routing on a complete switch graph.
#[derive(Clone, Debug)]
pub struct FullMeshRouting {
    /// `port[s][t]`: the direct link port of `s` towards `t` (`None` on
    /// the diagonal).
    port: Vec<Vec<Option<PortIndex>>>,
}

impl FullMeshRouting {
    /// Compile the engine; errors unless the switch graph is complete.
    pub fn build(topo: &Topology) -> Result<FullMeshRouting, IbaError> {
        let n = topo.num_switches();
        if n < 2 {
            return Err(IbaError::InvalidTopology(
                "full-mesh escape needs at least 2 switches".into(),
            ));
        }
        let mut port = vec![vec![None; n]; n];
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    continue;
                }
                let p = topo.port_towards(s, t).ok_or_else(|| {
                    IbaError::InvalidTopology(format!(
                        "full-mesh escape requires a complete switch graph (no {s}↔{t} link)"
                    ))
                })?;
                port[s.index()][t.index()] = Some(p);
            }
        }
        Ok(FullMeshRouting { port })
    }
}

impl EscapeEngine for FullMeshRouting {
    const NAME: &'static str = "fullmesh";

    fn build(topo: &Topology) -> Result<Self, IbaError> {
        FullMeshRouting::build(topo)
    }

    fn build_with_root(topo: &Topology, root: SwitchId) -> Result<Self, IbaError> {
        // Direct routing has no root; validate the id anyway.
        if root.index() >= topo.num_switches() {
            return Err(IbaError::InvalidConfig(format!(
                "root {root} out of range for {} switches",
                topo.num_switches()
            )));
        }
        FullMeshRouting::build(topo)
    }

    fn root(&self) -> SwitchId {
        SwitchId(0)
    }

    fn next_hop(&self, s: SwitchId, t: SwitchId) -> Option<PortIndex> {
        self.port[s.index()][t.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::certify_engine;
    use crate::updown::UpDownRouting;
    use iba_topology::{regular, IrregularConfig};

    #[test]
    fn every_route_is_a_single_hop() {
        let topo = regular::complete(8, 2).unwrap();
        let rt = FullMeshRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    assert!(rt.next_hop(s, t).is_none());
                } else {
                    assert_eq!(rt.path(&topo, s, t).unwrap().len(), 2);
                }
            }
        }
        certify_engine(&topo, &rt).unwrap();
    }

    #[test]
    fn agrees_with_updown_paths_on_a_complete_graph() {
        // Calibration contract of the engine zoo: on a full mesh both
        // engines take the direct link for every pair (a lone up or
        // down move is a legal up*/down* path), so any measured
        // difference between them would be a harness bug.
        let topo = regular::complete(6, 1).unwrap();
        let direct = FullMeshRouting::build(&topo).unwrap();
        let updown = UpDownRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    continue;
                }
                assert_eq!(direct.path(&topo, s, t).unwrap().len() - 1, 1);
                assert_eq!(
                    direct.next_hop(s, t),
                    updown.next_hop(s, t),
                    "{s}→{t}: engines disagree on a complete graph"
                );
            }
        }
    }

    #[test]
    fn incomplete_graphs_are_rejected() {
        for topo in [
            regular::ring(5, 1).unwrap(),
            regular::torus2d(3, 3, 1).unwrap(),
            IrregularConfig::paper(8, 3).generate().unwrap(),
        ] {
            assert!(FullMeshRouting::build(&topo).is_err());
        }
    }

    #[test]
    fn root_is_ignored_but_validated() {
        let topo = regular::complete(4, 1).unwrap();
        assert!(<FullMeshRouting as EscapeEngine>::build_with_root(&topo, SwitchId(3)).is_ok());
        assert!(<FullMeshRouting as EscapeEngine>::build_with_root(&topo, SwitchId(4)).is_err());
    }
}
