//! Up\*/down\* routing.
//!
//! Up\*/down\* (Autonet; the paper's reference \[20\]) is the classic
//! deadlock-free routing algorithm for irregular networks and the escape
//! layer of the paper's FA algorithm:
//!
//! 1. Build a BFS spanning tree from a root switch. Orient every link:
//!    the "up" end is the end closer to the root (tie broken by lower
//!    switch id). Orientation is acyclic because an up move strictly
//!    decreases the key `(BFS level, switch id)`.
//! 2. A path is *legal* iff it consists of zero or more up moves followed
//!    by zero or more down moves — equivalently, it never takes a
//!    down→up turn. Legal paths cannot close a cycle of buffer
//!    dependencies, hence deadlock freedom.
//!
//! Switches route by destination only (IBA forwarding tables know
//! nothing about a packet's history), so the per-hop choice must make
//! globally legal paths. We use the standard consistent rule:
//!
//! * if the destination is reachable through down moves alone, take the
//!   first hop of a shortest all-down path ("go down when you can");
//! * otherwise take the up move that minimizes the remaining legal
//!   distance.
//!
//! Down-only reachability is *absorbing* along such routes (the next
//! switch of a down move is itself down-only reachable), so a route never
//! attempts an up move after its first down move — legality holds across
//! hops even though each switch decides independently. This matches the
//! well-known behaviour the paper leans on in §5.2.1: up\*/down\* paths
//! may be non-minimal and concentrate traffic near the root.

use crate::engine::{DeltaOutcome, EscapeEngine};
use iba_core::{HostId, IbaError, PortIndex, SwitchId};
use iba_topology::Topology;
use std::collections::VecDeque;

/// Unreachable marker in distance matrices.
pub(crate) const INF: u32 = u32::MAX;

/// The up\*/down\* routing function for one topology.
///
/// Fields are crate-visible so the delta rebuild (`crate::delta`) can
/// patch individual destination columns in place after a link failure.
#[derive(Clone, Debug)]
pub struct UpDownRouting {
    root: SwitchId,
    /// BFS level of every switch (root = 0).
    pub(crate) level: Vec<u32>,
    /// `down_dist[t][s]`: length of the shortest all-down path s→t, or
    /// `INF`. Indexed destination-first for cache-friendly per-dest use.
    pub(crate) down_dist: Vec<Vec<u32>>,
    /// `legal_dist[t][s]`: length of the shortest legal (up\* then down\*)
    /// path s→t.
    pub(crate) legal_dist: Vec<Vec<u32>>,
    /// `next_hop[t][s]`: the output port switch `s` uses towards switch
    /// `t` (undefined for `s == t`, stored as `None`).
    pub(crate) next_hop: Vec<Vec<Option<PortIndex>>>,
}

impl UpDownRouting {
    /// Build up\*/down\* for `topo`, selecting the root automatically.
    ///
    /// **Root selection is pinned** (cross-engine comparisons and the
    /// delta rebuild's root-pinned equality frame both depend on it
    /// being deterministic): the root is the switch of **minimum
    /// eccentricity**, and among equally central switches the **lowest
    /// switch id wins**. On vertex-transitive [`TopologySpec`] shapes
    /// (rings, tori, hypercubes, full meshes) every switch is equally
    /// central, so the root is always `SwitchId(0)`. The rule is a pure
    /// function of the topology — no RNG, no iteration-order
    /// sensitivity — and is locked by `roots_are_deterministic_across_
    /// topology_specs` in `crates/routing/tests/engine_zoo_contract.rs`.
    ///
    /// [`TopologySpec`]: iba_topology::TopologySpec
    pub fn build(topo: &Topology) -> Result<UpDownRouting, IbaError> {
        let root = Self::select_root(topo)?;
        Self::build_with_root(topo, root)
    }

    /// Build with an explicit root (exposed for tests and ablations).
    pub fn build_with_root(topo: &Topology, root: SwitchId) -> Result<UpDownRouting, IbaError> {
        let n = topo.num_switches();
        if root.index() >= n {
            return Err(IbaError::RoutingFailed(format!("root {root} out of range")));
        }
        let level = topo.distances_from(root);
        if level.contains(&INF) {
            return Err(IbaError::RoutingFailed("topology disconnected".into()));
        }

        let mut rt = UpDownRouting {
            root,
            level,
            down_dist: Vec::with_capacity(n),
            legal_dist: Vec::with_capacity(n),
            next_hop: Vec::with_capacity(n),
        };
        for t in 0..n {
            let (down, legal) = rt.distances_to(topo, SwitchId(t as u16));
            rt.down_dist.push(down);
            rt.legal_dist.push(legal);
        }
        for t in 0..n {
            let mut hops = vec![None; n];
            for (s, hop) in hops.iter_mut().enumerate() {
                if s != t {
                    *hop =
                        Some(rt.compute_next_hop(topo, SwitchId(s as u16), SwitchId(t as u16))?);
                }
            }
            rt.next_hop.push(hops);
        }
        Ok(rt)
    }

    /// Root with minimum eccentricity (lowest id wins ties): switches
    /// are scanned in ascending id order and only a *strictly* smaller
    /// eccentricity displaces the incumbent, so the tie-break needs no
    /// secondary comparison.
    fn select_root(topo: &Topology) -> Result<SwitchId, IbaError> {
        let dist = topo.switch_distances();
        let mut best: Option<(u32, SwitchId)> = None;
        for s in topo.switch_ids() {
            let ecc = dist[s.index()]
                .iter()
                .copied()
                .max()
                .ok_or_else(|| IbaError::RoutingFailed("empty topology".into()))?;
            if ecc == INF {
                return Err(IbaError::RoutingFailed("topology disconnected".into()));
            }
            if best.is_none_or(|(be, _)| ecc < be) {
                best = Some((ecc, s));
            }
        }
        Ok(best.expect("at least one switch").1)
    }

    /// The selected root switch.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// BFS level of a switch (root = 0).
    pub fn level_of(&self, s: SwitchId) -> u32 {
        self.level[s.index()]
    }

    /// Whether traversing the link `from → to` is an **up** move
    /// (towards the root). The up end of a link is the end with the
    /// lexicographically smaller `(level, id)`.
    pub fn is_up_move(&self, from: SwitchId, to: SwitchId) -> bool {
        (self.level[to.index()], to.0) < (self.level[from.index()], from.0)
    }

    /// Whether traversing the link `from → to` is a **down** move.
    pub fn is_down_move(&self, from: SwitchId, to: SwitchId) -> bool {
        !self.is_up_move(from, to)
    }

    /// Backward BFS from `t` over the 2-state layered graph, producing
    /// for every source `s` the shortest all-down distance and the
    /// shortest legal distance of paths `s → t`.
    ///
    /// Forward semantics of the layers: in state `CanUp` a packet may
    /// still take up moves (or switch to going down); in state `DownOnly`
    /// it may only take down moves. A forward edge `s →(up) n` connects
    /// `(s, CanUp) → (n, CanUp)`; a forward edge `s →(down) m` connects
    /// both `(s, CanUp)` and `(s, DownOnly)` to `(m, DownOnly)`. We BFS
    /// the reversed edges from `{(t, CanUp), (t, DownOnly)}`.
    pub(crate) fn distances_to(&self, topo: &Topology, t: SwitchId) -> (Vec<u32>, Vec<u32>) {
        let n = topo.num_switches();
        // legal[s] = distance of state (s, CanUp); down[s] = distance of
        // state (s, DownOnly). Recurrences (forward semantics):
        //   down[s]  = 1 + min over down-neighbors m of down[m]
        //   legal[s] = min(1 + min over up-neighbors n of legal[n], down[s])
        // solved by a multi-layer BFS over the reversed edges; every edge
        // costs 1 so FIFO order yields shortest distances.
        let mut legal = vec![INF; n];
        let mut down = vec![INF; n];
        legal[t.index()] = 0;
        down[t.index()] = 0;
        // Queue of (switch, is_down_only_state).
        let mut queue = VecDeque::from([(t, false), (t, true)]);
        while let Some((cur, down_only)) = queue.pop_front() {
            if down_only {
                let d = down[cur.index()];
                for (_, peer, _) in topo.switch_neighbors(cur) {
                    // Forward edges peer →(down) cur, from either layer:
                    // (peer, DownOnly) → (cur, DownOnly) and
                    // (peer, CanUp)   → (cur, DownOnly).
                    if self.is_down_move(peer, cur) {
                        if down[peer.index()] == INF {
                            down[peer.index()] = d + 1;
                            queue.push_back((peer, true));
                        }
                        if legal[peer.index()] == INF {
                            legal[peer.index()] = d + 1;
                            queue.push_back((peer, false));
                        }
                    }
                }
            } else {
                let d = legal[cur.index()];
                for (_, peer, _) in topo.switch_neighbors(cur) {
                    // Forward edge peer →(up) cur: (peer, CanUp) → (cur, CanUp).
                    if self.is_up_move(peer, cur) && legal[peer.index()] == INF {
                        legal[peer.index()] = d + 1;
                        queue.push_back((peer, false));
                    }
                }
            }
        }
        (down, legal)
    }

    /// Deterministic next hop of `s` towards `t` (`s != t`).
    pub(crate) fn compute_next_hop(
        &self,
        topo: &Topology,
        s: SwitchId,
        t: SwitchId,
    ) -> Result<PortIndex, IbaError> {
        let down = &self.down_dist[t.index()];
        let legal = &self.legal_dist[t.index()];
        let mut best: Option<(u32, u16, PortIndex)> = None;
        if down[s.index()] != INF {
            // Go down: pick the down neighbor on a shortest all-down path.
            for (port, peer, _) in topo.switch_neighbors(s) {
                if self.is_down_move(s, peer) && down[peer.index()] != INF {
                    let cand = (down[peer.index()], peer.0, port);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
        } else {
            // Go up: pick the up neighbor minimizing the remaining legal
            // distance.
            for (port, peer, _) in topo.switch_neighbors(s) {
                if self.is_up_move(s, peer) && legal[peer.index()] != INF {
                    let cand = (legal[peer.index()], peer.0, port);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
        }
        best.map(|(_, _, port)| port)
            .ok_or_else(|| IbaError::RoutingFailed(format!("no legal next hop from {s} to {t}")))
    }

    /// The output port `s` uses towards switch `t`; `None` when `s == t`.
    #[inline]
    pub fn next_hop(&self, s: SwitchId, t: SwitchId) -> Option<PortIndex> {
        self.next_hop[t.index()][s.index()]
    }

    /// *All* consistent next-hop choices of `s` towards `t`, best first:
    /// every down neighbor that still reaches `t` downward when one
    /// exists, otherwise every up neighbor with a finite legal distance.
    /// Any per-switch mixture of these choices yields a legal (turn-free)
    /// and terminating path — down moves strictly increase the tree key
    /// and down-only reachability is absorbing — so a source-selected
    /// multipath scheme can spread packets over them without risking
    /// deadlock. Used by `FaRouting::build_source_multipath`.
    pub fn next_hop_variants(&self, topo: &Topology, s: SwitchId, t: SwitchId) -> Vec<PortIndex> {
        if s == t {
            return Vec::new();
        }
        let down = &self.down_dist[t.index()];
        let legal = &self.legal_dist[t.index()];
        let mut cands: Vec<(u32, u16, PortIndex)> = Vec::new();
        if down[s.index()] != INF {
            for (port, peer, _) in topo.switch_neighbors(s) {
                if self.is_down_move(s, peer) && down[peer.index()] != INF {
                    cands.push((down[peer.index()], peer.0, port));
                }
            }
        } else {
            for (port, peer, _) in topo.switch_neighbors(s) {
                if self.is_up_move(s, peer) && legal[peer.index()] != INF {
                    cands.push((legal[peer.index()], peer.0, port));
                }
            }
        }
        cands.sort();
        cands.into_iter().map(|(_, _, p)| p).collect()
    }

    /// Shortest legal distance `s → t` in switch hops.
    #[inline]
    pub fn legal_distance(&self, s: SwitchId, t: SwitchId) -> u32 {
        self.legal_dist[t.index()][s.index()]
    }

    /// The full switch path `s → t` following the deterministic rule.
    /// Errors if the walk does not terminate within `2 × n` hops (which
    /// would indicate a broken table).
    pub fn path(
        &self,
        topo: &Topology,
        s: SwitchId,
        t: SwitchId,
    ) -> Result<Vec<SwitchId>, IbaError> {
        let mut path = vec![s];
        let mut cur = s;
        let bound = 2 * topo.num_switches() + 2;
        while cur != t {
            if path.len() > bound {
                return Err(IbaError::RoutingFailed(format!(
                    "path {s}→{t} did not terminate"
                )));
            }
            let port = self
                .next_hop(cur, t)
                .ok_or_else(|| IbaError::RoutingFailed("missing next hop".into()))?;
            let ep = topo
                .endpoint(cur, port)
                .ok_or_else(|| IbaError::RoutingFailed("next hop port unwired".into()))?;
            cur = ep
                .node
                .as_switch()
                .ok_or_else(|| IbaError::RoutingFailed("next hop is a host".into()))?;
            path.push(cur);
        }
        Ok(path)
    }

    /// Escape path length between the switches of two hosts (used by
    /// path-length statistics).
    pub fn host_path_len(
        &self,
        topo: &Topology,
        src: HostId,
        dst: HostId,
    ) -> Result<usize, IbaError> {
        let s = topo.host_switch(src);
        let t = topo.host_switch(dst);
        Ok(self.path(topo, s, t)?.len() - 1)
    }

    /// Whether the failed link could have influenced destination column
    /// `t` in any *escape* layer (the adaptive/minimal layer is the FA
    /// delta rebuild's own concern). Over-approximation is safe (the
    /// column is recomputed); under-approximation would be a correctness
    /// bug — the conditions below are exactly the tightness tests of the
    /// down and legal distance relaxations plus the chosen-next-hop
    /// check.
    #[allow(clippy::too_many_arguments)]
    fn column_affected(
        &self,
        t: usize,
        a: SwitchId,
        pa: PortIndex,
        b: SwitchId,
        pb: PortIndex,
        up_end: SwitchId,
        down_end: SwitchId,
    ) -> bool {
        let down = &self.down_dist[t];
        let legal = &self.legal_dist[t];
        let (u, d) = (up_end.index(), down_end.index());
        // Down layer: the edge descends up_end → down_end; tight when it
        // lies on a shortest all-down path to t.
        if down[d] != INF && down[u] != INF && down[u] == down[d] + 1 {
            return true;
        }
        // Legal layer, up instance (down_end → up_end is an up move).
        if legal[u] != INF && legal[d] != INF && legal[d] == legal[u] + 1 {
            return true;
        }
        // Legal layer, down instance (CanUp at up_end stepping down).
        if down[d] != INF && legal[u] != INF && legal[u] == down[d] + 1 {
            return true;
        }
        // The deterministic next hop of either endpoint used the link.
        let hops = &self.next_hop[t];
        hops[a.index()] == Some(pa) || hops[b.index()] == Some(pb)
    }
}

impl EscapeEngine for UpDownRouting {
    const NAME: &'static str = "updown";

    fn build(topo: &Topology) -> Result<Self, IbaError> {
        UpDownRouting::build(topo)
    }

    fn build_with_root(topo: &Topology, root: SwitchId) -> Result<Self, IbaError> {
        UpDownRouting::build_with_root(topo, root)
    }

    fn root(&self) -> SwitchId {
        self.root
    }

    fn next_hop(&self, s: SwitchId, t: SwitchId) -> Option<PortIndex> {
        UpDownRouting::next_hop(self, s, t)
    }

    fn next_hop_variants(&self, topo: &Topology, s: SwitchId, t: SwitchId) -> Vec<PortIndex> {
        UpDownRouting::next_hop_variants(self, topo, s, t)
    }

    fn path(&self, topo: &Topology, s: SwitchId, t: SwitchId) -> Result<Vec<SwitchId>, IbaError> {
        UpDownRouting::path(self, topo, s, t)
    }

    /// The up\*/down\* incremental rebuild: destination columns are
    /// separable, and a dead link can only change the columns it was
    /// *tight* for (see [`Self::column_affected`]). Falls back when the
    /// orientation frame itself is suspect: the failed link touches the
    /// spanning-tree root, or the BFS levels from the pinned root shift
    /// (the up/down orientation of *surviving* links would change,
    /// invalidating every column).
    fn rebuild_after_link_failure(
        &self,
        degraded: &Topology,
        a: SwitchId,
        pa: PortIndex,
        b: SwitchId,
        pb: PortIndex,
    ) -> Result<DeltaOutcome<Self>, IbaError> {
        let root = self.root;
        if a == root || b == root {
            return Ok(DeltaOutcome::FullRebuild {
                reason: "failed link touches the spanning-tree root".into(),
            });
        }
        let new_level = degraded.distances_from(root);
        if new_level.contains(&INF) {
            return Err(IbaError::RoutingFailed(
                "link failure disconnected the fabric".into(),
            ));
        }
        if new_level != self.level {
            return Ok(DeltaOutcome::FullRebuild {
                reason: "BFS levels from the pinned root shifted".into(),
            });
        }
        // Levels (hence the up/down orientation of every surviving link)
        // are unchanged: the failed link's influence is confined to
        // destinations it was tight for. Orient it once.
        let (up_end, down_end) = if self.is_down_move(a, b) {
            (a, b)
        } else {
            (b, a)
        };
        let n = self.level.len();
        let mut affected: Vec<usize> = Vec::new();
        for t in 0..n {
            if self.column_affected(t, a, pa, b, pb, up_end, down_end) {
                affected.push(t);
            }
        }
        let mut next = self.clone();
        // Distance columns first (the next-hop argmin reads them), then
        // the next-hop columns.
        for &t in &affected {
            let (down, legal) = next.distances_to(degraded, SwitchId(t as u16));
            next.down_dist[t] = down;
            next.legal_dist[t] = legal;
        }
        for &t in &affected {
            for s in 0..n {
                next.next_hop[t][s] = if s == t {
                    None
                } else {
                    Some(next.compute_next_hop(degraded, SwitchId(s as u16), SwitchId(t as u16))?)
                };
            }
        }
        Ok(DeltaOutcome::Patched {
            engine: next,
            affected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topology::{regular, IrregularConfig};
    use proptest::prelude::*;

    /// Assert that the deterministic route s→t is a legal up*/down* path.
    fn assert_legal_path(rt: &UpDownRouting, topo: &Topology, s: SwitchId, t: SwitchId) {
        let path = rt.path(topo, s, t).unwrap();
        let mut went_down = false;
        for w in path.windows(2) {
            let up = rt.is_up_move(w[0], w[1]);
            if up {
                assert!(
                    !went_down,
                    "down→up turn on route {s}→{t}: {path:?} (root {})",
                    rt.root()
                );
            } else {
                went_down = true;
            }
        }
    }

    #[test]
    fn root_has_level_zero_and_min_eccentricity() {
        let topo = regular::chain(5, 1).unwrap();
        let rt = UpDownRouting::build(&topo).unwrap();
        // Center of a 5-chain.
        assert_eq!(rt.root(), SwitchId(2));
        assert_eq!(rt.level_of(SwitchId(2)), 0);
        assert_eq!(rt.level_of(SwitchId(0)), 2);
    }

    #[test]
    fn up_moves_decrease_level_key() {
        let topo = IrregularConfig::paper(16, 5).generate().unwrap();
        let rt = UpDownRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for (_, peer, _) in topo.switch_neighbors(s) {
                // Exactly one direction of every link is up.
                assert_ne!(rt.is_up_move(s, peer), rt.is_up_move(peer, s));
                if rt.is_up_move(s, peer) {
                    assert!(
                        (rt.level_of(peer), peer.0) < (rt.level_of(s), s.0),
                        "up move must decrease (level, id)"
                    );
                }
            }
        }
    }

    #[test]
    fn all_pairs_reachable_on_ring() {
        let topo = regular::ring(8, 1).unwrap();
        let rt = UpDownRouting::build(&topo).unwrap();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s != t {
                    assert!(rt.next_hop(s, t).is_some());
                    assert_legal_path(&rt, &topo, s, t);
                }
            }
        }
    }

    #[test]
    fn routes_terminate_and_are_legal_on_irregular_networks() {
        for seed in 0..5 {
            let topo = IrregularConfig::paper(16, seed).generate().unwrap();
            let rt = UpDownRouting::build(&topo).unwrap();
            for s in topo.switch_ids() {
                for t in topo.switch_ids() {
                    if s != t {
                        assert_legal_path(&rt, &topo, s, t);
                    }
                }
            }
        }
    }

    #[test]
    fn legal_distance_bounds_actual_path() {
        let topo = IrregularConfig::paper(32, 9).generate().unwrap();
        let rt = UpDownRouting::build(&topo).unwrap();
        let dist = topo.switch_distances();
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    continue;
                }
                let path = rt.path(&topo, s, t).unwrap();
                let hops = (path.len() - 1) as u32;
                // Never shorter than the unconstrained shortest path, and
                // at least as long as the legal lower bound.
                assert!(hops >= dist[s.index()][t.index()]);
                assert!(hops >= rt.legal_distance(s, t));
            }
        }
    }

    #[test]
    fn updown_paths_can_be_nonminimal() {
        // The paper relies on up*/down* using non-minimal paths in large
        // irregular networks. Check the phenomenon exists in an ensemble.
        let mut nonminimal = 0;
        for seed in 0..5 {
            let topo = IrregularConfig::paper(32, seed).generate().unwrap();
            let rt = UpDownRouting::build(&topo).unwrap();
            let dist = topo.switch_distances();
            for s in topo.switch_ids() {
                for t in topo.switch_ids() {
                    if s != t {
                        let hops = (rt.path(&topo, s, t).unwrap().len() - 1) as u32;
                        if hops > dist[s.index()][t.index()] {
                            nonminimal += 1;
                        }
                    }
                }
            }
        }
        assert!(nonminimal > 0, "expected some non-minimal up*/down* routes");
    }

    #[test]
    fn explicit_root_is_respected() {
        let topo = regular::ring(6, 1).unwrap();
        let rt = UpDownRouting::build_with_root(&topo, SwitchId(3)).unwrap();
        assert_eq!(rt.root(), SwitchId(3));
        assert_eq!(rt.level_of(SwitchId(3)), 0);
        assert!(UpDownRouting::build_with_root(&topo, SwitchId(99)).is_err());
    }

    #[test]
    fn down_distance_is_inf_when_no_down_path() {
        // On a chain rooted at the center, leaf→leaf has no all-down path.
        let topo = regular::chain(5, 1).unwrap();
        let rt = UpDownRouting::build(&topo).unwrap();
        let s = SwitchId(0);
        let t = SwitchId(4);
        // The route must go up towards the root first.
        let path = rt.path(&topo, s, t).unwrap();
        assert_eq!(
            path,
            vec![
                SwitchId(0),
                SwitchId(1),
                SwitchId(2),
                SwitchId(3),
                SwitchId(4)
            ]
        );
        assert_legal_path(&rt, &topo, s, t);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Property: on any random irregular topology, every deterministic
        /// route terminates and never takes a down→up turn.
        #[test]
        fn prop_routes_are_legal(seed in any::<u64>(), n_idx in 0usize..3) {
            let n = [8usize, 16, 32][n_idx];
            let topo = IrregularConfig::paper(n, seed).generate().unwrap();
            let rt = UpDownRouting::build(&topo).unwrap();
            for s in topo.switch_ids() {
                for t in topo.switch_ids() {
                    if s != t {
                        assert_legal_path(&rt, &topo, s, t);
                    }
                }
            }
        }
    }
}
