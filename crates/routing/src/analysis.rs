//! Static routing analysis — the machinery behind Table 2 and the
//! path-length arguments of §5.2.1.
//!
//! Table 2 of the paper reports, for each topology class, the average
//! percentage of `(switch, destination port)` pairs that have 1, 2, 3 or
//! 4 routing options, where the count is capped at MR ("Maximum number of
//! Routing options at each switch for each destination"). The options
//! counted are the *distinct output ports a forwarding-table group can
//! store*: the minimal (adaptive) next hops plus the up\*/down\* escape
//! hop when it is not itself minimal. Counting the escape entry is what
//! reproduces the paper's numbers — e.g. its 64-switch/4-link/MR=4 row
//! (41.32/41.20/14.09/3.39 %) against our ensemble's
//! 40.3/42.0/13.8/3.9 % — and explains why the multi-option share *grows*
//! with network size: up\*/down\* becomes increasingly non-minimal, so
//! the escape hop more often adds a distinct option.
//!
//! Local destinations (the 4 hosts attached to the switch itself) always
//! have exactly one option (the host port) and are excluded by default,
//! since no routing decision exists for them; `include_local` restores
//! them.

use crate::engine::EscapeEngine;
use crate::minimal::MinimalRouting;
use iba_core::{HostId, IbaError, NodeRef, PortIndex, SwitchId};
use iba_topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Verify that a per-destination next-hop function — e.g. the escape
/// entries programmed into switch LFTs, read back over SMPs — gives
/// every switch a terminating route to every host *and* that the
/// induced channel-dependency graph is acyclic: the deadlock-freedom
/// condition for the escape layer (§3). The SM recovery path uses this
/// to certify re-swept tables before trusting them.
///
/// `next_hop(s, h)` must return the output port switch `s` uses towards
/// host `h`'s deterministic (escape) address, or `None` when
/// unprogrammed. The check walks every `(switch, host)` chain —
/// rejecting missing entries, unwired ports, mis-delivery and
/// forwarding loops — while collecting, for each directed link, which
/// links chains continue onto; a cycle in that dependency graph is a
/// potential credit-wait cycle.
pub fn check_escape_routes(
    topo: &Topology,
    next_hop: impl Fn(SwitchId, HostId) -> Option<PortIndex>,
) -> Result<(), IbaError> {
    let ports = topo.ports_per_switch() as usize;
    let nlinks = topo.num_switches() * ports;
    // Channel-dependency adjacency over directed links (switch, port);
    // BTreeSet keeps insertion idempotent and iteration deterministic.
    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nlinks];
    for h in topo.host_ids() {
        for s in topo.switch_ids() {
            let mut cur = s;
            let mut prev: Option<usize> = None;
            let mut hops = 0usize;
            loop {
                let p = next_hop(cur, h).ok_or_else(|| {
                    IbaError::RoutingFailed(format!("no escape entry at {cur} towards {h}"))
                })?;
                let link = cur.index() * ports + p.index();
                if let Some(prev) = prev {
                    deps[prev].insert(link);
                }
                let ep = topo.endpoint(cur, p).ok_or_else(|| {
                    IbaError::RoutingFailed(format!(
                        "escape entry at {cur} towards {h} uses unwired {p}"
                    ))
                })?;
                match ep.node {
                    NodeRef::Host(dest) if dest == h => break,
                    NodeRef::Host(other) => {
                        return Err(IbaError::RoutingFailed(format!(
                            "escape route for {h} delivers to {other}"
                        )))
                    }
                    NodeRef::Switch(n) => {
                        hops += 1;
                        if hops > topo.num_switches() {
                            return Err(IbaError::RoutingFailed(format!(
                                "escape route {s}→{h} does not terminate"
                            )));
                        }
                        prev = Some(link);
                        cur = n;
                    }
                }
            }
        }
    }
    // Kahn peel: the dependency graph is acyclic iff every node drains.
    let mut indeg = vec![0usize; nlinks];
    for adj in &deps {
        for &w in adj {
            indeg[w] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..nlinks).filter(|&v| indeg[v] == 0).collect();
    let mut drained = 0usize;
    while let Some(v) = ready.pop() {
        drained += 1;
        for &w in &deps[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.push(w);
            }
        }
    }
    if drained != nlinks {
        return Err(IbaError::RoutingFailed(
            "escape channel-dependency graph has a cycle".into(),
        ));
    }
    Ok(())
}

/// Distribution of routing-option counts over `(switch, destination)`
/// pairs — one row of Table 2.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptionDistribution {
    /// The cap MR.
    pub max_routing_options: usize,
    /// `percent[k-1]` = percentage of pairs with exactly `k` options
    /// (after capping at MR). Sums to 100 (up to rounding).
    pub percent: Vec<f64>,
    /// Number of pairs counted.
    pub pairs: usize,
}

impl OptionDistribution {
    /// Compute the distribution for one topology. Generic over the
    /// escape engine — the distribution of FA-over-OutFlank differs from
    /// FA-over-up\*/down\* exactly when their escape hops differ.
    pub fn compute<E: EscapeEngine>(
        topo: &Topology,
        minimal: &MinimalRouting,
        escape: &E,
        max_routing_options: usize,
        include_local: bool,
    ) -> Result<OptionDistribution, IbaError> {
        if max_routing_options == 0 {
            return Err(IbaError::InvalidConfig("MR must be at least 1".into()));
        }
        let mut counts = vec![0usize; max_routing_options];
        let mut pairs = 0usize;
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                let t = topo.host_switch(h);
                let options = if t == s {
                    if !include_local {
                        continue;
                    }
                    1
                } else {
                    // Distinct storable options: minimal next hops plus
                    // the escape hop when it is not minimal.
                    let mins = minimal.options(s, t);
                    let esc = escape
                        .next_hop(s, t)
                        .ok_or_else(|| IbaError::RoutingFailed(format!("no escape hop {s}→{t}")))?;
                    mins.len() + usize::from(!mins.contains(&esc))
                };
                let capped = options.clamp(1, max_routing_options);
                counts[capped - 1] += 1;
                pairs += 1;
            }
        }
        let percent = counts
            .iter()
            .map(|&c| {
                if pairs == 0 {
                    0.0
                } else {
                    100.0 * c as f64 / pairs as f64
                }
            })
            .collect();
        Ok(OptionDistribution {
            max_routing_options,
            percent,
            pairs,
        })
    }

    /// Element-wise average of several distributions (the "average over
    /// ten topologies" of Table 2). All inputs must share the same MR.
    pub fn average(dists: &[OptionDistribution]) -> Result<OptionDistribution, IbaError> {
        let Some(first) = dists.first() else {
            return Err(IbaError::InvalidConfig(
                "no distributions to average".into(),
            ));
        };
        let mr = first.max_routing_options;
        if dists.iter().any(|d| d.max_routing_options != mr) {
            return Err(IbaError::InvalidConfig(
                "mismatched MR across distributions".into(),
            ));
        }
        let n = dists.len() as f64;
        let percent = (0..mr)
            .map(|k| dists.iter().map(|d| d.percent[k]).sum::<f64>() / n)
            .collect();
        Ok(OptionDistribution {
            max_routing_options: mr,
            percent,
            pairs: dists.iter().map(|d| d.pairs).sum(),
        })
    }

    /// Percentage of pairs with strictly more than one option — the
    /// headline quantity of §5.2.2 ("as network connectivity increases,
    /// the percentage of destinations with more than one routing option
    /// is increased").
    pub fn percent_multi_option(&self) -> f64 {
        self.percent.iter().skip(1).sum()
    }
}

/// Path-length comparison between minimal routing and the deterministic
/// escape layer — the §5.2.1 explanation of why adaptivity helps more in
/// large networks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathLengthStats {
    /// Mean shortest-path length over remote switch pairs.
    pub avg_minimal: f64,
    /// Mean deterministic escape-route length over the same pairs. The
    /// field keeps its historical name (up\*/down\* was the only escape
    /// layer when the JSON schema was fixed); for other engines it holds
    /// *their* deterministic route length.
    pub avg_updown: f64,
    /// Fraction of pairs whose escape route is strictly longer than
    /// minimal.
    pub nonminimal_fraction: f64,
}

impl PathLengthStats {
    /// Compute over all ordered remote switch pairs, following the
    /// escape engine's deterministic rule.
    pub fn compute<E: EscapeEngine>(
        topo: &Topology,
        minimal: &MinimalRouting,
        escape: &E,
    ) -> Result<PathLengthStats, IbaError> {
        let mut sum_min = 0u64;
        let mut sum_ud = 0u64;
        let mut nonmin = 0u64;
        let mut pairs = 0u64;
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    continue;
                }
                let dmin = minimal.distance(s, t) as u64;
                let dud = (escape.path(topo, s, t)?.len() - 1) as u64;
                sum_min += dmin;
                sum_ud += dud;
                nonmin += u64::from(dud > dmin);
                pairs += 1;
            }
        }
        if pairs == 0 {
            return Err(IbaError::InvalidConfig(
                "topology has a single switch".into(),
            ));
        }
        Ok(PathLengthStats {
            avg_minimal: sum_min as f64 / pairs as f64,
            avg_updown: sum_ud as f64 / pairs as f64,
            nonminimal_fraction: nonmin as f64 / pairs as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updown::UpDownRouting;
    use iba_topology::{regular, IrregularConfig};

    #[test]
    fn distribution_sums_to_100() {
        let topo = IrregularConfig::paper(16, 7).generate().unwrap();
        let minimal = MinimalRouting::build(&topo).unwrap();
        let updown = UpDownRouting::build(&topo).unwrap();
        for mr in 1..=4 {
            let d = OptionDistribution::compute(&topo, &minimal, &updown, mr, false).unwrap();
            let total: f64 = d.percent.iter().sum();
            assert!((total - 100.0).abs() < 1e-9, "MR={mr}: total={total}");
            assert_eq!(d.percent.len(), mr);
        }
    }

    #[test]
    fn mr_one_collapses_everything() {
        let topo = IrregularConfig::paper(8, 1).generate().unwrap();
        let minimal = MinimalRouting::build(&topo).unwrap();
        let updown = UpDownRouting::build(&topo).unwrap();
        let d = OptionDistribution::compute(&topo, &minimal, &updown, 1, false).unwrap();
        assert_eq!(d.percent, vec![100.0]);
        assert_eq!(d.percent_multi_option(), 0.0);
    }

    #[test]
    fn capping_preserves_mass() {
        // Column "2" under MR=2 equals columns "2"+"3"+"4" under MR=4.
        let topo = IrregularConfig::paper(32, 3).generate().unwrap();
        let minimal = MinimalRouting::build(&topo).unwrap();
        let updown = UpDownRouting::build(&topo).unwrap();
        let d2 = OptionDistribution::compute(&topo, &minimal, &updown, 2, false).unwrap();
        let d4 = OptionDistribution::compute(&topo, &minimal, &updown, 4, false).unwrap();
        assert!((d2.percent[0] - d4.percent[0]).abs() < 1e-9);
        assert!((d2.percent[1] - d4.percent[1..].iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn include_local_adds_single_option_pairs() {
        let topo = IrregularConfig::paper(8, 2).generate().unwrap();
        let minimal = MinimalRouting::build(&topo).unwrap();
        let updown = UpDownRouting::build(&topo).unwrap();
        let without = OptionDistribution::compute(&topo, &minimal, &updown, 4, false).unwrap();
        let with = OptionDistribution::compute(&topo, &minimal, &updown, 4, true).unwrap();
        assert_eq!(with.pairs, without.pairs + topo.num_hosts());
        assert!(with.percent[0] > without.percent[0]);
    }

    #[test]
    fn higher_connectivity_increases_multi_option_share() {
        // The structural driver of Table 2's right half: 6 links vs 4.
        let mut low = Vec::new();
        let mut high = Vec::new();
        for seed in 0..5 {
            let t4 = IrregularConfig::paper(32, seed).generate().unwrap();
            let t6 = IrregularConfig::paper_connected(32, seed)
                .generate()
                .unwrap();
            let m4 = MinimalRouting::build(&t4).unwrap();
            let m6 = MinimalRouting::build(&t6).unwrap();
            let u4 = UpDownRouting::build(&t4).unwrap();
            let u6 = UpDownRouting::build(&t6).unwrap();
            low.push(OptionDistribution::compute(&t4, &m4, &u4, 4, false).unwrap());
            high.push(OptionDistribution::compute(&t6, &m6, &u6, 4, false).unwrap());
        }
        let low = OptionDistribution::average(&low).unwrap();
        let high = OptionDistribution::average(&high).unwrap();
        assert!(
            high.percent_multi_option() > low.percent_multi_option(),
            "6-link networks must offer more multi-option destinations ({:.1}% vs {:.1}%)",
            high.percent_multi_option(),
            low.percent_multi_option()
        );
    }

    #[test]
    fn average_requires_consistent_mr() {
        let topo = IrregularConfig::paper(8, 1).generate().unwrap();
        let minimal = MinimalRouting::build(&topo).unwrap();
        let updown = UpDownRouting::build(&topo).unwrap();
        let a = OptionDistribution::compute(&topo, &minimal, &updown, 2, false).unwrap();
        let b = OptionDistribution::compute(&topo, &minimal, &updown, 4, false).unwrap();
        assert!(OptionDistribution::average(&[a.clone(), b]).is_err());
        assert!(OptionDistribution::average(&[]).is_err());
        let avg = OptionDistribution::average(&[a.clone(), a.clone()]).unwrap();
        assert_eq!(avg.percent, a.percent);
    }

    #[test]
    fn path_length_stats_on_ring() {
        let topo = regular::ring(8, 1).unwrap();
        let minimal = MinimalRouting::build(&topo).unwrap();
        let updown = UpDownRouting::build(&topo).unwrap();
        let st = PathLengthStats::compute(&topo, &minimal, &updown).unwrap();
        // up*/down* cannot beat minimal.
        assert!(st.avg_updown >= st.avg_minimal);
        assert!((0.0..=1.0).contains(&st.nonminimal_fraction));
    }

    #[test]
    fn updown_scales_worse_on_larger_networks() {
        // §5.2.1: "as network size increases, up*/down* tends to use
        // longer non-minimal paths". Compare the inflation factor.
        let inflation = |n: usize| {
            let mut f = 0.0;
            let runs = 3;
            for seed in 0..runs {
                let topo = IrregularConfig::paper(n, seed).generate().unwrap();
                let minimal = MinimalRouting::build(&topo).unwrap();
                let updown = UpDownRouting::build(&topo).unwrap();
                let st = PathLengthStats::compute(&topo, &minimal, &updown).unwrap();
                f += st.avg_updown / st.avg_minimal;
            }
            f / runs as f64
        };
        let small = inflation(8);
        let large = inflation(64);
        assert!(
            large > small,
            "expected more path inflation at 64 switches ({large:.3}) than at 8 ({small:.3})"
        );
    }

    #[test]
    fn updown_escape_routes_pass_the_deadlock_check() {
        for seed in 0..3 {
            let topo = IrregularConfig::paper(16, seed).generate().unwrap();
            let updown = UpDownRouting::build(&topo).unwrap();
            check_escape_routes(&topo, |s, h| {
                let (hsw, hp) = topo.host_attachment(h);
                if hsw == s {
                    Some(hp)
                } else {
                    updown.next_hop(s, hsw)
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn clockwise_ring_routing_fails_the_deadlock_check() {
        // Every chain terminates, yet the four directed clockwise links
        // wait on each other — the classic ring credit cycle.
        let topo = regular::ring(4, 1).unwrap();
        let n = topo.num_switches();
        let err = check_escape_routes(&topo, |s, h| {
            let (hsw, hp) = topo.host_attachment(h);
            if hsw == s {
                Some(hp)
            } else {
                let next = iba_core::SwitchId((s.0 + 1) % n as u16);
                topo.port_towards(s, next)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn missing_and_misdelivering_entries_are_rejected() {
        let topo = regular::ring(4, 1).unwrap();
        let err = check_escape_routes(&topo, |_, _| None).unwrap_err();
        assert!(err.to_string().contains("no escape entry"), "{err}");
        // Routing every destination to switch 0's local host mis-delivers.
        let updown = UpDownRouting::build(&topo).unwrap();
        let err = check_escape_routes(&topo, |s, _| {
            let (hsw, hp) = topo.host_attachment(iba_core::HostId(0));
            if hsw == s {
                Some(hp)
            } else {
                updown.next_hop(s, hsw)
            }
        })
        .unwrap_err();
        assert!(err.to_string().contains("delivers to"), "{err}");
    }
}
