//! The subnet-manager façade: the full bring-up pipeline.

use crate::discovery::{DiscoveredFabric, Discoverer};
use crate::managed::ManagedFabric;
use crate::program::{ProgramReport, Programmer};
use crate::retry::{ReliableSender, RetryPolicy};
use iba_core::{FlightEvent, IbaError, SwitchId};
use iba_routing::{DeltaStats, EscapeEngine, FaRouting, RoutingConfig, UpDownRouting};
use iba_stats::MetricsRegistry;
use iba_topology::Topology;
use std::marker::PhantomData;
use std::time::Instant;

/// The result of a complete subnet initialization.
pub struct BringUp<E: EscapeEngine = UpDownRouting> {
    /// What discovery found.
    pub discovered: DiscoveredFabric,
    /// The fabric graph as the SM sees it (discovery-ordered ids,
    /// physical port numbers).
    pub topology: Topology,
    /// The routes computed and uploaded.
    pub routing: FaRouting<E>,
    /// Programming statistics.
    pub report: ProgramReport,
}

/// The subnet manager, parameterized by the escape engine its FA tables
/// are built over (default: the paper's up\*/down\*).
pub struct SubnetManager<E: EscapeEngine = UpDownRouting> {
    routing_config: RoutingConfig,
    _engine: PhantomData<E>,
}

impl SubnetManager {
    /// A subnet manager that will deploy FA-over-up\*/down\* routing
    /// with the given configuration.
    pub fn new(routing_config: RoutingConfig) -> SubnetManager {
        SubnetManager::with_engine(routing_config)
    }
}

impl<E: EscapeEngine> SubnetManager<E> {
    /// A subnet manager deploying FA over the escape engine `E`, e.g.
    /// `SubnetManager::<OutflankRouting>::with_engine(cfg)` on a torus.
    pub fn with_engine(routing_config: RoutingConfig) -> SubnetManager<E> {
        SubnetManager {
            routing_config,
            _engine: PhantomData,
        }
    }

    /// Run the whole pipeline against a fabric: discover every node via
    /// directed-route SMPs, rebuild the graph, assign LID ranges per the
    /// LMC scheme, compute FA routes (deterministic escape + minimal
    /// adaptive options), upload every forwarding table in 64-entry
    /// blocks, and verify by read-back.
    pub fn initialize(&self, fabric: &mut ManagedFabric) -> Result<BringUp<E>, IbaError> {
        self.initialize_with(fabric, &mut Programmer::new())
    }

    /// [`Self::initialize`] through a caller-owned [`Programmer`]. The
    /// programmer's dirty-block shadow survives the call, so a later
    /// [`Self::resweep_after_link_failure`] through the *same*
    /// programmer uploads only the LFT blocks that changed.
    pub fn initialize_with(
        &self,
        fabric: &mut ManagedFabric,
        programmer: &mut Programmer,
    ) -> Result<BringUp<E>, IbaError> {
        let discovered = Discoverer::new().discover(fabric)?;
        let topology = discovered.to_topology()?;
        let routing = FaRouting::<E>::build_with_engine(&topology, self.routing_config)?;
        let report = programmer.program(fabric, &discovered, &routing)?;
        Ok(BringUp {
            discovered,
            topology,
            routing,
            report,
        })
    }

    /// The incremental re-sweep: given the previous bring-up and a
    /// failed inter-switch link `(a, b)` (discovery-ordered ids), skip
    /// rediscovery — degrade the recorded fabric in place, recompute
    /// only the routing columns the dead link was tight for
    /// ([`FaRouting::rebuild_after_link_failure`]), and upload the diff
    /// through `programmer`'s dirty-block shadow. The resulting tables
    /// are byte-identical to a from-scratch sweep of the degraded
    /// fabric; only the changed blocks travel as SMPs.
    pub fn resweep_after_link_failure(
        &self,
        fabric: &mut ManagedFabric,
        previous: &BringUp<E>,
        a: SwitchId,
        b: SwitchId,
        programmer: &mut Programmer,
    ) -> Result<Resweep<E>, IbaError> {
        let (discovered, topology, delta) = self.resweep_tables(previous, a, b)?;
        let report = programmer.program(fabric, &discovered, &delta.routing)?;
        Ok(Resweep {
            bringup: BringUp {
                discovered,
                topology,
                routing: delta.routing,
                report,
            },
            delta: delta.stats,
        })
    }

    /// [`Self::resweep_after_link_failure`] with loss-tolerant
    /// programming: every SMP rides a retransmit loop, and the sweep
    /// verdict (including diff statistics) comes back as a
    /// [`SweepReport`].
    pub fn resweep_after_link_failure_robust(
        &self,
        fabric: &mut ManagedFabric,
        previous: &BringUp<E>,
        a: SwitchId,
        b: SwitchId,
        programmer: &mut Programmer,
        policy: RetryPolicy,
    ) -> Result<RobustResweep<E>, IbaError> {
        // An incremental sweep skips rediscovery; its discover phase is 0.
        let route_started = Instant::now();
        let (discovered, topology, delta) = self.resweep_tables(previous, a, b)?;
        let route_ns = route_started.elapsed().as_nanos() as u64;
        let mut sender = ReliableSender::new(policy)?;
        let program_started = Instant::now();
        let prog = programmer.program_robust(fabric, &discovered, &delta.routing, &mut sender)?;
        let program_ns = program_started.elapsed().as_nanos() as u64;
        let partial = prog.partial;
        let converged = !partial && prog.skipped.is_empty();
        let entries_recomputed = delta.stats.entries_recomputed;
        let report = prog.report.clone();
        let stats = sender.stats;
        let resweep = converged.then(|| Resweep {
            bringup: BringUp {
                discovered,
                topology,
                routing: delta.routing,
                report: prog.report,
            },
            delta: delta.stats,
        });
        Ok(RobustResweep {
            resweep,
            report: SweepReport {
                converged,
                partial,
                retransmits: stats.retransmits,
                timeouts: stats.timeouts,
                backoff_wait_ns: stats.backoff_wait_ns,
                unreachable: prog.skipped,
                blocks_total: report.blocks_total,
                blocks_uploaded: report.blocks_written,
                entries_recomputed,
                phases: SweepPhases {
                    discover_ns: 0,
                    route_ns,
                    program_ns,
                },
                events: sender.into_events(),
            },
        })
    }

    /// The SMP-free half of a re-sweep: degrade the recorded fabric,
    /// recompute routes incrementally from the previous tables.
    fn resweep_tables(
        &self,
        previous: &BringUp<E>,
        a: SwitchId,
        b: SwitchId,
    ) -> Result<(DiscoveredFabric, Topology, iba_routing::DeltaRebuild<E>), IbaError> {
        let (pa, _, pb) = previous
            .topology
            .switch_neighbors(a)
            .find(|&(_, peer, _)| peer == b)
            .ok_or_else(|| IbaError::InvalidTopology(format!("no link between {a:?} and {b:?}")))?;
        let mut discovered = previous.discovered.clone();
        discovered.degrade_link(a, pa, b, pb)?;
        discovered.recompute_routes()?;
        let topology = discovered.to_topology()?;
        let delta = previous
            .routing
            .rebuild_after_link_failure(&topology, a, pa, b, pb)?;
        Ok((discovered, topology, delta))
    }

    /// The loss-tolerant pipeline: every SMP rides a retransmit loop
    /// with exponential backoff, unreachable destinations become
    /// partition-report entries, and a spent retry budget yields a
    /// *partial* verdict instead of an error. Control-plane loss never
    /// hard-errors; only protocol violations (an agent answering with
    /// the wrong thing) and internal failures do.
    pub fn initialize_robust(
        &self,
        fabric: &mut ManagedFabric,
        policy: RetryPolicy,
    ) -> Result<RobustBringUp<E>, IbaError> {
        let mut sender = ReliableSender::new(policy)?;
        let discover_started = Instant::now();
        let disc = Discoverer::new().discover_robust(fabric, &mut sender)?;
        let mut phases = SweepPhases {
            discover_ns: discover_started.elapsed().as_nanos() as u64,
            ..SweepPhases::default()
        };
        let mut unreachable = disc.unreachable;
        let mut partial = disc.partial;
        let mut bringup = None;
        let mut blocks_total = 0u64;
        let mut blocks_uploaded = 0u64;
        let mut entries_recomputed = 0u64;
        if !partial && disc.fabric.switch_count() > 0 {
            let discovered = disc.fabric;
            let route_started = Instant::now();
            let topology = discovered.to_topology()?;
            let routing = FaRouting::<E>::build_with_engine(&topology, self.routing_config)?;
            phases.route_ns = route_started.elapsed().as_nanos() as u64;
            // A full sweep recomputes every table entry from scratch.
            entries_recomputed = (routing.lid_map().table_len() * topology.num_switches()) as u64;
            let program_started = Instant::now();
            let prog =
                Programmer::new().program_robust(fabric, &discovered, &routing, &mut sender)?;
            phases.program_ns = program_started.elapsed().as_nanos() as u64;
            blocks_total = prog.report.blocks_total;
            blocks_uploaded = prog.report.blocks_written;
            unreachable.extend(prog.skipped);
            partial |= prog.partial;
            if !partial {
                bringup = Some(BringUp {
                    discovered,
                    topology,
                    routing,
                    report: prog.report,
                });
            }
        }
        let converged = !partial && bringup.is_some();
        let stats = sender.stats;
        Ok(RobustBringUp {
            bringup,
            report: SweepReport {
                converged,
                partial,
                retransmits: stats.retransmits,
                timeouts: stats.timeouts,
                backoff_wait_ns: stats.backoff_wait_ns,
                unreachable,
                blocks_total,
                blocks_uploaded,
                entries_recomputed,
                phases,
                events: sender.into_events(),
            },
        })
    }
}

/// How a loss-tolerant sweep went.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The sweep finished and programmed every switch it could reach.
    /// Partitioned destinations may still be listed in `unreachable` —
    /// convergence is over the reachable component.
    pub converged: bool,
    /// The retry budget ran out before the sweep finished.
    pub partial: bool,
    /// SMPs retransmitted across the whole sweep.
    pub retransmits: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Modeled time spent waiting out timeouts, in ns.
    pub backoff_wait_ns: u64,
    /// Partition report: destinations that exhausted every retry.
    pub unreachable: Vec<String>,
    /// Non-empty LFT blocks the computed tables contain.
    pub blocks_total: u64,
    /// LFT blocks actually uploaded (≤ `blocks_total`; strictly fewer
    /// when the programmer's dirty-block shadow filtered clean blocks).
    pub blocks_uploaded: u64,
    /// Forwarding-table entries recomputed by the routing stage (the
    /// full table size on an initial sweep or fallback; the affected
    /// subset on an incremental re-sweep).
    pub entries_recomputed: u64,
    /// Wall-clock phase durations. Host-machine time, not sim time —
    /// exported only under the `profiling_` metrics namespace, which
    /// determinism digests exclude.
    pub phases: SweepPhases,
    /// Capped retransmit log, as flight-recorder events.
    pub events: Vec<FlightEvent>,
}

/// Wall-clock breakdown of one sweep, by pipeline phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepPhases {
    /// Directed-route discovery (0 on an incremental re-sweep, which
    /// degrades the recorded fabric instead of rediscovering).
    pub discover_ns: u64,
    /// Route computation: graph rebuild plus FA table construction (or
    /// the incremental column recomputation on a re-sweep).
    pub route_ns: u64,
    /// LFT/SLtoVL programming, including retransmit loops.
    pub program_ns: u64,
}

impl SweepReport {
    /// Export this sweep into `reg`. Protocol counters
    /// (`iba_sm_*`) are deterministic functions of the sweep inputs;
    /// phase durations land under `profiling_sm_phase_ns{phase=...}`
    /// and stay out of determinism digests.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.add("iba_sm_sweeps_total", &[], 1);
        if self.converged {
            reg.add("iba_sm_sweeps_converged_total", &[], 1);
        }
        if self.partial {
            reg.add("iba_sm_sweeps_partial_total", &[], 1);
        }
        reg.add("iba_sm_retransmits_total", &[], self.retransmits);
        reg.add("iba_sm_timeouts_total", &[], self.timeouts);
        reg.add("iba_sm_backoff_wait_ns_total", &[], self.backoff_wait_ns);
        reg.add(
            "iba_sm_unreachable_total",
            &[],
            self.unreachable.len() as u64,
        );
        reg.add("iba_sm_lft_blocks_total", &[], self.blocks_total);
        reg.add(
            "iba_sm_lft_blocks_uploaded_total",
            &[],
            self.blocks_uploaded,
        );
        reg.add(
            "iba_sm_entries_recomputed_total",
            &[],
            self.entries_recomputed,
        );
        for (phase, ns) in [
            ("discover", self.phases.discover_ns),
            ("route", self.phases.route_ns),
            ("program", self.phases.program_ns),
        ] {
            reg.add("profiling_sm_phase_ns", &[("phase", phase)], ns);
        }
    }
}

/// The result of an incremental re-sweep.
pub struct Resweep<E: EscapeEngine = UpDownRouting> {
    /// The refreshed bring-up state: degraded fabric view, new
    /// topology, new routing tables, and the diff-programming report.
    pub bringup: BringUp<E>,
    /// What the incremental route recomputation did (affected
    /// destinations, fallback verdict, entries recomputed).
    pub delta: DeltaStats,
}

/// The result of a loss-tolerant incremental re-sweep.
pub struct RobustResweep<E: EscapeEngine = UpDownRouting> {
    /// `Some` when every switch was diff-programmed; `None` under a
    /// spent budget or unreachable switches.
    pub resweep: Option<Resweep<E>>,
    /// Retry counters, diff statistics and verdict.
    pub report: SweepReport,
}

/// The result of a loss-tolerant initialization: the bring-up when one
/// was achieved, and the sweep verdict either way.
pub struct RobustBringUp<E: EscapeEngine = UpDownRouting> {
    /// `Some` when the reachable component was fully programmed;
    /// `None` under a spent budget or an unreachable SM switch.
    pub bringup: Option<BringUp<E>>,
    /// Retry counters, partition report and verdict.
    pub report: SweepReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::Lid;
    use iba_topology::IrregularConfig;

    /// First inter-switch link of `topo` whose removal keeps the switch
    /// graph connected.
    fn removable_link(topo: &Topology) -> (SwitchId, SwitchId) {
        let n = topo.num_switches();
        for a in topo.switch_ids() {
            for (_, b, _) in topo.switch_neighbors(a) {
                if a.0 >= b.0 {
                    continue;
                }
                let mut seen = vec![false; n];
                let mut stack = vec![SwitchId(0)];
                seen[0] = true;
                while let Some(s) = stack.pop() {
                    for (_, peer, _) in topo.switch_neighbors(s) {
                        let dead = (s == a && peer == b) || (s == b && peer == a);
                        if !dead && !seen[peer.index()] {
                            seen[peer.index()] = true;
                            stack.push(peer);
                        }
                    }
                }
                if seen.iter().all(|&v| v) {
                    return (a, b);
                }
            }
        }
        panic!("no removable link");
    }

    /// Physical switch carrying `guid`.
    fn physical_of(topo: &Topology, fabric: &ManagedFabric, guid: u64) -> SwitchId {
        topo.switch_ids()
            .find(|&s| fabric.agent(s).guid == guid)
            .unwrap()
    }

    fn assert_same_agent_tables(topo: &Topology, a: &ManagedFabric, b: &ManagedFabric) {
        for s in topo.switch_ids() {
            let (x, y) = (&a.agent(s).lft, &b.agent(s).lft);
            assert_eq!(x.len(), y.len());
            for lid in 0..x.len() {
                assert_eq!(
                    x.get(Lid(lid as u16)),
                    y.get(Lid(lid as u16)),
                    "switch {s:?}, lid {lid}"
                );
            }
        }
    }

    #[test]
    fn incremental_resweep_diff_programs_to_the_full_result() {
        let physical = IrregularConfig::paper(16, 8).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let mut programmer = Programmer::new();
        let up = sm.initialize_with(&mut fabric, &mut programmer).unwrap();
        assert!(up.report.verified);

        // Fail a link whose removal keeps the fabric connected.
        let (a, b) = removable_link(&up.topology);
        let pa = physical_of(&physical, &fabric, up.discovered.switches[a.index()].guid);
        let pb = physical_of(&physical, &fabric, up.discovered.switches[b.index()].guid);
        fabric.fail_link(pa, pb).unwrap();

        let r = sm
            .resweep_after_link_failure(&mut fabric, &up, a, b, &mut programmer)
            .unwrap();
        assert!(r.bringup.report.verified);
        // The diff did its job: strictly fewer uploads than blocks.
        assert!(r.bringup.report.blocks_written < r.bringup.report.blocks_total);

        // Diff programming converges to exactly what a full upload
        // produces: program the same routing from scratch onto an
        // identically degraded twin fabric and compare agent tables.
        let mut twin = ManagedFabric::new(&physical, 2).unwrap();
        twin.fail_link(pa, pb).unwrap();
        let full = Programmer::new()
            .program(&mut twin, &r.bringup.discovered, &r.bringup.routing)
            .unwrap();
        assert!(full.verified);
        assert!(r.bringup.report.blocks_written < full.blocks_written);
        assert_same_agent_tables(&physical, &fabric, &twin);
    }

    #[test]
    fn lossy_resweep_converges_to_the_full_tables() {
        // 20% of SMPs vanish mid-re-sweep; the dirty-block diff must
        // still converge on the same agent tables as a lossless full
        // upload, retrying only what was actually lost.
        let physical = IrregularConfig::paper(8, 3).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let mut programmer = Programmer::new();
        let up = sm.initialize_with(&mut fabric, &mut programmer).unwrap();

        let (a, b) = removable_link(&up.topology);
        let pa = physical_of(&physical, &fabric, up.discovered.switches[a.index()].guid);
        let pb = physical_of(&physical, &fabric, up.discovered.switches[b.index()].guid);
        fabric.fail_link(pa, pb).unwrap();
        fabric.set_smp_faults(0.20, 17).unwrap();

        let policy = RetryPolicy {
            max_attempts: 12,
            ..RetryPolicy::default()
        };
        let r = sm
            .resweep_after_link_failure_robust(&mut fabric, &up, a, b, &mut programmer, policy)
            .unwrap();
        assert!(
            r.report.converged,
            "re-sweep failed: {:?}",
            r.report.unreachable
        );
        assert!(r.report.retransmits > 0, "loss must have been absorbed");
        assert!(r.report.blocks_uploaded < r.report.blocks_total);
        assert!(r.report.entries_recomputed > 0);
        let r = r.resweep.unwrap();

        let mut twin = ManagedFabric::new(&physical, 2).unwrap();
        twin.fail_link(pa, pb).unwrap();
        let full = Programmer::new()
            .program(&mut twin, &r.bringup.discovered, &r.bringup.routing)
            .unwrap();
        assert!(full.verified);
        assert_same_agent_tables(&physical, &fabric, &twin);
    }

    #[test]
    fn full_bringup_discovers_routes_and_programs() {
        let physical = IrregularConfig::paper(16, 6).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let up = sm.initialize(&mut fabric).unwrap();

        assert_eq!(up.topology.num_switches(), 16);
        assert_eq!(up.topology.num_hosts(), 64);
        assert!(up.report.verified);
        assert_eq!(up.report.switches, 16);
        // The reconstructed fabric supports the same routing guarantees.
        for s in up.topology.switch_ids() {
            for h in up.topology.host_ids() {
                let r = up
                    .routing
                    .route(s, up.routing.dlid(h, true).unwrap())
                    .unwrap();
                if up.topology.host_switch(h) != s {
                    assert!(!r.adaptive.is_empty());
                }
                let _ = r.escape;
            }
        }
        // The whole exchange is accounted for.
        assert_eq!(
            fabric.smps_sent,
            up.discovered.smps_used + up.report.smps_used
        );
    }

    #[test]
    fn robust_bringup_converges_under_heavy_smp_loss() {
        // 20% of all SMPs vanish; with 12 attempts per SMP the sweep
        // must still converge on the whole fabric with a bounded number
        // of retransmits and a verified read-back.
        let physical = IrregularConfig::paper(8, 3).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        fabric.set_smp_faults(0.20, 11).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 12,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(up.report.converged, "sweep failed: {:?}", up.report);
        assert!(!up.report.partial);
        assert!(
            up.report.unreachable.is_empty(),
            "{:?}",
            up.report.unreachable
        );
        let bringup = up.bringup.expect("bring-up achieved");
        assert_eq!(bringup.topology.num_switches(), 8);
        assert_eq!(bringup.topology.num_hosts(), 32);
        assert!(bringup.report.verified);
        // Loss happened and was absorbed by bounded retries: roughly a
        // fifth of sends time out, so retransmits sit well below the
        // total SMP count.
        assert!(up.report.retransmits > 0);
        assert!(up.report.retransmits < fabric.smps_sent / 2);
        assert!(up.report.backoff_wait_ns > 0);
        assert!(!up.report.events.is_empty());
    }

    #[test]
    fn robust_bringup_under_loss_is_deterministic() {
        let physical = IrregularConfig::paper(8, 5).generate().unwrap();
        let run = || {
            let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
            fabric.set_smp_faults(0.15, 23).unwrap();
            SubnetManager::new(RoutingConfig::two_options())
                .initialize_robust(&mut fabric, RetryPolicy::default())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report.retransmits, b.report.retransmits);
        assert_eq!(a.report.timeouts, b.report.timeouts);
        assert_eq!(a.report.backoff_wait_ns, b.report.backoff_wait_ns);
        assert_eq!(a.bringup.unwrap().report, b.bringup.unwrap().report);
    }

    #[test]
    fn silent_partition_is_reported_not_retried_forever() {
        // Silently fail every link of one switch: its neighbors still
        // report the ports trained, so discovery probes them, exhausts
        // its retries, files partition entries — and brings up the rest
        // of the fabric.
        let physical = IrregularConfig::paper(8, 4).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm_sw = fabric.sm_switch();
        // A victim whose removal keeps the remaining switch graph
        // connected (checked by BFS over the other switches).
        let victim = physical
            .switch_ids()
            .filter(|&s| s != sm_sw)
            .find(|&victim| {
                let n = physical.num_switches();
                let mut seen = vec![false; n];
                let start = physical.switch_ids().find(|&s| s != victim).unwrap();
                let mut stack = vec![start];
                seen[start.index()] = true;
                while let Some(s) = stack.pop() {
                    for (_, peer, _) in physical.switch_neighbors(s) {
                        if peer != victim && !seen[peer.index()] {
                            seen[peer.index()] = true;
                            stack.push(peer);
                        }
                    }
                }
                physical
                    .switch_ids()
                    .all(|s| s == victim || seen[s.index()])
            })
            .expect("some victim keeps the fabric connected");
        let neighbors: Vec<_> = physical
            .switch_neighbors(victim)
            .map(|(_, peer, _)| peer)
            .collect();
        for peer in &neighbors {
            fabric.fail_link_silent(victim, *peer).unwrap();
        }
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 3,
            base_timeout_ns: 256,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(up.report.converged, "{:?}", up.report);
        assert!(
            !up.report.unreachable.is_empty(),
            "partition must be reported"
        );
        let bringup = up.bringup.expect("rest of the fabric brought up");
        assert_eq!(bringup.topology.num_switches(), 7);
        // The victim's hosts are behind the partition.
        assert_eq!(bringup.topology.num_hosts(), 28);
        assert!(bringup.report.verified);
        // Bounded: every silent link was probed at most max_attempts
        // times from the reachable side.
        assert!(up.report.retransmits >= 2 * neighbors.len() as u64);
    }

    #[test]
    fn spent_budget_reports_partial_convergence() {
        let physical = IrregularConfig::paper(8, 6).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        fabric.set_smp_faults(0.5, 9).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 8,
            sweep_budget: 10,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(
            up.report.partial,
            "a 10-retransmit budget cannot cover 50% loss"
        );
        assert!(!up.report.converged);
        assert!(up.bringup.is_none());
    }

    #[test]
    fn unreachable_sm_switch_yields_no_bringup_not_a_panic() {
        let physical = IrregularConfig::paper(8, 2).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        fabric.set_smp_faults(1.0, 1).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 3,
            sweep_budget: 1_000,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(up.bringup.is_none());
        assert!(!up.report.converged);
        assert!(!up.report.unreachable.is_empty());
    }

    #[test]
    fn bringup_is_deterministic() {
        let physical = IrregularConfig::paper(8, 9).generate().unwrap();
        let run = || {
            let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
            SubnetManager::new(RoutingConfig::two_options())
                .initialize(&mut fabric)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report);
        for s in a.topology.switch_ids() {
            assert_eq!(
                a.routing.table(s).linear_view(),
                b.routing.table(s).linear_view()
            );
        }
    }

    #[test]
    fn sweep_metrics_split_protocol_counters_from_wall_clock_phases() {
        let physical = IrregularConfig::paper(8, 4).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let up = sm
            .initialize_robust(&mut fabric, RetryPolicy::default())
            .unwrap();
        assert!(up.report.converged);
        // A full sweep spent wall-clock in discovery and routing.
        assert!(up.report.phases.discover_ns > 0);
        assert!(up.report.phases.route_ns > 0);

        let mut reg = MetricsRegistry::new();
        up.report.record_metrics(&mut reg);
        assert_eq!(reg.counter("iba_sm_sweeps_total", &[]), Some(1));
        assert_eq!(reg.counter("iba_sm_sweeps_converged_total", &[]), Some(1));
        assert_eq!(
            reg.counter("iba_sm_lft_blocks_total", &[]),
            Some(up.report.blocks_total)
        );
        assert_eq!(
            reg.counter("iba_sm_entries_recomputed_total", &[]),
            Some(up.report.entries_recomputed)
        );
        // Phase durations are present but namespaced as profiling, so
        // the digest ignores them: a registry with scrambled phase
        // values digests identically.
        assert!(reg
            .counter("profiling_sm_phase_ns", &[("phase", "discover")])
            .is_some());
        let mut twin = MetricsRegistry::new();
        let mut scrambled = up.report.clone();
        scrambled.phases = SweepPhases {
            discover_ns: 1,
            route_ns: 2,
            program_ns: 3,
        };
        scrambled.record_metrics(&mut twin);
        assert_eq!(reg.digest(), twin.digest());
        assert!(reg
            .digest_names()
            .iter()
            .all(|n| !n.starts_with("profiling_")));

        // The programming report exports its own family.
        let mut preg = MetricsRegistry::new();
        up.bringup
            .as_ref()
            .unwrap()
            .report
            .record_metrics(&mut preg);
        assert_eq!(preg.counter("iba_sm_program_switches_total", &[]), Some(8));
        assert_eq!(preg.counter("iba_sm_program_verified_total", &[]), Some(1));
    }

    #[test]
    fn resweep_delta_stats_export_to_metrics() {
        let physical = IrregularConfig::paper(16, 8).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let mut programmer = Programmer::new();
        let up = sm.initialize_with(&mut fabric, &mut programmer).unwrap();
        let (a, b) = removable_link(&up.topology);
        let pa = physical_of(&physical, &fabric, up.discovered.switches[a.index()].guid);
        let pb = physical_of(&physical, &fabric, up.discovered.switches[b.index()].guid);
        fabric.fail_link(pa, pb).unwrap();
        let r = sm
            .resweep_after_link_failure(&mut fabric, &up, a, b, &mut programmer)
            .unwrap();
        let mut reg = MetricsRegistry::new();
        r.delta.record_metrics(&mut reg);
        assert_eq!(
            reg.counter("iba_routing_delta_rebuilds_total", &[]),
            Some(1)
        );
        assert_eq!(
            reg.counter("iba_routing_delta_entries_recomputed_total", &[]),
            Some(r.delta.entries_recomputed)
        );
        assert_eq!(
            reg.counter("iba_routing_delta_affected_switches_total", &[]),
            Some(r.delta.affected_switches as u64)
        );
        // The fallback counter mirrors the rebuild verdict exactly.
        let expect = r.delta.full_rebuild.then_some(1);
        assert_eq!(
            reg.counter("iba_routing_delta_fallbacks_total", &[]),
            expect
        );
    }
}
