//! The subnet-manager façade: the full bring-up pipeline.

use crate::discovery::{DiscoveredFabric, Discoverer};
use crate::managed::ManagedFabric;
use crate::program::{ProgramReport, Programmer};
use crate::retry::{ReliableSender, RetryPolicy};
use iba_core::{FlightEvent, IbaError};
use iba_routing::{FaRouting, RoutingConfig};
use iba_topology::Topology;

/// The result of a complete subnet initialization.
pub struct BringUp {
    /// What discovery found.
    pub discovered: DiscoveredFabric,
    /// The fabric graph as the SM sees it (discovery-ordered ids,
    /// physical port numbers).
    pub topology: Topology,
    /// The routes computed and uploaded.
    pub routing: FaRouting,
    /// Programming statistics.
    pub report: ProgramReport,
}

/// The subnet manager.
pub struct SubnetManager {
    routing_config: RoutingConfig,
}

impl SubnetManager {
    /// A subnet manager that will deploy FA routing with the given
    /// configuration.
    pub fn new(routing_config: RoutingConfig) -> SubnetManager {
        SubnetManager { routing_config }
    }

    /// Run the whole pipeline against a fabric: discover every node via
    /// directed-route SMPs, rebuild the graph, assign LID ranges per the
    /// LMC scheme, compute FA routes (up\*/down\* escape + minimal
    /// adaptive options), upload every forwarding table in 64-entry
    /// blocks, and verify by read-back.
    pub fn initialize(&self, fabric: &mut ManagedFabric) -> Result<BringUp, IbaError> {
        let discovered = Discoverer::new().discover(fabric)?;
        let topology = discovered.to_topology()?;
        let routing = FaRouting::build(&topology, self.routing_config)?;
        let report = Programmer::new().program(fabric, &discovered, &routing)?;
        Ok(BringUp {
            discovered,
            topology,
            routing,
            report,
        })
    }

    /// The loss-tolerant pipeline: every SMP rides a retransmit loop
    /// with exponential backoff, unreachable destinations become
    /// partition-report entries, and a spent retry budget yields a
    /// *partial* verdict instead of an error. Control-plane loss never
    /// hard-errors; only protocol violations (an agent answering with
    /// the wrong thing) and internal failures do.
    pub fn initialize_robust(
        &self,
        fabric: &mut ManagedFabric,
        policy: RetryPolicy,
    ) -> Result<RobustBringUp, IbaError> {
        let mut sender = ReliableSender::new(policy)?;
        let disc = Discoverer::new().discover_robust(fabric, &mut sender)?;
        let mut unreachable = disc.unreachable;
        let mut partial = disc.partial;
        let mut bringup = None;
        if !partial && disc.fabric.switch_count() > 0 {
            let discovered = disc.fabric;
            let topology = discovered.to_topology()?;
            let routing = FaRouting::build(&topology, self.routing_config)?;
            let prog =
                Programmer::new().program_robust(fabric, &discovered, &routing, &mut sender)?;
            unreachable.extend(prog.skipped);
            partial |= prog.partial;
            if !partial {
                bringup = Some(BringUp {
                    discovered,
                    topology,
                    routing,
                    report: prog.report,
                });
            }
        }
        let converged = !partial && bringup.is_some();
        let stats = sender.stats;
        Ok(RobustBringUp {
            bringup,
            report: SweepReport {
                converged,
                partial,
                retransmits: stats.retransmits,
                timeouts: stats.timeouts,
                backoff_wait_ns: stats.backoff_wait_ns,
                unreachable,
                events: sender.into_events(),
            },
        })
    }
}

/// How a loss-tolerant sweep went.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The sweep finished and programmed every switch it could reach.
    /// Partitioned destinations may still be listed in `unreachable` —
    /// convergence is over the reachable component.
    pub converged: bool,
    /// The retry budget ran out before the sweep finished.
    pub partial: bool,
    /// SMPs retransmitted across the whole sweep.
    pub retransmits: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Modeled time spent waiting out timeouts, in ns.
    pub backoff_wait_ns: u64,
    /// Partition report: destinations that exhausted every retry.
    pub unreachable: Vec<String>,
    /// Capped retransmit log, as flight-recorder events.
    pub events: Vec<FlightEvent>,
}

/// The result of a loss-tolerant initialization: the bring-up when one
/// was achieved, and the sweep verdict either way.
pub struct RobustBringUp {
    /// `Some` when the reachable component was fully programmed;
    /// `None` under a spent budget or an unreachable SM switch.
    pub bringup: Option<BringUp>,
    /// Retry counters, partition report and verdict.
    pub report: SweepReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topology::IrregularConfig;

    #[test]
    fn full_bringup_discovers_routes_and_programs() {
        let physical = IrregularConfig::paper(16, 6).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let up = sm.initialize(&mut fabric).unwrap();

        assert_eq!(up.topology.num_switches(), 16);
        assert_eq!(up.topology.num_hosts(), 64);
        assert!(up.report.verified);
        assert_eq!(up.report.switches, 16);
        // The reconstructed fabric supports the same routing guarantees.
        for s in up.topology.switch_ids() {
            for h in up.topology.host_ids() {
                let r = up
                    .routing
                    .route(s, up.routing.dlid(h, true).unwrap())
                    .unwrap();
                if up.topology.host_switch(h) != s {
                    assert!(!r.adaptive.is_empty());
                }
                let _ = r.escape;
            }
        }
        // The whole exchange is accounted for.
        assert_eq!(
            fabric.smps_sent,
            up.discovered.smps_used + up.report.smps_used
        );
    }

    #[test]
    fn robust_bringup_converges_under_heavy_smp_loss() {
        // 20% of all SMPs vanish; with 12 attempts per SMP the sweep
        // must still converge on the whole fabric with a bounded number
        // of retransmits and a verified read-back.
        let physical = IrregularConfig::paper(8, 3).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        fabric.set_smp_faults(0.20, 11).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 12,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(up.report.converged, "sweep failed: {:?}", up.report);
        assert!(!up.report.partial);
        assert!(
            up.report.unreachable.is_empty(),
            "{:?}",
            up.report.unreachable
        );
        let bringup = up.bringup.expect("bring-up achieved");
        assert_eq!(bringup.topology.num_switches(), 8);
        assert_eq!(bringup.topology.num_hosts(), 32);
        assert!(bringup.report.verified);
        // Loss happened and was absorbed by bounded retries: roughly a
        // fifth of sends time out, so retransmits sit well below the
        // total SMP count.
        assert!(up.report.retransmits > 0);
        assert!(up.report.retransmits < fabric.smps_sent / 2);
        assert!(up.report.backoff_wait_ns > 0);
        assert!(!up.report.events.is_empty());
    }

    #[test]
    fn robust_bringup_under_loss_is_deterministic() {
        let physical = IrregularConfig::paper(8, 5).generate().unwrap();
        let run = || {
            let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
            fabric.set_smp_faults(0.15, 23).unwrap();
            SubnetManager::new(RoutingConfig::two_options())
                .initialize_robust(&mut fabric, RetryPolicy::default())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report.retransmits, b.report.retransmits);
        assert_eq!(a.report.timeouts, b.report.timeouts);
        assert_eq!(a.report.backoff_wait_ns, b.report.backoff_wait_ns);
        assert_eq!(a.bringup.unwrap().report, b.bringup.unwrap().report);
    }

    #[test]
    fn silent_partition_is_reported_not_retried_forever() {
        // Silently fail every link of one switch: its neighbors still
        // report the ports trained, so discovery probes them, exhausts
        // its retries, files partition entries — and brings up the rest
        // of the fabric.
        let physical = IrregularConfig::paper(8, 4).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm_sw = fabric.sm_switch();
        // A victim whose removal keeps the remaining switch graph
        // connected (checked by BFS over the other switches).
        let victim = physical
            .switch_ids()
            .filter(|&s| s != sm_sw)
            .find(|&victim| {
                let n = physical.num_switches();
                let mut seen = vec![false; n];
                let start = physical.switch_ids().find(|&s| s != victim).unwrap();
                let mut stack = vec![start];
                seen[start.index()] = true;
                while let Some(s) = stack.pop() {
                    for (_, peer, _) in physical.switch_neighbors(s) {
                        if peer != victim && !seen[peer.index()] {
                            seen[peer.index()] = true;
                            stack.push(peer);
                        }
                    }
                }
                physical
                    .switch_ids()
                    .all(|s| s == victim || seen[s.index()])
            })
            .expect("some victim keeps the fabric connected");
        let neighbors: Vec<_> = physical
            .switch_neighbors(victim)
            .map(|(_, peer, _)| peer)
            .collect();
        for peer in &neighbors {
            fabric.fail_link_silent(victim, *peer).unwrap();
        }
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 3,
            base_timeout_ns: 256,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(up.report.converged, "{:?}", up.report);
        assert!(
            !up.report.unreachable.is_empty(),
            "partition must be reported"
        );
        let bringup = up.bringup.expect("rest of the fabric brought up");
        assert_eq!(bringup.topology.num_switches(), 7);
        // The victim's hosts are behind the partition.
        assert_eq!(bringup.topology.num_hosts(), 28);
        assert!(bringup.report.verified);
        // Bounded: every silent link was probed at most max_attempts
        // times from the reachable side.
        assert!(up.report.retransmits >= 2 * neighbors.len() as u64);
    }

    #[test]
    fn spent_budget_reports_partial_convergence() {
        let physical = IrregularConfig::paper(8, 6).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        fabric.set_smp_faults(0.5, 9).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 8,
            sweep_budget: 10,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(
            up.report.partial,
            "a 10-retransmit budget cannot cover 50% loss"
        );
        assert!(!up.report.converged);
        assert!(up.bringup.is_none());
    }

    #[test]
    fn unreachable_sm_switch_yields_no_bringup_not_a_panic() {
        let physical = IrregularConfig::paper(8, 2).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        fabric.set_smp_faults(1.0, 1).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let policy = RetryPolicy {
            max_attempts: 3,
            sweep_budget: 1_000,
            ..RetryPolicy::default()
        };
        let up = sm.initialize_robust(&mut fabric, policy).unwrap();
        assert!(up.bringup.is_none());
        assert!(!up.report.converged);
        assert!(!up.report.unreachable.is_empty());
    }

    #[test]
    fn bringup_is_deterministic() {
        let physical = IrregularConfig::paper(8, 9).generate().unwrap();
        let run = || {
            let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
            SubnetManager::new(RoutingConfig::two_options())
                .initialize(&mut fabric)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report);
        for s in a.topology.switch_ids() {
            assert_eq!(
                a.routing.table(s).linear_view(),
                b.routing.table(s).linear_view()
            );
        }
    }
}
