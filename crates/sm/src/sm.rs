//! The subnet-manager façade: the full bring-up pipeline.

use crate::discovery::{DiscoveredFabric, Discoverer};
use crate::managed::ManagedFabric;
use crate::program::{ProgramReport, Programmer};
use iba_core::IbaError;
use iba_routing::{FaRouting, RoutingConfig};
use iba_topology::Topology;

/// The result of a complete subnet initialization.
pub struct BringUp {
    /// What discovery found.
    pub discovered: DiscoveredFabric,
    /// The fabric graph as the SM sees it (discovery-ordered ids,
    /// physical port numbers).
    pub topology: Topology,
    /// The routes computed and uploaded.
    pub routing: FaRouting,
    /// Programming statistics.
    pub report: ProgramReport,
}

/// The subnet manager.
pub struct SubnetManager {
    routing_config: RoutingConfig,
}

impl SubnetManager {
    /// A subnet manager that will deploy FA routing with the given
    /// configuration.
    pub fn new(routing_config: RoutingConfig) -> SubnetManager {
        SubnetManager { routing_config }
    }

    /// Run the whole pipeline against a fabric: discover every node via
    /// directed-route SMPs, rebuild the graph, assign LID ranges per the
    /// LMC scheme, compute FA routes (up\*/down\* escape + minimal
    /// adaptive options), upload every forwarding table in 64-entry
    /// blocks, and verify by read-back.
    pub fn initialize(&self, fabric: &mut ManagedFabric) -> Result<BringUp, IbaError> {
        let discovered = Discoverer::new().discover(fabric)?;
        let topology = discovered.to_topology()?;
        let routing = FaRouting::build(&topology, self.routing_config)?;
        let report = Programmer::new().program(fabric, &discovered, &routing)?;
        Ok(BringUp {
            discovered,
            topology,
            routing,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topology::IrregularConfig;

    #[test]
    fn full_bringup_discovers_routes_and_programs() {
        let physical = IrregularConfig::paper(16, 6).generate().unwrap();
        let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
        let sm = SubnetManager::new(RoutingConfig::two_options());
        let up = sm.initialize(&mut fabric).unwrap();

        assert_eq!(up.topology.num_switches(), 16);
        assert_eq!(up.topology.num_hosts(), 64);
        assert!(up.report.verified);
        assert_eq!(up.report.switches, 16);
        // The reconstructed fabric supports the same routing guarantees.
        for s in up.topology.switch_ids() {
            for h in up.topology.host_ids() {
                let r = up
                    .routing
                    .route(s, up.routing.dlid(h, true).unwrap())
                    .unwrap();
                if up.topology.host_switch(h) != s {
                    assert!(!r.adaptive.is_empty());
                }
                let _ = r.escape;
            }
        }
        // The whole exchange is accounted for.
        assert_eq!(
            fabric.smps_sent,
            up.discovered.smps_used + up.report.smps_used
        );
    }

    #[test]
    fn bringup_is_deterministic() {
        let physical = IrregularConfig::paper(8, 9).generate().unwrap();
        let run = || {
            let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
            SubnetManager::new(RoutingConfig::two_options())
                .initialize(&mut fabric)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report);
        for s in a.topology.switch_ids() {
            assert_eq!(
                a.routing.table(s).linear_view(),
                b.routing.table(s).linear_view()
            );
        }
    }
}
