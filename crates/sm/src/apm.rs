//! LMC partitioning for Automatic Path Migration (§4.1).
//!
//! The paper notes that some of a destination's 2^LMC addresses "may be
//! required to provide fault-tolerant paths by the Automatic Path
//! Migration (APM) method defined in the specs. However, the entire set
//! of paths can be divided (by using separate bits in the LMC) to allow
//! the coexistence of both mechanisms" — with the footnote that "the
//! subnet manager should guarantee that the APM mechanism uses different
//! LIDs from those used for adaptive routing".
//!
//! [`ApmPlan`] implements exactly that split: the top LMC bit selects
//! between the *adaptive-routing half* (offset 0 = deterministic escape,
//! offsets 1..2^(m−1)−1 = adaptive options) and the *APM half*, whose
//! addresses are programmed with an **alternate deterministic path** —
//! up\*/down\* rebuilt from a secondary root, giving each destination a
//! second, independently deadlock-free path a CA can migrate to.

use iba_core::{HostId, IbaError, Lid, LidMap, PortIndex, SwitchId};
use iba_routing::{RoutingConfig, UpDownRouting};
use iba_topology::Topology;

/// The coexistence plan: address-range split plus the alternate routing.
#[derive(Clone, Debug)]
pub struct ApmPlan {
    lid_map: LidMap,
    /// Offsets below this belong to adaptive routing; at or above, APM.
    apm_base_offset: u16,
    primary_root: SwitchId,
    alternate: UpDownRouting,
}

impl ApmPlan {
    /// Build the plan for `topo`. `routing_config` describes the adaptive
    /// half (its `table_options` count); the total LMC doubles it to make
    /// room for the APM half. The alternate paths use up\*/down\* rooted
    /// at the switch *farthest* from the primary root, maximizing path
    /// independence.
    pub fn build(
        topo: &Topology,
        routing_config: &RoutingConfig,
        primary: &UpDownRouting,
    ) -> Result<ApmPlan, IbaError> {
        let adaptive_half = routing_config.table_options;
        if !adaptive_half.is_power_of_two() {
            return Err(IbaError::InvalidOptionCount(adaptive_half));
        }
        let total = adaptive_half
            .checked_mul(2)
            .ok_or(IbaError::InvalidOptionCount(adaptive_half))?;
        let lid_map = LidMap::for_options(topo.num_hosts() as u16, total)?;
        let primary_root = primary.root();
        // Secondary root: farthest from the primary (ties to lowest id).
        let dist = topo.distances_from(primary_root);
        let alt_root = topo
            .switch_ids()
            .max_by_key(|s| (dist[s.index()], std::cmp::Reverse(s.0)))
            .ok_or_else(|| IbaError::InvalidTopology("empty topology".into()))?;
        let alternate = UpDownRouting::build_with_root(topo, alt_root)?;
        Ok(ApmPlan {
            lid_map,
            apm_base_offset: adaptive_half,
            primary_root,
            alternate,
        })
    }

    /// The combined LID map (covering both halves).
    pub fn lid_map(&self) -> &LidMap {
        &self.lid_map
    }

    /// The alternate (APM) routing layer.
    pub fn alternate(&self) -> &UpDownRouting {
        &self.alternate
    }

    /// The primary up\*/down\* root the plan was derived against.
    pub fn primary_root(&self) -> SwitchId {
        self.primary_root
    }

    /// First offset of the APM half.
    pub fn apm_base_offset(&self) -> u16 {
        self.apm_base_offset
    }

    /// The primary (APM-inactive) DLID of `host` — its deterministic
    /// address in the adaptive half.
    pub fn primary_lid(&self, host: HostId) -> Result<Lid, IbaError> {
        self.lid_map.lid_for(host, 0)
    }

    /// The alternate DLID a CA migrates to on path failure.
    pub fn alternate_lid(&self, host: HostId) -> Result<Lid, IbaError> {
        self.lid_map.lid_for(host, self.apm_base_offset)
    }

    /// Whether a LID belongs to the APM half.
    pub fn is_apm_lid(&self, lid: Lid) -> Result<bool, IbaError> {
        Ok(self.lid_map.offset_of(lid)? >= self.apm_base_offset)
    }

    /// The forwarding-table entry for `(switch, offset)` towards `host`:
    /// what the subnet manager programs at address `base(host) + offset`.
    ///
    /// Adaptive-half offsets are the caller's business (escape/adaptive
    /// options from [`iba_routing::FaRouting`]); APM-half offsets all get
    /// the alternate up\*/down\* hop.
    pub fn apm_entry(
        &self,
        topo: &Topology,
        s: SwitchId,
        host: HostId,
    ) -> Result<PortIndex, IbaError> {
        let t = topo.host_switch(host);
        if t == s {
            let (_, port) = topo.host_attachment(host);
            return Ok(port);
        }
        self.alternate
            .next_hop(s, t)
            .ok_or_else(|| IbaError::RoutingFailed(format!("no alternate hop {s}→{t}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topology::{regular, IrregularConfig};

    fn setup(n: usize, seed: u64) -> (Topology, UpDownRouting, ApmPlan) {
        let topo = IrregularConfig::paper(n, seed).generate().unwrap();
        let primary = UpDownRouting::build(&topo).unwrap();
        let plan = ApmPlan::build(&topo, &RoutingConfig::two_options(), &primary).unwrap();
        (topo, primary, plan)
    }

    #[test]
    fn lmc_doubles_to_fit_both_halves() {
        let (_, _, plan) = setup(8, 1);
        // 2 adaptive-half addresses + 2 APM-half addresses → LMC 2.
        assert_eq!(plan.lid_map().lmc().bits(), 2);
        assert_eq!(plan.apm_base_offset(), 2);
    }

    #[test]
    fn halves_are_disjoint_lid_ranges() {
        let (topo, _, plan) = setup(16, 2);
        for h in topo.host_ids() {
            let primary = plan.primary_lid(h).unwrap();
            let alt = plan.alternate_lid(h).unwrap();
            assert_ne!(primary, alt);
            assert!(!plan.is_apm_lid(primary).unwrap());
            assert!(plan.is_apm_lid(alt).unwrap());
            // Both resolve to the same physical port.
            assert_eq!(plan.lid_map().host_of(primary).unwrap(), h);
            assert_eq!(plan.lid_map().host_of(alt).unwrap(), h);
        }
    }

    #[test]
    fn alternate_root_differs_and_is_far() {
        let (topo, primary, plan) = setup(32, 3);
        assert_ne!(plan.alternate().root(), primary.root());
        let dist = topo.distances_from(primary.root());
        // The alternate root is at the primary root's eccentricity.
        let ecc = dist.iter().max().unwrap();
        assert_eq!(dist[plan.alternate().root().index()], *ecc);
    }

    #[test]
    fn alternate_paths_reach_every_destination() {
        let (topo, _, plan) = setup(16, 4);
        for s in topo.switch_ids() {
            for h in topo.host_ids() {
                // Walk the alternate chain.
                let mut cur = s;
                let mut hops = 0;
                loop {
                    let port = plan.apm_entry(&topo, cur, h).unwrap();
                    match topo.endpoint(cur, port).unwrap().node {
                        iba_core::NodeRef::Host(reached) => {
                            assert_eq!(reached, h);
                            break;
                        }
                        iba_core::NodeRef::Switch(next) => {
                            cur = next;
                            hops += 1;
                            assert!(hops <= 2 * topo.num_switches());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn alternate_paths_often_differ_from_primary() {
        // The point of APM: path independence. The two roots give
        // genuinely different trees; count differing first hops.
        let (topo, primary, plan) = setup(32, 5);
        let mut differ = 0;
        let mut total = 0;
        for s in topo.switch_ids() {
            for t in topo.switch_ids() {
                if s == t {
                    continue;
                }
                total += 1;
                if primary.next_hop(s, t) != plan.alternate().next_hop(s, t) {
                    differ += 1;
                }
            }
        }
        assert!(
            differ * 5 > total,
            "expected >20% of pairs to use a different first hop ({differ}/{total})"
        );
    }

    #[test]
    fn works_on_regular_shapes() {
        let topo = regular::torus2d(3, 3, 2).unwrap();
        let primary = UpDownRouting::build(&topo).unwrap();
        let plan = ApmPlan::build(&topo, &RoutingConfig::with_options(4), &primary).unwrap();
        assert_eq!(plan.lid_map().lmc().bits(), 3); // 4 + 4 addresses
        assert_eq!(plan.apm_base_offset(), 4);
    }
}
