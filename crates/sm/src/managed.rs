//! The managed fabric: switch-resident management agents.
//!
//! [`ManagedFabric`] wraps a [`Topology`] and gives every switch the
//! state a subnet manager can see and change — GUID, management LID,
//! linear forwarding table, SLtoVL table — reachable *only* through
//! directed-route SMPs ([`ManagedFabric::send`]). The discovery and
//! programming layers never touch the topology object directly; they
//! must learn and configure everything through this interface, exactly
//! like a real SM.

use crate::mad::{DirectedRoute, NodeKind, PortState, Smp, SmpAttribute, SmpMethod, SmpResponse};
use iba_core::{Lid, NodeRef, ServiceLevel as Sl, SwitchId};
use iba_engine::rng::StreamKind;
use iba_engine::StreamRng;
use iba_routing::{InterleavedForwardingTable, SlToVlTable};
use iba_topology::Topology;

/// Entries per linear-forwarding-table block (spec value).
pub const LFT_BLOCK: usize = 64;

/// One switch's management agent state.
#[derive(Debug)]
pub struct ManagedSwitch {
    /// Stable globally unique id.
    pub guid: u64,
    /// Management LID assigned by the SM (0 until assigned).
    pub lid: Lid,
    /// The linear forwarding table (interleaved internally when the
    /// switch is an enhanced one; the SM cannot tell the difference —
    /// that is the point of §4.1).
    pub lft: InterleavedForwardingTable,
    /// The SLtoVL mapping table (§4.4).
    pub sl2vl: SlToVlTable,
    /// SMPs this agent has processed (diagnostics).
    pub smps_processed: u64,
}

/// A topology whose switches are reachable through SMPs.
pub struct ManagedFabric<'a> {
    topo: &'a Topology,
    /// The switch the SM is attached to (via its first host).
    sm_switch: SwitchId,
    switches: Vec<ManagedSwitch>,
    /// Per-switch, per-port failed-link overlay: `true` masks a wired
    /// port as dead. Both the SMP transport (directed routes cannot
    /// cross a dead link) and `PortInfo` (reports `Down`, so a re-sweep
    /// discovers the degraded fabric) consult it.
    down: Vec<Vec<bool>>,
    /// Per-switch, per-port *silent* failure overlay: the link reports
    /// trained (`PortInfo` says `Up`) but eats every SMP that tries to
    /// cross it — a misbehaving link the SM can only detect by timeout.
    silent: Vec<Vec<bool>>,
    /// Probability that any one SMP exchange is lost (request or reply;
    /// the SM cannot tell which). `0.0` disables the draw entirely.
    smp_loss: f64,
    /// RNG for the loss draws; `None` until armed.
    smp_rng: Option<StreamRng>,
    /// Total SMPs transported.
    pub smps_sent: u64,
}

/// GUIDs are derived from switch ids with a fixed mix so they look
/// opaque to discovery (which must not assume density or order).
fn guid_of(s: SwitchId) -> u64 {
    (s.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
        ^ 0xABCD_EF01_2345_6789
}

/// GUID of a host port.
fn host_guid(h: iba_core::HostId) -> u64 {
    (h.0 as u64)
        .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        .rotate_left(29)
        ^ 0x1357_9BDF_2468_ACE0
}

impl<'a> ManagedFabric<'a> {
    /// Wrap `topo` with fresh (unprogrammed) agents. The SM console is
    /// attached to the switch of host 0; `lft_fanout` is the interleave
    /// factor of the enhanced switches (2^LMC).
    pub fn new(topo: &'a Topology, lft_fanout: u16) -> Result<Self, iba_core::IbaError> {
        let table_len = 48 * 1024; // spec: LFT covers unicast LID space
        let switches = topo
            .switch_ids()
            .map(|s| {
                Ok(ManagedSwitch {
                    guid: guid_of(s),
                    lid: Lid(0),
                    lft: InterleavedForwardingTable::new(table_len, lft_fanout)?,
                    // Power-on default: everything on VL0 until programmed.
                    sl2vl: SlToVlTable::identity(topo.ports_per_switch(), 1)?,
                    smps_processed: 0,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let down: Vec<Vec<bool>> = topo
            .switch_ids()
            .map(|_| vec![false; topo.ports_per_switch() as usize])
            .collect();
        Ok(ManagedFabric {
            topo,
            sm_switch: topo.host_switch(iba_core::HostId(0)),
            switches,
            silent: down.clone(),
            down,
            smp_loss: 0.0,
            smp_rng: None,
            smps_sent: 0,
        })
    }

    /// Arm random VL15 loss: every subsequent [`Self::send`] is dropped
    /// with probability `loss` (reported as [`SmpResponse::Timeout`]).
    /// The draw stream is derived from `seed`, so a sweep over a lossy
    /// fabric is reproducible. `loss = 0.0` disarms the hook and
    /// consumes no draws.
    pub fn set_smp_faults(&mut self, loss: f64, seed: u64) -> Result<(), iba_core::IbaError> {
        if !(0.0..=1.0).contains(&loss) {
            return Err(iba_core::IbaError::InvalidConfig(format!(
                "SMP loss probability {loss} outside [0, 1]"
            )));
        }
        self.smp_loss = loss;
        self.smp_rng = (loss > 0.0)
            .then(|| StreamRng::from_seed(seed).derive(StreamKind::Custom(0x5713_7F00)));
        Ok(())
    }

    /// Fail the physical link between switches `a` and `b`: SMPs can no
    /// longer cross it and both ends report [`PortState::Down`] — exactly
    /// what the SM observes after a cable pull. Agent state (LFTs,
    /// SLtoVL) is untouched; only a re-sweep reprograms it. Errors when
    /// the topology has no such link.
    pub fn fail_link(&mut self, a: SwitchId, b: SwitchId) -> Result<(), iba_core::IbaError> {
        let (pa, pb) = self.link_ports(a, b)?;
        self.down[a.index()][pa.index()] = true;
        self.down[b.index()][pb.index()] = true;
        Ok(())
    }

    /// Undo [`Self::fail_link`] for the link between `a` and `b`.
    pub fn restore_link(&mut self, a: SwitchId, b: SwitchId) -> Result<(), iba_core::IbaError> {
        let (pa, pb) = self.link_ports(a, b)?;
        self.down[a.index()][pa.index()] = false;
        self.down[b.index()][pb.index()] = false;
        Ok(())
    }

    /// Fail the link between `a` and `b` *silently*: both ends still
    /// report [`PortState::Up`], but no SMP crosses. This is the nasty
    /// failure mode — the SM sees a trained link whose peer never
    /// answers, and can only conclude partition after its retries are
    /// exhausted.
    pub fn fail_link_silent(&mut self, a: SwitchId, b: SwitchId) -> Result<(), iba_core::IbaError> {
        let (pa, pb) = self.link_ports(a, b)?;
        self.silent[a.index()][pa.index()] = true;
        self.silent[b.index()][pb.index()] = true;
        Ok(())
    }

    /// Undo [`Self::fail_link_silent`] for the link between `a` and `b`.
    pub fn restore_link_silent(
        &mut self,
        a: SwitchId,
        b: SwitchId,
    ) -> Result<(), iba_core::IbaError> {
        let (pa, pb) = self.link_ports(a, b)?;
        self.silent[a.index()][pa.index()] = false;
        self.silent[b.index()][pb.index()] = false;
        Ok(())
    }

    fn link_ports(
        &self,
        a: SwitchId,
        b: SwitchId,
    ) -> Result<(iba_core::PortIndex, iba_core::PortIndex), iba_core::IbaError> {
        let n = self.topo.num_switches();
        if a.index() >= n || b.index() >= n {
            return Err(iba_core::IbaError::InvalidConfig(format!(
                "switch out of range (topology has {n} switches)"
            )));
        }
        match (self.topo.port_towards(a, b), self.topo.port_towards(b, a)) {
            (Some(pa), Some(pb)) => Ok((pa, pb)),
            _ => Err(iba_core::IbaError::InvalidConfig(format!(
                "no link {a}–{b} in the topology"
            ))),
        }
    }

    /// The switch the SM is attached to.
    pub fn sm_switch(&self) -> SwitchId {
        self.sm_switch
    }

    /// Read access to an agent (for verification in tests/reports).
    pub fn agent(&self, s: SwitchId) -> &ManagedSwitch {
        &self.switches[s.index()]
    }

    /// Walk a directed route from the SM switch. `Ok` holds the final
    /// node; the error distinguishes a route that fell off the fabric
    /// (answered `BadRoute`) from one that crossed a silently-failed
    /// link (answered by nothing at all — a `Timeout`).
    fn walk(&self, route: &DirectedRoute) -> Result<NodeRef, SmpResponse> {
        let mut cur = NodeRef::Switch(self.sm_switch);
        for &port in &route.hops {
            let NodeRef::Switch(sw) = cur else {
                return Err(SmpResponse::BadRoute); // tried to hop out of a host
            };
            if port.index() >= self.topo.ports_per_switch() as usize {
                return Err(SmpResponse::BadRoute);
            }
            if self.down[sw.index()][port.index()] {
                return Err(SmpResponse::BadRoute); // failed link: nothing crosses
            }
            if self.silent[sw.index()][port.index()] {
                return Err(SmpResponse::Timeout); // trained link that eats SMPs
            }
            let Some(ep) = self.topo.endpoint(sw, port) else {
                return Err(SmpResponse::BadRoute); // down port
            };
            cur = ep.node;
        }
        Ok(cur)
    }

    /// Transport and process one SMP, returning the response.
    pub fn send(&mut self, smp: &Smp) -> SmpResponse {
        self.smps_sent += 1;
        if self.smp_loss > 0.0 {
            if let Some(rng) = self.smp_rng.as_mut() {
                if rng.chance(self.smp_loss) {
                    return SmpResponse::Timeout; // lost on VL15, silently
                }
            }
        }
        let target = match self.walk(&smp.route) {
            Ok(node) => node,
            Err(resp) => return resp,
        };
        match target {
            NodeRef::Host(h) => match (&smp.method, &smp.attribute) {
                (SmpMethod::Get, SmpAttribute::NodeInfo) => SmpResponse::NodeInfo {
                    kind: NodeKind::Host,
                    guid: host_guid(h),
                },
                _ => SmpResponse::Unsupported,
            },
            NodeRef::Switch(sw) => {
                let ports = self.topo.ports_per_switch();
                let agent = &mut self.switches[sw.index()];
                agent.smps_processed += 1;
                match (&smp.method, &smp.attribute) {
                    (SmpMethod::Get, SmpAttribute::NodeInfo) => SmpResponse::NodeInfo {
                        kind: NodeKind::Switch { ports },
                        guid: agent.guid,
                    },
                    (SmpMethod::Get, SmpAttribute::PortInfo { port }) => {
                        if port.index() >= ports as usize {
                            SmpResponse::Unsupported
                        } else if self.down[sw.index()][port.index()] {
                            SmpResponse::PortInfo {
                                state: PortState::Down,
                            }
                        } else if self.topo.endpoint(sw, *port).is_some() {
                            SmpResponse::PortInfo {
                                state: PortState::Up,
                            }
                        } else {
                            SmpResponse::PortInfo {
                                state: PortState::Down,
                            }
                        }
                    }
                    (SmpMethod::Set, SmpAttribute::SwitchInfo { lid }) => {
                        agent.lid = *lid;
                        SmpResponse::Ok
                    }
                    (SmpMethod::Set, SmpAttribute::LinearForwardingTable { block, entries }) => {
                        let base = *block as usize * LFT_BLOCK;
                        // Validate the whole block before touching the
                        // table: a rejected SMP must leave the agent
                        // unchanged (atomic apply). Applying entry by
                        // entry and bailing mid-block would leave the
                        // LFT half-written — and the SM, seeing the
                        // rejection, would never know which half.
                        let bad = entries.iter().enumerate().take(LFT_BLOCK).any(|(i, e)| {
                            e.is_some_and(|p| {
                                base + i >= agent.lft.len() || p.index() >= ports as usize
                            })
                        });
                        if bad {
                            return SmpResponse::Unsupported;
                        }
                        for (i, entry) in entries.iter().enumerate().take(LFT_BLOCK) {
                            if let Some(port) = entry {
                                // Infallible after validation; a failure
                                // here would be an agent bug.
                                if agent.lft.set(Lid((base + i) as u16), *port).is_err() {
                                    return SmpResponse::Unsupported;
                                }
                            }
                        }
                        SmpResponse::Ok
                    }
                    (SmpMethod::Get, SmpAttribute::LinearForwardingTable { block, .. }) => {
                        let base = *block as usize * LFT_BLOCK;
                        let entries = (0..LFT_BLOCK)
                            .map(|i| agent.lft.get(Lid((base + i) as u16)))
                            .collect();
                        SmpResponse::LftBlock { entries }
                    }
                    (SmpMethod::Set, SmpAttribute::SlToVlMappingTable { input, output, vls }) => {
                        if vls.len() != Sl::COUNT {
                            return SmpResponse::Unsupported;
                        }
                        for (sl, vl) in vls.iter().enumerate() {
                            if agent.sl2vl.set(*input, *output, Sl(sl as u8), *vl).is_err() {
                                return SmpResponse::Unsupported;
                            }
                        }
                        SmpResponse::Ok
                    }
                    _ => SmpResponse::Unsupported,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{PortIndex, ServiceLevel};
    use iba_topology::regular;

    fn smp(method: SmpMethod, attribute: SmpAttribute, route: DirectedRoute) -> Smp {
        Smp {
            method,
            attribute,
            route,
            tid: 0,
            sl: ServiceLevel(0),
        }
    }

    #[test]
    fn nodeinfo_of_local_switch() {
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::NodeInfo,
            DirectedRoute::local(),
        ));
        let SmpResponse::NodeInfo { kind, guid } = resp else {
            panic!("unexpected response {resp:?}");
        };
        assert_eq!(kind, NodeKind::Switch { ports: 3 });
        assert_eq!(guid, fab.agent(fab.sm_switch()).guid);
    }

    #[test]
    fn directed_route_reaches_neighbors_and_hosts() {
        let topo = regular::ring(4, 1).unwrap();
        let sm_sw = topo.host_switch(iba_core::HostId(0));
        let (port, peer, _) = topo.switch_neighbors(sm_sw).next().unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::NodeInfo,
            DirectedRoute::local().then(port),
        ));
        let SmpResponse::NodeInfo { kind, guid } = resp else {
            panic!();
        };
        assert_eq!(kind, NodeKind::Switch { ports: 3 });
        assert_eq!(guid, fab.agent(peer).guid);
        // Host port.
        let (hport, _) = topo.attached_hosts(sm_sw).next().unwrap();
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::NodeInfo,
            DirectedRoute::local().then(hport),
        ));
        assert!(matches!(
            resp,
            SmpResponse::NodeInfo {
                kind: NodeKind::Host,
                ..
            }
        ));
    }

    #[test]
    fn bad_routes_are_rejected() {
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        // Port number beyond the switch.
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::NodeInfo,
            DirectedRoute::local().then(PortIndex(99)),
        ));
        assert_eq!(resp, SmpResponse::BadRoute);
        // Routing through a host.
        let (hport, _) = topo.attached_hosts(fab.sm_switch()).next().unwrap();
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::NodeInfo,
            DirectedRoute::local().then(hport).then(PortIndex(0)),
        ));
        assert_eq!(resp, SmpResponse::BadRoute);
    }

    #[test]
    fn lft_blocks_write_and_read_back() {
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let mut entries = vec![None; LFT_BLOCK];
        entries[5] = Some(PortIndex(2));
        entries[6] = Some(PortIndex(1));
        let resp = fab.send(&smp(
            SmpMethod::Set,
            SmpAttribute::LinearForwardingTable { block: 1, entries },
            DirectedRoute::local(),
        ));
        assert_eq!(resp, SmpResponse::Ok);
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::LinearForwardingTable {
                block: 1,
                entries: vec![],
            },
            DirectedRoute::local(),
        ));
        let SmpResponse::LftBlock { entries } = resp else {
            panic!();
        };
        assert_eq!(entries[5], Some(PortIndex(2)));
        assert_eq!(entries[6], Some(PortIndex(1)));
        assert_eq!(entries[7], None);
        // The write landed at linear addresses 69/70 of the agent table.
        assert_eq!(
            fab.agent(fab.sm_switch()).lft.get(Lid(69)),
            Some(PortIndex(2))
        );
    }

    #[test]
    fn rejected_lft_block_leaves_agent_untouched() {
        // Regression: a block with a bad entry in the *middle* used to be
        // applied entry by entry, leaving the leading half written when
        // the agent bailed. The apply must be atomic.
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let mut entries = vec![None; LFT_BLOCK];
        entries[0] = Some(PortIndex(1));
        entries[1] = Some(PortIndex(2));
        entries[2] = Some(PortIndex(99)); // out of range for a 3-port switch
        entries[3] = Some(PortIndex(0));
        let resp = fab.send(&smp(
            SmpMethod::Set,
            SmpAttribute::LinearForwardingTable { block: 0, entries },
            DirectedRoute::local(),
        ));
        assert_eq!(resp, SmpResponse::Unsupported);
        // Nothing before (or after) the bad entry landed.
        let agent = fab.agent(fab.sm_switch());
        for lid in 0..LFT_BLOCK as u16 {
            assert_eq!(agent.lft.get(Lid(lid)), None, "lid {lid} half-written");
        }
        // An out-of-table block number is rejected outright. Before the
        // address validation, `(base + i) as u16` could wrap a huge
        // block number back into the table and silently clobber LID 0.
        let len = fab.agent(fab.sm_switch()).lft.len();
        let wrapping_block = (65536 / LFT_BLOCK) as u32; // base 65536 → wraps to 0
        assert!(wrapping_block as usize * LFT_BLOCK >= len);
        let mut entries = vec![None; LFT_BLOCK];
        entries[0] = Some(PortIndex(1));
        let resp = fab.send(&smp(
            SmpMethod::Set,
            SmpAttribute::LinearForwardingTable {
                block: wrapping_block,
                entries,
            },
            DirectedRoute::local(),
        ));
        assert_eq!(resp, SmpResponse::Unsupported);
        assert_eq!(
            fab.agent(fab.sm_switch()).lft.get(Lid(0)),
            None,
            "wrapped block write clobbered LID 0"
        );
    }

    #[test]
    fn port_info_reports_link_state() {
        // Ring switches have 3 ports: 2 links + 1 host — all up; a chain
        // end has a down port.
        let topo = regular::chain(2, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let mut states = Vec::new();
        for p in 0..3 {
            let resp = fab.send(&smp(
                SmpMethod::Get,
                SmpAttribute::PortInfo { port: PortIndex(p) },
                DirectedRoute::local(),
            ));
            let SmpResponse::PortInfo { state } = resp else {
                panic!();
            };
            states.push(state);
        }
        assert!(
            states.contains(&PortState::Down),
            "chain end must have a down port"
        );
        assert!(states.contains(&PortState::Up));
    }

    #[test]
    fn sl2vl_rows_program_through_smps() {
        use iba_core::VirtualLane;
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let vls: Vec<VirtualLane> = (0..16).map(|sl| VirtualLane(sl % 2)).collect();
        let resp = fab.send(&smp(
            SmpMethod::Set,
            SmpAttribute::SlToVlMappingTable {
                input: PortIndex(0),
                output: PortIndex(1),
                vls: vls.clone(),
            },
            DirectedRoute::local(),
        ));
        assert_eq!(resp, SmpResponse::Ok);
        let agent = fab.agent(fab.sm_switch());
        assert_eq!(
            agent
                .sl2vl
                .vl_for(PortIndex(0), PortIndex(1), iba_core::ServiceLevel(3)),
            VirtualLane(1)
        );
        // Unprogrammed rows keep the power-on default (VL0).
        assert_eq!(
            agent
                .sl2vl
                .vl_for(PortIndex(1), PortIndex(0), iba_core::ServiceLevel(3)),
            VirtualLane(0)
        );
        // Short rows are rejected.
        let resp = fab.send(&smp(
            SmpMethod::Set,
            SmpAttribute::SlToVlMappingTable {
                input: PortIndex(0),
                output: PortIndex(1),
                vls: vec![VirtualLane(0); 3],
            },
            DirectedRoute::local(),
        ));
        assert_eq!(resp, SmpResponse::Unsupported);
    }

    #[test]
    fn failed_links_block_smps_and_report_down() {
        let topo = regular::ring(4, 1).unwrap();
        let sm_sw = topo.host_switch(iba_core::HostId(0));
        let (port, peer, _) = topo.switch_neighbors(sm_sw).next().unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        fab.fail_link(sm_sw, peer).unwrap();
        // The directed route over the dead link falls off the fabric...
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::NodeInfo,
            DirectedRoute::local().then(port),
        ));
        assert_eq!(resp, SmpResponse::BadRoute);
        // ...and PortInfo on the local end reports Down.
        let resp = fab.send(&smp(
            SmpMethod::Get,
            SmpAttribute::PortInfo { port },
            DirectedRoute::local(),
        ));
        assert_eq!(
            resp,
            SmpResponse::PortInfo {
                state: PortState::Down
            }
        );
        // Restoring the link brings both back.
        fab.restore_link(sm_sw, peer).unwrap();
        assert!(matches!(
            fab.send(&smp(
                SmpMethod::Get,
                SmpAttribute::NodeInfo,
                DirectedRoute::local().then(port),
            )),
            SmpResponse::NodeInfo { .. }
        ));
        // Unknown links are rejected.
        assert!(fab.fail_link(sm_sw, sm_sw).is_err());
        assert!(fab.fail_link(SwitchId(99), peer).is_err());
    }

    #[test]
    fn guids_are_distinct() {
        let topo = regular::ring(8, 1).unwrap();
        let fab = ManagedFabric::new(&topo, 2).unwrap();
        let mut guids: Vec<u64> = topo.switch_ids().map(|s| fab.agent(s).guid).collect();
        guids.sort();
        guids.dedup();
        assert_eq!(guids.len(), 8);
    }
}
