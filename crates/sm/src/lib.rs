//! # iba-sm
//!
//! A model of the IBA **subnet manager** — the entity the paper charges
//! with deploying its mechanism: "Forwarding tables are filled by the
//! subnet manager at initialization time... once the different routing
//! choices have been computed for a given destination port, the subnet
//! manager stores them in a range of addresses of the forwarding tables,
//! as if they were different destinations" (§4.1).
//!
//! The crate models subnet bring-up the way the spec shapes it:
//!
//! * [`mad`] — simplified subnet-management packets (SMPs) with
//!   *directed-route* addressing: before LIDs exist, the SM steers a
//!   packet by listing the output port to take at each hop;
//! * [`managed`] — the switch-resident management agent: a port-count,
//!   a GUID, an LFT and an SLtoVL table that only change through SMPs;
//! * [`discovery`] — the breadth-first directed-route sweep that
//!   reconstructs the fabric graph purely through `SubnGet(NodeInfo)` /
//!   `SubnGet(PortInfo)` exchanges;
//! * [`program`] — LID assignment and forwarding-table upload in the
//!   spec's 64-entry linear-forwarding-table blocks, from an
//!   [`iba_routing::FaRouting`] path computation;
//! * [`retry`] — reliable SMP delivery over the spec's best-effort
//!   VL15: bounded retransmit with exponential backoff, per-sweep retry
//!   budgets, and partition reporting when every retry is exhausted;
//! * [`apm`] — the §4.1 coexistence scheme: the LMC address range is
//!   partitioned by a high bit into *adaptive routing options* and
//!   *Automatic Path Migration* alternate paths, so both mechanisms use
//!   disjoint LIDs ("the subnet manager should guarantee that the APM
//!   mechanism uses different LIDs from those used for adaptive
//!   routing").
//!
//! The [`SubnetManager`] façade runs the whole
//! pipeline: discover → assign LIDs → compute routes → program → verify.

#![warn(missing_docs)]

pub mod apm;
pub mod discovery;
pub mod mad;
pub mod managed;
pub mod program;
pub mod retry;
pub mod sm;

pub use apm::ApmPlan;
pub use discovery::{DiscoveredFabric, Discoverer, RobustDiscovery};
pub use mad::{DirectedRoute, Smp, SmpAttribute, SmpMethod, SmpResponse};
pub use managed::{ManagedFabric, ManagedSwitch};
pub use program::{ProgramReport, Programmer, RobustProgram};
pub use retry::{ReliableSender, RetryPolicy, RetryStats, SendOutcome};
pub use sm::{
    BringUp, Resweep, RobustBringUp, RobustResweep, SubnetManager, SweepPhases, SweepReport,
};
