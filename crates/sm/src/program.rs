//! Forwarding-table programming.
//!
//! Once routes are computed, the subnet manager uploads every switch's
//! linear forwarding table in the spec's 64-entry blocks — one
//! `SubnSet(LinearForwardingTable)` per dirty block, sent along the
//! directed route discovery recorded. §4.1's compatibility promise is
//! exercised literally here: the SM writes a *linear* table; whether the
//! switch stores it interleaved (enhanced switch) or flat (plain switch)
//! is invisible at this interface.

use crate::discovery::DiscoveredFabric;
use crate::mad::{DirectedRoute, Smp, SmpAttribute, SmpMethod, SmpResponse};
use crate::managed::{ManagedFabric, LFT_BLOCK};
use crate::retry::{ReliableSender, SendOutcome};
use iba_core::{IbaError, Lid, PortIndex, ServiceLevel, SwitchId, VirtualLane};
use iba_routing::{EscapeEngine, FaRouting};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome of a programming pass.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramReport {
    /// Switches programmed.
    pub switches: usize,
    /// Non-empty LFT blocks the routing tables contain (written + skipped
    /// as already up to date on the switch).
    pub blocks_total: u64,
    /// LFT blocks actually written.
    pub blocks_written: u64,
    /// SLtoVL rows written.
    pub sl2vl_rows_written: u64,
    /// SMPs spent (writes + verification reads).
    pub smps_used: u64,
    /// Whether read-back verification matched everything written.
    pub verified: bool,
}

impl ProgramReport {
    /// Export this programming pass into `reg`. Every counter here is a
    /// deterministic function of the tables being uploaded and the
    /// programmer's dirty-block shadow.
    pub fn record_metrics(&self, reg: &mut iba_stats::MetricsRegistry) {
        reg.add("iba_sm_program_switches_total", &[], self.switches as u64);
        reg.add("iba_sm_program_blocks_total", &[], self.blocks_total);
        reg.add(
            "iba_sm_program_blocks_written_total",
            &[],
            self.blocks_written,
        );
        reg.add(
            "iba_sm_program_sl2vl_rows_total",
            &[],
            self.sl2vl_rows_written,
        );
        reg.add("iba_sm_program_smps_total", &[], self.smps_used);
        if self.verified {
            reg.add("iba_sm_program_verified_total", &[], 1);
        }
    }
}

/// What the programmer remembers about one switch across passes, keyed
/// by GUID. Only state whose upload was *verified delivered* is
/// recorded, so a lost or rejected write is always retried on the next
/// pass.
#[derive(Debug, Default)]
struct SwitchShadow {
    /// Content hash per LFT block number, as last verified on-switch.
    block_hashes: HashMap<u32, u64>,
    /// The SLtoVL identity grid has been fully programmed.
    sl2vl_done: bool,
    /// Management LID confirmed set.
    mgmt_lid: Option<Lid>,
}

/// Content hash of one LFT block (order-sensitive FNV-1a over the
/// entries; `None` gets its own sentinel so clearing an entry dirties
/// the block).
fn block_hash(entries: &[Option<PortIndex>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for e in entries {
        let byte = match e {
            None => 0x100u64,
            Some(p) => p.0 as u64,
        };
        h ^= byte;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The programming engine.
///
/// A `Programmer` is stateful across passes: it shadows, per switch
/// GUID, the hash of every LFT block it has verifiably uploaded plus
/// the SLtoVL/management-LID bring-up state. Re-programming through the
/// *same* `Programmer` therefore uploads only the blocks that changed —
/// the dirty-block diff that makes an incremental re-sweep cheap. A
/// fresh `Programmer` has an empty shadow and uploads everything.
pub struct Programmer {
    tid: u64,
    shadow: HashMap<u64, SwitchShadow>,
}

impl Programmer {
    /// Fresh engine.
    pub fn new() -> Programmer {
        Programmer {
            tid: 0,
            shadow: HashMap::new(),
        }
    }

    /// Forget everything shadowed: the next pass uploads every block.
    pub fn forget(&mut self) {
        self.shadow.clear();
    }

    fn block_clean(&self, guid: u64, block: u32, hash: u64) -> bool {
        self.shadow
            .get(&guid)
            .and_then(|s| s.block_hashes.get(&block))
            == Some(&hash)
    }

    fn record_block(&mut self, guid: u64, block: u32, hash: u64) {
        self.shadow
            .entry(guid)
            .or_default()
            .block_hashes
            .insert(block, hash);
    }

    fn smp(&mut self, method: SmpMethod, attribute: SmpAttribute, route: DirectedRoute) -> Smp {
        self.tid += 1;
        Smp {
            method,
            attribute,
            route,
            tid: self.tid,
            sl: ServiceLevel(0),
        }
    }

    /// Upload `routing`'s tables (computed on the *discovery-ordered*
    /// topology) onto the physical switches of `fabric`, then verify by
    /// reading every written block back.
    pub fn program<E: EscapeEngine>(
        &mut self,
        fabric: &mut ManagedFabric,
        discovered: &DiscoveredFabric,
        routing: &FaRouting<E>,
    ) -> Result<ProgramReport, IbaError> {
        let before = fabric.smps_sent;
        let mut blocks_total = 0u64;
        let mut blocks_written = 0u64;
        let mut sl2vl_rows_written = 0u64;
        let mut verified = true;
        for (i, sw) in discovered.switches.iter().enumerate() {
            let view = routing.table(SwitchId(i as u16)).linear_view();
            for (block, chunk) in view.chunks(LFT_BLOCK).enumerate() {
                if chunk.iter().all(|e| e.is_none()) {
                    continue; // nothing programmed in this block
                }
                blocks_total += 1;
                let hash = block_hash(chunk);
                if self.block_clean(sw.guid, block as u32, hash) {
                    continue; // on-switch content already matches
                }
                let entries: Vec<Option<PortIndex>> = chunk.to_vec();
                let resp = fabric.send(&self.smp(
                    SmpMethod::Set,
                    SmpAttribute::LinearForwardingTable {
                        block: block as u32,
                        entries: entries.clone(),
                    },
                    sw.route.clone(),
                ));
                if resp != SmpResponse::Ok {
                    return Err(IbaError::InvalidConfig(format!(
                        "LFT write rejected at switch {i} block {block}: {resp:?}"
                    )));
                }
                blocks_written += 1;
                // Read back and compare.
                let resp = fabric.send(&self.smp(
                    SmpMethod::Get,
                    SmpAttribute::LinearForwardingTable {
                        block: block as u32,
                        entries: vec![],
                    },
                    sw.route.clone(),
                ));
                let SmpResponse::LftBlock { entries: got } = resp else {
                    return Err(IbaError::InvalidConfig("LFT read-back failed".into()));
                };
                let mut ok = true;
                for (k, want) in entries.iter().enumerate() {
                    if want.is_some() && got.get(k) != Some(want) {
                        ok = false;
                    }
                }
                if ok {
                    self.record_block(sw.guid, block as u32, hash);
                } else {
                    verified = false;
                }
            }
            // Program the identity SLtoVL mapping over one data VL for
            // every (input, output) port pair (§4.4 leaves the SLtoVL
            // machinery in its spec role; the evaluation runs on VL0).
            // The grid never changes, so a shadowed switch skips it.
            let ports = sw.ports.len() as u8;
            if !self.shadow.get(&sw.guid).is_some_and(|s| s.sl2vl_done) {
                let identity: Vec<VirtualLane> = (0..16).map(|_| VirtualLane(0)).collect();
                for input in 0..ports {
                    for output in 0..ports {
                        let resp = fabric.send(&self.smp(
                            SmpMethod::Set,
                            SmpAttribute::SlToVlMappingTable {
                                input: PortIndex(input),
                                output: PortIndex(output),
                                vls: identity.clone(),
                            },
                            sw.route.clone(),
                        ));
                        if resp != SmpResponse::Ok {
                            return Err(IbaError::InvalidConfig("SLtoVL write rejected".into()));
                        }
                        sl2vl_rows_written += 1;
                    }
                }
                self.shadow.entry(sw.guid).or_default().sl2vl_done = true;
            }
            // Assign the switch's management LID (simple dense scheme
            // above the host ranges).
            let mgmt_lid = Lid(routing.lid_map().table_len() as u16 + i as u16);
            if self.shadow.get(&sw.guid).and_then(|s| s.mgmt_lid) != Some(mgmt_lid) {
                let resp = fabric.send(&self.smp(
                    SmpMethod::Set,
                    SmpAttribute::SwitchInfo { lid: mgmt_lid },
                    sw.route.clone(),
                ));
                if resp != SmpResponse::Ok {
                    return Err(IbaError::InvalidConfig("SwitchInfo set failed".into()));
                }
                self.shadow.entry(sw.guid).or_default().mgmt_lid = Some(mgmt_lid);
            }
        }
        Ok(ProgramReport {
            switches: discovered.switches.len(),
            blocks_total,
            blocks_written,
            sl2vl_rows_written,
            smps_used: fabric.smps_sent - before,
            verified,
        })
    }

    /// The loss-tolerant upload: every SMP rides `sender`'s retransmit
    /// loop. A switch that stops answering mid-upload is skipped (its
    /// remaining writes are abandoned and the skip recorded); a spent
    /// sweep budget stops the pass and flags it partial. Agents that
    /// *answer* but reject a write still hard-error — that is a bug,
    /// not a fault.
    pub fn program_robust<E: EscapeEngine>(
        &mut self,
        fabric: &mut ManagedFabric,
        discovered: &DiscoveredFabric,
        routing: &FaRouting<E>,
        sender: &mut ReliableSender,
    ) -> Result<RobustProgram, IbaError> {
        let before = fabric.smps_sent;
        let mut blocks_total = 0u64;
        let mut blocks_written = 0u64;
        let mut sl2vl_rows_written = 0u64;
        let mut verified = true;
        let mut skipped: Vec<String> = Vec::new();
        let mut partial = false;
        'switches: for (i, sw) in discovered.switches.iter().enumerate() {
            // One reusable closure-shaped helper would hide the control
            // flow; the explicit match per site keeps the three exits
            // (ok / skip switch / stop sweep) visible.
            macro_rules! deliver {
                ($smp:expr, $what:expr) => {
                    match sender.send(fabric, &$smp) {
                        SendOutcome::Delivered(resp) => resp,
                        SendOutcome::Unreachable => {
                            skipped.push(format!("switch {i} stopped answering during {}", $what));
                            verified = false;
                            continue 'switches;
                        }
                        SendOutcome::BudgetExhausted => {
                            partial = true;
                            break 'switches;
                        }
                    }
                };
            }
            let view = routing.table(SwitchId(i as u16)).linear_view();
            for (block, chunk) in view.chunks(LFT_BLOCK).enumerate() {
                if chunk.iter().all(|e| e.is_none()) {
                    continue; // nothing programmed in this block
                }
                blocks_total += 1;
                let hash = block_hash(chunk);
                if self.block_clean(sw.guid, block as u32, hash) {
                    continue; // on-switch content already matches
                }
                let entries: Vec<Option<PortIndex>> = chunk.to_vec();
                let smp = self.smp(
                    SmpMethod::Set,
                    SmpAttribute::LinearForwardingTable {
                        block: block as u32,
                        entries: entries.clone(),
                    },
                    sw.route.clone(),
                );
                let resp = deliver!(smp, format!("LFT block {block}"));
                if resp != SmpResponse::Ok {
                    return Err(IbaError::InvalidConfig(format!(
                        "LFT write rejected at switch {i} block {block}: {resp:?}"
                    )));
                }
                blocks_written += 1;
                // Read back and compare.
                let smp = self.smp(
                    SmpMethod::Get,
                    SmpAttribute::LinearForwardingTable {
                        block: block as u32,
                        entries: vec![],
                    },
                    sw.route.clone(),
                );
                let resp = deliver!(smp, format!("LFT read-back of block {block}"));
                let SmpResponse::LftBlock { entries: got } = resp else {
                    return Err(IbaError::InvalidConfig("LFT read-back failed".into()));
                };
                let mut ok = true;
                for (k, want) in entries.iter().enumerate() {
                    if want.is_some() && got.get(k) != Some(want) {
                        ok = false;
                    }
                }
                if ok {
                    self.record_block(sw.guid, block as u32, hash);
                } else {
                    verified = false;
                }
            }
            let ports = sw.ports.len() as u8;
            if !self.shadow.get(&sw.guid).is_some_and(|s| s.sl2vl_done) {
                let identity: Vec<VirtualLane> = (0..16).map(|_| VirtualLane(0)).collect();
                for input in 0..ports {
                    for output in 0..ports {
                        let smp = self.smp(
                            SmpMethod::Set,
                            SmpAttribute::SlToVlMappingTable {
                                input: PortIndex(input),
                                output: PortIndex(output),
                                vls: identity.clone(),
                            },
                            sw.route.clone(),
                        );
                        let resp = deliver!(smp, format!("SLtoVL row {input}->{output}"));
                        if resp != SmpResponse::Ok {
                            return Err(IbaError::InvalidConfig("SLtoVL write rejected".into()));
                        }
                        sl2vl_rows_written += 1;
                    }
                }
                self.shadow.entry(sw.guid).or_default().sl2vl_done = true;
            }
            let mgmt_lid = Lid(routing.lid_map().table_len() as u16 + i as u16);
            if self.shadow.get(&sw.guid).and_then(|s| s.mgmt_lid) != Some(mgmt_lid) {
                let smp = self.smp(
                    SmpMethod::Set,
                    SmpAttribute::SwitchInfo { lid: mgmt_lid },
                    sw.route.clone(),
                );
                let resp = deliver!(smp, "SwitchInfo".to_string());
                if resp != SmpResponse::Ok {
                    return Err(IbaError::InvalidConfig("SwitchInfo set failed".into()));
                }
                self.shadow.entry(sw.guid).or_default().mgmt_lid = Some(mgmt_lid);
            }
        }
        Ok(RobustProgram {
            report: ProgramReport {
                switches: discovered.switches.len() - skipped.len(),
                blocks_total,
                blocks_written,
                sl2vl_rows_written,
                smps_used: fabric.smps_sent - before,
                verified,
            },
            skipped,
            partial,
        })
    }
}

/// What a loss-tolerant programming pass produced.
#[derive(Clone, Debug)]
pub struct RobustProgram {
    /// The usual statistics, over the switches actually programmed.
    pub report: ProgramReport,
    /// Switches abandoned mid-upload (partition report entries).
    pub skipped: Vec<String>,
    /// `true` when the sweep budget ran out before the pass finished.
    pub partial: bool,
}

impl Default for Programmer {
    fn default() -> Self {
        Programmer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::Discoverer;
    use iba_routing::RoutingConfig;
    use iba_topology::IrregularConfig;

    #[test]
    fn programming_uploads_exactly_the_routing_tables() {
        let topo = IrregularConfig::paper(8, 4).generate().unwrap();
        let mut fabric = ManagedFabric::new(&topo, 2).unwrap();
        let discovered = Discoverer::new().discover(&mut fabric).unwrap();
        let rebuilt = discovered.to_topology().unwrap();
        let routing = FaRouting::build(&rebuilt, RoutingConfig::two_options()).unwrap();
        let report = Programmer::new()
            .program(&mut fabric, &discovered, &routing)
            .unwrap();
        assert!(report.verified);
        assert_eq!(report.switches, 8);
        assert!(report.blocks_written > 0);

        // Every agent's table must match the computed table entry-wise
        // over the assigned LID range.
        for (i, sw) in discovered.switches.iter().enumerate() {
            // Map the discovered switch back to its physical agent by
            // GUID (test-side correlation only).
            let agent_sw = topo
                .switch_ids()
                .find(|&s| fabric.agent(s).guid == sw.guid)
                .unwrap();
            let want = routing.table(SwitchId(i as u16)).linear_view();
            for (lid, entry) in want.iter().enumerate() {
                if entry.is_some() {
                    assert_eq!(
                        fabric.agent(agent_sw).lft.get(Lid(lid as u16)),
                        *entry,
                        "switch {i}, lid {lid}"
                    );
                }
            }
            // Management LID assigned.
            assert_ne!(fabric.agent(agent_sw).lid, Lid(0));
        }
    }

    #[test]
    fn reprogramming_through_the_same_programmer_uploads_nothing() {
        let topo = IrregularConfig::paper(8, 4).generate().unwrap();
        let mut fabric = ManagedFabric::new(&topo, 2).unwrap();
        let discovered = Discoverer::new().discover(&mut fabric).unwrap();
        let rebuilt = discovered.to_topology().unwrap();
        let routing = FaRouting::build(&rebuilt, RoutingConfig::two_options()).unwrap();
        let mut programmer = Programmer::new();
        let first = programmer
            .program(&mut fabric, &discovered, &routing)
            .unwrap();
        assert!(first.verified);
        assert_eq!(first.blocks_total, first.blocks_written);

        // Identical content: the shadow makes the second pass free.
        let second = programmer
            .program(&mut fabric, &discovered, &routing)
            .unwrap();
        assert_eq!(second.blocks_written, 0);
        assert_eq!(second.blocks_total, first.blocks_total);
        assert_eq!(second.sl2vl_rows_written, 0);
        assert_eq!(second.smps_used, 0);

        // After forgetting, everything is uploaded again.
        programmer.forget();
        let third = programmer
            .program(&mut fabric, &discovered, &routing)
            .unwrap();
        assert_eq!(third, first);
    }

    #[test]
    fn fresh_programmer_matches_legacy_full_upload() {
        // A stateless pass (fresh engine) is byte-for-byte the old
        // behavior: every non-empty block written.
        let topo = IrregularConfig::paper(8, 9).generate().unwrap();
        let mut fabric = ManagedFabric::new(&topo, 2).unwrap();
        let discovered = Discoverer::new().discover(&mut fabric).unwrap();
        let rebuilt = discovered.to_topology().unwrap();
        let routing = FaRouting::build(&rebuilt, RoutingConfig::two_options()).unwrap();
        let report = Programmer::new()
            .program(&mut fabric, &discovered, &routing)
            .unwrap();
        assert_eq!(report.blocks_total, report.blocks_written);
    }

    #[test]
    fn interleaved_and_flat_agents_program_identically() {
        // §4.1: the SM's byte stream is the same whether the switch
        // stores its LFT flat (fanout 1) or interleaved (fanout 4).
        let topo = IrregularConfig::paper(8, 7).generate().unwrap();
        let mut reports = Vec::new();
        for fanout in [1u16, 4] {
            let mut fabric = ManagedFabric::new(&topo, fanout).unwrap();
            let discovered = Discoverer::new().discover(&mut fabric).unwrap();
            let rebuilt = discovered.to_topology().unwrap();
            let routing = FaRouting::build(&rebuilt, RoutingConfig::with_options(4)).unwrap();
            let report = Programmer::new()
                .program(&mut fabric, &discovered, &routing)
                .unwrap();
            assert!(report.verified, "fanout {fanout}");
            reports.push(report);
        }
        assert_eq!(reports[0].blocks_written, reports[1].blocks_written);
        assert_eq!(reports[0].smps_used, reports[1].smps_used);
    }
}
