//! Reliable SMP delivery: timeout, retransmit, exponential backoff.
//!
//! VL15 is unacknowledged and unbuffered — the spec makes subnet
//! management packets *best effort* and puts the reliability burden on
//! the SM itself. This module is that burden: [`ReliableSender`] wraps
//! [`ManagedFabric::send`] with a bounded retransmit loop. A lost SMP
//! (or a directed route that silently fell off the fabric — the SM
//! cannot tell the difference, nothing answers either way) is retried
//! up to [`RetryPolicy::max_attempts`] times, waiting an exponentially
//! growing timeout between attempts. Two exhaustion levels exist:
//!
//! * **per-SMP**: all attempts used → the destination is declared
//!   [`SendOutcome::Unreachable`] and surfaced as a partition entry
//!   instead of being retried forever;
//! * **per-sweep**: the cumulative retransmit budget ran out →
//!   [`SendOutcome::BudgetExhausted`], and the sweep reports *partial*
//!   convergence rather than silently wedging.

use crate::mad::{Smp, SmpResponse};
use crate::managed::ManagedFabric;
use iba_core::{FlightEvent, IbaError};

/// Cap on retransmit events kept for the flight recorder; past this the
/// counters keep counting but the per-event log stops growing.
pub const MAX_LOGGED_RETRANSMITS: usize = 256;

/// Retry parameters of one management sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts per SMP (first send included).
    pub max_attempts: u32,
    /// Response timeout before the first retransmit, in modeled ns.
    pub base_timeout_ns: u64,
    /// Timeout multiplier per further attempt (exponential backoff).
    pub backoff: u32,
    /// Cumulative retransmits allowed across the whole sweep; once
    /// spent, the sweep stops and reports partial convergence.
    pub sweep_budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_timeout_ns: 4_096,
            backoff: 2,
            sweep_budget: 100_000,
        }
    }
}

/// Counters a retried sweep accumulates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// SMPs re-sent after a timeout.
    pub retransmits: u64,
    /// Attempts that ended in a timeout (lost SMP or dead route).
    pub timeouts: u64,
    /// Total modeled time spent waiting out timeouts, in ns.
    pub backoff_wait_ns: u64,
    /// Whether the sweep's retransmit budget ran out.
    pub budget_exhausted: bool,
}

/// What one reliable send concluded.
#[derive(Clone, Debug, PartialEq)]
pub enum SendOutcome {
    /// A response arrived (possibly `Unsupported` — delivery says
    /// nothing about the agent liking the request).
    Delivered(SmpResponse),
    /// Every attempt timed out: the destination is partitioned from the
    /// SM as far as VL15 can tell.
    Unreachable,
    /// The sweep-wide retransmit budget ran out mid-send.
    BudgetExhausted,
}

/// The reliable transport: policy + counters + capped retransmit log.
#[derive(Debug)]
pub struct ReliableSender {
    policy: RetryPolicy,
    /// Counters (public so sweep reports can fold them in).
    pub stats: RetryStats,
    events: Vec<FlightEvent>,
}

impl ReliableSender {
    /// Build a sender; rejects degenerate policies.
    pub fn new(policy: RetryPolicy) -> Result<ReliableSender, IbaError> {
        if policy.max_attempts == 0 {
            return Err(IbaError::InvalidConfig(
                "retry policy needs at least one attempt".into(),
            ));
        }
        if policy.backoff == 0 {
            return Err(IbaError::InvalidConfig(
                "retry backoff multiplier must be at least 1".into(),
            ));
        }
        Ok(ReliableSender {
            policy,
            stats: RetryStats::default(),
            events: Vec::new(),
        })
    }

    /// The policy this sender runs.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Retransmit events logged so far (capped at
    /// [`MAX_LOGGED_RETRANSMITS`]).
    pub fn events(&self) -> &[FlightEvent] {
        &self.events
    }

    /// Consume the sender, keeping the event log.
    pub fn into_events(self) -> Vec<FlightEvent> {
        self.events
    }

    /// The timeout waited on attempt number `attempt` (1-based).
    fn timeout_ns(&self, attempt: u32) -> u64 {
        let factor = (self.policy.backoff as u64).saturating_pow(attempt.saturating_sub(1));
        self.policy.base_timeout_ns.saturating_mul(factor)
    }

    /// Send `smp` reliably: retransmit on timeout with exponential
    /// backoff until a response arrives, the per-SMP attempts run out,
    /// or the sweep budget is spent. `BadRoute` walks are treated
    /// exactly like timeouts — on the wire both look the same (no
    /// response ever comes back), so the SM must not distinguish them.
    pub fn send(&mut self, fabric: &mut ManagedFabric, smp: &Smp) -> SendOutcome {
        for attempt in 1..=self.policy.max_attempts {
            if attempt > 1 {
                if self.stats.retransmits >= self.policy.sweep_budget {
                    self.stats.budget_exhausted = true;
                    return SendOutcome::BudgetExhausted;
                }
                self.stats.retransmits += 1;
                if self.events.len() < MAX_LOGGED_RETRANSMITS {
                    self.events.push(FlightEvent::SmpRetransmit {
                        tid: smp.tid,
                        attempt,
                        hops: smp.route.len().min(u8::MAX as usize) as u8,
                    });
                }
            }
            match fabric.send(smp) {
                SmpResponse::Timeout | SmpResponse::BadRoute => {
                    self.stats.timeouts += 1;
                    self.stats.backoff_wait_ns = self
                        .stats
                        .backoff_wait_ns
                        .saturating_add(self.timeout_ns(attempt));
                }
                resp => return SendOutcome::Delivered(resp),
            }
        }
        SendOutcome::Unreachable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mad::{DirectedRoute, SmpAttribute, SmpMethod};
    use iba_core::ServiceLevel;
    use iba_topology::regular;

    fn node_info(tid: u64) -> Smp {
        Smp {
            method: SmpMethod::Get,
            attribute: SmpAttribute::NodeInfo,
            route: DirectedRoute::local(),
            tid,
            sl: ServiceLevel(0),
        }
    }

    #[test]
    fn lossless_delivery_needs_no_retries() {
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let mut tx = ReliableSender::new(RetryPolicy::default()).unwrap();
        let out = tx.send(&mut fab, &node_info(1));
        assert!(matches!(
            out,
            SendOutcome::Delivered(SmpResponse::NodeInfo { .. })
        ));
        assert_eq!(tx.stats, RetryStats::default());
        assert!(tx.events().is_empty());
    }

    #[test]
    fn total_loss_backs_off_exponentially_then_declares_unreachable() {
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        fab.set_smp_faults(1.0, 7).unwrap();
        let mut tx = ReliableSender::new(RetryPolicy {
            max_attempts: 4,
            base_timeout_ns: 1_000,
            backoff: 2,
            sweep_budget: 1_000,
        })
        .unwrap();
        let out = tx.send(&mut fab, &node_info(42));
        assert_eq!(out, SendOutcome::Unreachable);
        assert_eq!(tx.stats.timeouts, 4);
        assert_eq!(tx.stats.retransmits, 3);
        // 1000 + 2000 + 4000 + 8000: the wait doubles every attempt.
        assert_eq!(tx.stats.backoff_wait_ns, 15_000);
        let attempts: Vec<u32> = tx
            .events()
            .iter()
            .map(|e| match e {
                FlightEvent::SmpRetransmit { attempt, tid, .. } => {
                    assert_eq!(*tid, 42);
                    *attempt
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(attempts, vec![2, 3, 4]);
    }

    #[test]
    fn sweep_budget_cuts_the_retry_loop_short() {
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        fab.set_smp_faults(1.0, 3).unwrap();
        let mut tx = ReliableSender::new(RetryPolicy {
            max_attempts: 8,
            base_timeout_ns: 100,
            backoff: 2,
            sweep_budget: 2,
        })
        .unwrap();
        let out = tx.send(&mut fab, &node_info(1));
        assert_eq!(out, SendOutcome::BudgetExhausted);
        assert_eq!(tx.stats.retransmits, 2);
        assert!(tx.stats.budget_exhausted);
    }

    #[test]
    fn bad_routes_look_exactly_like_loss() {
        // A route that falls off the fabric gets retried and declared
        // unreachable — the SM cannot (and must not) tell a dead route
        // from a lossy one.
        let topo = regular::ring(4, 1).unwrap();
        let mut fab = ManagedFabric::new(&topo, 2).unwrap();
        let mut tx = ReliableSender::new(RetryPolicy {
            max_attempts: 3,
            base_timeout_ns: 10,
            backoff: 3,
            sweep_budget: 100,
        })
        .unwrap();
        let smp = Smp {
            route: DirectedRoute::local().then(iba_core::PortIndex(99)),
            ..node_info(9)
        };
        assert_eq!(tx.send(&mut fab, &smp), SendOutcome::Unreachable);
        assert_eq!(tx.stats.timeouts, 3);
        assert_eq!(tx.stats.backoff_wait_ns, 10 + 30 + 90);
    }

    #[test]
    fn degenerate_policies_are_rejected() {
        assert!(ReliableSender::new(RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        })
        .is_err());
        assert!(ReliableSender::new(RetryPolicy {
            backoff: 0,
            ..RetryPolicy::default()
        })
        .is_err());
    }
}
