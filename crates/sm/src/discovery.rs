//! Directed-route subnet discovery.
//!
//! Before LIDs exist, the subnet manager explores the fabric with
//! directed-route SMPs: starting at its own switch it reads `NodeInfo`,
//! probes every port with `PortInfo`, and extends the route through
//! every trained link, de-duplicating switches by GUID — a breadth-first
//! sweep that reconstructs the whole graph using nothing but the
//! management interface.

use crate::mad::{DirectedRoute, NodeKind, PortState, Smp, SmpAttribute, SmpMethod, SmpResponse};
use crate::managed::ManagedFabric;
use crate::retry::{ReliableSender, SendOutcome};
use iba_core::{IbaError, PortIndex, ServiceLevel, SwitchId};
use iba_topology::{Topology, TopologyBuilder};
use std::collections::HashMap;
use std::collections::VecDeque;

/// What discovery found behind one switch port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortTarget {
    /// Link down / unwired.
    Down,
    /// A host with the given GUID.
    Host(u64),
    /// A switch with the given GUID.
    Switch(u64),
}

/// One discovered switch.
#[derive(Clone, Debug)]
pub struct DiscoveredSwitch {
    /// The switch's GUID.
    pub guid: u64,
    /// A shortest directed route from the SM to it.
    pub route: DirectedRoute,
    /// Per-port findings.
    pub ports: Vec<PortTarget>,
}

/// The reconstructed fabric.
#[derive(Clone, Debug, Default)]
pub struct DiscoveredFabric {
    /// Switches in discovery (BFS) order.
    pub switches: Vec<DiscoveredSwitch>,
    /// Host GUIDs in discovery order (their index becomes the HostId).
    pub hosts: Vec<u64>,
    /// SMPs used by the sweep.
    pub smps_used: u64,
}

impl DiscoveredFabric {
    /// Number of switches found.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts found.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of inter-switch links found.
    pub fn link_count(&self) -> usize {
        self.switches
            .iter()
            .flat_map(|s| &s.ports)
            .filter(|t| matches!(t, PortTarget::Switch(_)))
            .count()
            / 2
    }

    /// Rebuild a [`Topology`] isomorphic to the physical fabric, with
    /// discovery order as switch/host ids and the *physical* port
    /// numbers preserved — so routing computed on it programs correctly
    /// onto the real switches.
    pub fn to_topology(&self) -> Result<Topology, IbaError> {
        let ports = self
            .switches
            .first()
            .map(|s| s.ports.len() as u8)
            .ok_or_else(|| IbaError::InvalidTopology("nothing discovered".into()))?;
        let index_of: HashMap<u64, usize> = self
            .switches
            .iter()
            .enumerate()
            .map(|(i, s)| (s.guid, i))
            .collect();
        let host_index: HashMap<u64, usize> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        let mut builder = TopologyBuilder::new(self.switches.len(), ports);
        // Wire inter-switch links (each seen from both ends; connect once).
        for (i, sw) in self.switches.iter().enumerate() {
            for (p, target) in sw.ports.iter().enumerate() {
                if let PortTarget::Switch(peer_guid) = target {
                    let j = *index_of.get(peer_guid).ok_or_else(|| {
                        IbaError::InvalidTopology("link to unknown switch".into())
                    })?;
                    if i < j {
                        // Find the peer's matching port.
                        let peer = &self.switches[j];
                        let back = peer
                            .ports
                            .iter()
                            .position(|t| *t == PortTarget::Switch(sw.guid))
                            .ok_or_else(|| {
                                IbaError::InvalidTopology("asymmetric discovery".into())
                            })?;
                        builder.connect_ports(
                            SwitchId(i as u16),
                            PortIndex(p as u8),
                            SwitchId(j as u16),
                            PortIndex(back as u8),
                        )?;
                    }
                }
            }
        }
        // Attach hosts in global discovery order so HostIds match the
        // LID-assignment order.
        let mut placements: Vec<(usize, usize, usize)> = Vec::new(); // (host idx, switch, port)
        for (i, sw) in self.switches.iter().enumerate() {
            for (p, target) in sw.ports.iter().enumerate() {
                if let PortTarget::Host(g) = target {
                    placements.push((host_index[g], i, p));
                }
            }
        }
        placements.sort();
        for (_, sw, port) in placements {
            builder.attach_host_at(SwitchId(sw as u16), PortIndex(port as u8))?;
        }
        builder.build()
    }

    /// Mark the inter-switch link behind `(a, pa)`/`(b, pb)` as down on
    /// both ends, in place. Port positions are preserved, so switch and
    /// host ids of [`Self::to_topology`] stay stable — the property the
    /// incremental re-sweep relies on.
    pub fn degrade_link(
        &mut self,
        a: SwitchId,
        pa: PortIndex,
        b: SwitchId,
        pb: PortIndex,
    ) -> Result<(), IbaError> {
        let check = |fab: &DiscoveredFabric, s: SwitchId, p: PortIndex, peer: SwitchId| {
            let peer_guid = fab
                .switches
                .get(peer.index())
                .ok_or_else(|| IbaError::InvalidTopology(format!("no switch {peer:?}")))?
                .guid;
            let sw = fab
                .switches
                .get(s.index())
                .ok_or_else(|| IbaError::InvalidTopology(format!("no switch {s:?}")))?;
            match sw.ports.get(p.index()) {
                Some(PortTarget::Switch(g)) if *g == peer_guid => Ok(()),
                other => Err(IbaError::InvalidTopology(format!(
                    "port {p:?} of {s:?} is {other:?}, not a link to {peer:?}"
                ))),
            }
        };
        check(self, a, pa, b)?;
        check(self, b, pb, a)?;
        self.switches[a.index()].ports[pa.index()] = PortTarget::Down;
        self.switches[b.index()].ports[pb.index()] = PortTarget::Down;
        Ok(())
    }

    /// Recompute every switch's directed route by BFS over the
    /// discovered port graph, without sending a single SMP. Needed after
    /// [`Self::degrade_link`]: the recorded routes may have crossed the
    /// dead link. Errors if some switch is no longer reachable.
    pub fn recompute_routes(&mut self) -> Result<(), IbaError> {
        let index_of: HashMap<u64, usize> = self
            .switches
            .iter()
            .enumerate()
            .map(|(i, s)| (s.guid, i))
            .collect();
        let mut routes: Vec<Option<DirectedRoute>> = vec![None; self.switches.len()];
        if routes.is_empty() {
            return Ok(());
        }
        routes[0] = Some(DirectedRoute::local());
        let mut queue = VecDeque::from([0usize]);
        while let Some(cur) = queue.pop_front() {
            let cur_route = routes[cur].clone().expect("queued switches have routes");
            for (p, target) in self.switches[cur].ports.iter().enumerate() {
                if let PortTarget::Switch(g) = target {
                    let j = *index_of.get(g).ok_or_else(|| {
                        IbaError::InvalidTopology("link to unknown switch".into())
                    })?;
                    if routes[j].is_none() {
                        routes[j] = Some(cur_route.then(PortIndex(p as u8)));
                        queue.push_back(j);
                    }
                }
            }
        }
        for (i, route) in routes.into_iter().enumerate() {
            self.switches[i].route = route.ok_or_else(|| {
                IbaError::InvalidTopology(format!(
                    "switch {i} unreachable over directed routes after degrade"
                ))
            })?;
        }
        Ok(())
    }
}

/// The discovery engine.
pub struct Discoverer {
    tid: u64,
}

impl Discoverer {
    /// Fresh engine.
    pub fn new() -> Discoverer {
        Discoverer { tid: 0 }
    }

    fn smp(&mut self, method: SmpMethod, attribute: SmpAttribute, route: DirectedRoute) -> Smp {
        self.tid += 1;
        Smp {
            method,
            attribute,
            route,
            tid: self.tid,
            sl: ServiceLevel(0),
        }
    }

    /// Run the breadth-first sweep over `fabric`.
    pub fn discover(&mut self, fabric: &mut ManagedFabric) -> Result<DiscoveredFabric, IbaError> {
        let before = fabric.smps_sent;
        let mut out = DiscoveredFabric::default();
        let mut seen: HashMap<u64, usize> = HashMap::new();
        let mut queue: VecDeque<DirectedRoute> = VecDeque::from([DirectedRoute::local()]);
        // The entry route's NodeInfo seeds the sweep.
        while let Some(route) = queue.pop_front() {
            let resp =
                fabric.send(&self.smp(SmpMethod::Get, SmpAttribute::NodeInfo, route.clone()));
            let SmpResponse::NodeInfo {
                kind: NodeKind::Switch { ports },
                guid,
            } = resp
            else {
                return Err(IbaError::InvalidTopology(format!(
                    "discovery route did not end at a switch: {resp:?}"
                )));
            };
            if seen.contains_key(&guid) {
                continue; // reached an already-visited switch by another path
            }
            seen.insert(guid, out.switches.len());
            let mut port_targets = vec![PortTarget::Down; ports as usize];
            for p in 0..ports {
                let port = PortIndex(p);
                let resp = fabric.send(&self.smp(
                    SmpMethod::Get,
                    SmpAttribute::PortInfo { port },
                    route.clone(),
                ));
                let SmpResponse::PortInfo { state } = resp else {
                    return Err(IbaError::InvalidTopology("PortInfo failed".into()));
                };
                if state == PortState::Down {
                    continue;
                }
                // Identify the peer through its own NodeInfo.
                let peer_route = route.then(port);
                let resp = fabric.send(&self.smp(
                    SmpMethod::Get,
                    SmpAttribute::NodeInfo,
                    peer_route.clone(),
                ));
                match resp {
                    SmpResponse::NodeInfo {
                        kind: NodeKind::Host,
                        guid: hg,
                    } => {
                        port_targets[p as usize] = PortTarget::Host(hg);
                        out.hosts.push(hg);
                    }
                    SmpResponse::NodeInfo {
                        kind: NodeKind::Switch { .. },
                        guid: sg,
                    } => {
                        port_targets[p as usize] = PortTarget::Switch(sg);
                        if !seen.contains_key(&sg) {
                            queue.push_back(peer_route);
                        }
                    }
                    other => {
                        return Err(IbaError::InvalidTopology(format!(
                            "peer NodeInfo failed: {other:?}"
                        )))
                    }
                }
            }
            out.switches.push(DiscoveredSwitch {
                guid,
                route,
                ports: port_targets,
            });
        }
        out.smps_used = fabric.smps_sent - before;
        Ok(out)
    }

    /// The loss-tolerant sweep: identical BFS, but every exchange rides
    /// `sender`'s retransmit loop. Three degradations replace the plain
    /// sweep's hard errors:
    ///
    /// * an unreachable switch (every retry timed out) is recorded in
    ///   [`RobustDiscovery::unreachable`] and skipped — the sweep keeps
    ///   going and reconstructs the reachable component;
    /// * an unreachable port probe demotes that port to
    ///   [`PortTarget::Down`] in the discovered view;
    /// * a spent sweep budget stops the BFS where it stands and flags
    ///   the result [`RobustDiscovery::partial`].
    ///
    /// Protocol violations — an agent that *answers* with the wrong
    /// thing — still hard-error: those are bugs, not faults.
    pub fn discover_robust(
        &mut self,
        fabric: &mut ManagedFabric,
        sender: &mut ReliableSender,
    ) -> Result<RobustDiscovery, IbaError> {
        let before = fabric.smps_sent;
        let mut out = DiscoveredFabric::default();
        let mut unreachable: Vec<String> = Vec::new();
        let mut partial = false;
        let mut seen: HashMap<u64, usize> = HashMap::new();
        let mut queue: VecDeque<DirectedRoute> = VecDeque::from([DirectedRoute::local()]);
        'sweep: while let Some(route) = queue.pop_front() {
            let smp = self.smp(SmpMethod::Get, SmpAttribute::NodeInfo, route.clone());
            let (ports, guid) = match sender.send(fabric, &smp) {
                SendOutcome::Delivered(SmpResponse::NodeInfo {
                    kind: NodeKind::Switch { ports },
                    guid,
                }) => (ports, guid),
                SendOutcome::Delivered(resp) => {
                    return Err(IbaError::InvalidTopology(format!(
                        "discovery route did not end at a switch: {resp:?}"
                    )));
                }
                SendOutcome::Unreachable => {
                    unreachable.push(format!(
                        "switch at route {:?} never answered NodeInfo",
                        route.hops
                    ));
                    continue;
                }
                SendOutcome::BudgetExhausted => {
                    partial = true;
                    break 'sweep;
                }
            };
            if seen.contains_key(&guid) {
                continue; // reached an already-visited switch by another path
            }
            seen.insert(guid, out.switches.len());
            let mut port_targets = vec![PortTarget::Down; ports as usize];
            for p in 0..ports {
                let port = PortIndex(p);
                let smp = self.smp(
                    SmpMethod::Get,
                    SmpAttribute::PortInfo { port },
                    route.clone(),
                );
                let state = match sender.send(fabric, &smp) {
                    SendOutcome::Delivered(SmpResponse::PortInfo { state }) => state,
                    SendOutcome::Delivered(resp) => {
                        return Err(IbaError::InvalidTopology(format!(
                            "PortInfo failed: {resp:?}"
                        )));
                    }
                    SendOutcome::Unreachable => {
                        unreachable.push(format!(
                            "PortInfo for port {p} at route {:?} never answered",
                            route.hops
                        ));
                        continue;
                    }
                    SendOutcome::BudgetExhausted => {
                        partial = true;
                        break 'sweep;
                    }
                };
                if state == PortState::Down {
                    continue;
                }
                // Identify the peer through its own NodeInfo.
                let peer_route = route.then(port);
                let smp = self.smp(SmpMethod::Get, SmpAttribute::NodeInfo, peer_route.clone());
                match sender.send(fabric, &smp) {
                    SendOutcome::Delivered(SmpResponse::NodeInfo {
                        kind: NodeKind::Host,
                        guid: hg,
                    }) => {
                        port_targets[p as usize] = PortTarget::Host(hg);
                        out.hosts.push(hg);
                    }
                    SendOutcome::Delivered(SmpResponse::NodeInfo {
                        kind: NodeKind::Switch { .. },
                        guid: sg,
                    }) => {
                        port_targets[p as usize] = PortTarget::Switch(sg);
                        if !seen.contains_key(&sg) {
                            queue.push_back(peer_route);
                        }
                    }
                    SendOutcome::Delivered(other) => {
                        return Err(IbaError::InvalidTopology(format!(
                            "peer NodeInfo failed: {other:?}"
                        )));
                    }
                    SendOutcome::Unreachable => {
                        // A trained port whose peer never answers: the
                        // link is partitioned as far as VL15 can tell.
                        // Leave the port Down in the discovered view so
                        // routing never crosses it.
                        unreachable.push(format!(
                            "peer behind port {p} at route {:?} never answered",
                            route.hops
                        ));
                    }
                    SendOutcome::BudgetExhausted => {
                        partial = true;
                        break 'sweep;
                    }
                }
            }
            out.switches.push(DiscoveredSwitch {
                guid,
                route,
                ports: port_targets,
            });
        }
        // Demote half-seen links: an entry that points at a switch the
        // sweep never (fully) visited, or whose far side did not record
        // the link back, must read `Down` — routing may not cross a
        // link only one end vouches for.
        let mut demote: Vec<(usize, usize)> = Vec::new();
        for (i, sw) in out.switches.iter().enumerate() {
            for (p, target) in sw.ports.iter().enumerate() {
                if let PortTarget::Switch(g) = target {
                    let symmetric = seen
                        .get(g)
                        .filter(|&&j| j < out.switches.len())
                        .is_some_and(|&j| {
                            out.switches[j].ports.contains(&PortTarget::Switch(sw.guid))
                        });
                    if !symmetric {
                        demote.push((i, p));
                    }
                }
            }
        }
        for (i, p) in demote {
            out.switches[i].ports[p] = PortTarget::Down;
        }
        out.smps_used = fabric.smps_sent - before;
        Ok(RobustDiscovery {
            fabric: out,
            unreachable,
            partial,
        })
    }
}

/// What a loss-tolerant sweep produced.
#[derive(Clone, Debug)]
pub struct RobustDiscovery {
    /// The reachable component, in BFS order.
    pub fabric: DiscoveredFabric,
    /// Partition report: destinations that exhausted every retry.
    pub unreachable: Vec<String>,
    /// `true` when the sweep budget ran out before the BFS finished.
    pub partial: bool,
}

impl Default for Discoverer {
    fn default() -> Self {
        Discoverer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topology::{regular, IrregularConfig, TopologyMetrics};

    fn discover(topo: &Topology) -> DiscoveredFabric {
        let mut fabric = ManagedFabric::new(topo, 2).unwrap();
        Discoverer::new().discover(&mut fabric).unwrap()
    }

    #[test]
    fn sweep_finds_the_whole_ring() {
        let topo = regular::ring(6, 2).unwrap();
        let d = discover(&topo);
        assert_eq!(d.switch_count(), 6);
        assert_eq!(d.host_count(), 12);
        assert_eq!(d.link_count(), 6);
        assert!(d.smps_used > 0);
    }

    #[test]
    fn sweep_finds_irregular_fabrics_of_every_size() {
        for &n in &[8usize, 16, 32] {
            let topo = IrregularConfig::paper(n, 5).generate().unwrap();
            let d = discover(&topo);
            assert_eq!(d.switch_count(), n, "{n} switches");
            assert_eq!(d.host_count(), 4 * n);
            assert_eq!(d.link_count(), topo.num_switch_links());
        }
    }

    #[test]
    fn routes_are_shortest_in_bfs_order() {
        let topo = regular::chain(5, 1).unwrap();
        let d = discover(&topo);
        // BFS: route lengths are non-decreasing in discovery order, and
        // the farthest switch of a 5-chain is 4 hops from an end.
        let lens: Vec<usize> = d.switches.iter().map(|s| s.route.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]), "{lens:?}");
        assert_eq!(*lens.last().unwrap(), 4);
    }

    #[test]
    fn reconstructed_topology_is_isomorphic() {
        for seed in [1u64, 2, 3] {
            let topo = IrregularConfig::paper(16, seed).generate().unwrap();
            let rebuilt = discover(&topo).to_topology().unwrap();
            rebuilt.validate().unwrap();
            let a = TopologyMetrics::compute(&topo);
            let b = TopologyMetrics::compute(&rebuilt);
            assert_eq!(a, b, "metric mismatch: {a:?} vs {b:?}");
            // Degree multiset must match exactly.
            let degrees = |t: &Topology| {
                let mut d: Vec<usize> = t.switch_ids().map(|s| t.switch_degree(s)).collect();
                d.sort();
                d
            };
            assert_eq!(degrees(&topo), degrees(&rebuilt));
        }
    }

    #[test]
    fn reconstruction_preserves_physical_port_numbers() {
        let topo = IrregularConfig::paper(8, 9).generate().unwrap();
        let d = discover(&topo);
        let rebuilt = d.to_topology().unwrap();
        // For each discovered switch, the set of (port → kind) must agree
        // with the physical one (ports are the common key between the
        // managed fabric and the reconstruction).
        for (i, sw) in d.switches.iter().enumerate() {
            for (p, t) in sw.ports.iter().enumerate() {
                let rebuilt_ep = rebuilt.endpoint(SwitchId(i as u16), PortIndex(p as u8));
                match t {
                    PortTarget::Down => assert!(rebuilt_ep.is_none()),
                    PortTarget::Host(_) => {
                        assert!(rebuilt_ep.unwrap().node.is_host())
                    }
                    PortTarget::Switch(_) => {
                        assert!(rebuilt_ep.unwrap().node.is_switch())
                    }
                }
            }
        }
    }
}
