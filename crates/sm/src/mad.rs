//! Simplified subnet-management packets (SMPs).
//!
//! Real IBA subnet management rides on 256-byte MADs; this model keeps
//! the fields the bring-up logic actually consumes. The essential piece
//! is **directed-route addressing**: before any LID is assigned, an SMP
//! carries an explicit list of output ports to take at each switch hop,
//! and agents process it when the hop pointer reaches the end of the
//! path. Responses retrace the same path backwards.

use iba_core::{Lid, PortIndex, ServiceLevel, VirtualLane};
use serde::{Deserialize, Serialize};

/// A directed route: the output port to take at each successive switch,
/// starting from the SM's attachment switch. An empty path addresses the
/// attachment switch itself.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DirectedRoute {
    /// Output ports, outermost hop first.
    pub hops: Vec<PortIndex>,
}

impl DirectedRoute {
    /// The empty route (the SM's own switch).
    pub fn local() -> DirectedRoute {
        DirectedRoute::default()
    }

    /// Extend the route by one hop.
    pub fn then(&self, port: PortIndex) -> DirectedRoute {
        let mut hops = self.hops.clone();
        hops.push(port);
        DirectedRoute { hops }
    }

    /// Number of switch hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route addresses the local switch.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// SMP methods (the two the bring-up needs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmpMethod {
    /// `SubnGet` — read an attribute.
    Get,
    /// `SubnSet` — write an attribute.
    Set,
}

/// Management attributes, with their `Set` payloads inline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SmpAttribute {
    /// Node identity: kind, GUID, port count.
    NodeInfo,
    /// State of one port: what it is wired to (link sensing).
    PortInfo {
        /// The queried port.
        port: PortIndex,
    },
    /// Assign the switch's LID-facing identity (not used for forwarding
    /// by switches, but kept for spec shape).
    SwitchInfo {
        /// The switch's own management LID.
        lid: Lid,
    },
    /// One 64-entry block of the linear forwarding table.
    LinearForwardingTable {
        /// Block index: entries `block*64 .. block*64+63`.
        block: u32,
        /// Entry payload for `Set` (`None` entries are skipped); ignored
        /// for `Get`.
        entries: Vec<Option<PortIndex>>,
    },
    /// One (input port, output port) row of the SLtoVL table.
    SlToVlMappingTable {
        /// Input port of the row.
        input: PortIndex,
        /// Output port of the row.
        output: PortIndex,
        /// The 16 VL values for `Set`; ignored for `Get`.
        vls: Vec<VirtualLane>,
    },
}

/// A subnet-management packet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Smp {
    /// Method.
    pub method: SmpMethod,
    /// Attribute (with payload for `Set`).
    pub attribute: SmpAttribute,
    /// Directed route from the SM's switch to the target.
    pub route: DirectedRoute,
    /// Transaction id (for bookkeeping and tests).
    pub tid: u64,
    /// SL of the management packet (always 0 here; SMPs ride VL15 in the
    /// spec, outside the data VLs this model simulates).
    pub sl: ServiceLevel,
}

/// What kind of node answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A switch with the given port count.
    Switch {
        /// Physical ports.
        ports: u8,
    },
    /// A channel adapter (host).
    Host,
}

/// The remote end a `PortInfo` query reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortState {
    /// Nothing connected.
    Down,
    /// Link trained; the remote GUID and port are readable through the
    /// peer's own NodeInfo once visited.
    Up,
}

/// SMP responses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SmpResponse {
    /// Answer to `Get(NodeInfo)`.
    NodeInfo {
        /// Node kind (and port count for switches).
        kind: NodeKind,
        /// Globally unique id — stable across discovery sweeps.
        guid: u64,
    },
    /// Answer to `Get(PortInfo)`.
    PortInfo {
        /// Link state of the queried port.
        state: PortState,
    },
    /// Answer to `Get(LinearForwardingTable)`.
    LftBlock {
        /// The 64 entries of the block (`None` = unprogrammed).
        entries: Vec<Option<PortIndex>>,
    },
    /// Generic success for `Set`.
    Ok,
    /// The directed route left the fabric or addressed a down port.
    BadRoute,
    /// Attribute/method combination not supported.
    Unsupported,
    /// No response arrived: the SMP (or its reply) was lost in transit.
    /// VL15 is unacknowledged and unbuffered in the spec, so loss is
    /// silent — the SM only ever observes it as a response timeout.
    Timeout,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_route_building() {
        let r = DirectedRoute::local();
        assert!(r.is_empty());
        let r2 = r.then(PortIndex(3)).then(PortIndex(1));
        assert_eq!(r2.len(), 2);
        assert_eq!(r2.hops, vec![PortIndex(3), PortIndex(1)]);
        // `then` does not mutate the original.
        assert!(r.is_empty());
    }

    #[test]
    fn smp_roundtrips_through_clone_eq() {
        let smp = Smp {
            method: SmpMethod::Set,
            attribute: SmpAttribute::LinearForwardingTable {
                block: 2,
                entries: vec![Some(PortIndex(1)); 64],
            },
            route: DirectedRoute::local().then(PortIndex(0)),
            tid: 7,
            sl: ServiceLevel(0),
        };
        assert_eq!(smp.clone(), smp);
    }
}
