//! Golden end-to-end test for SM fault recovery.
//!
//! A switch–switch link fails; the subnet manager re-sweeps the fabric
//! **purely over directed-route SMPs** — it never peeks at the physical
//! topology — and the reprogrammed forwarding tables must (a) describe a
//! connected fabric that simply lacks the dead link, (b) never forward
//! over the dead ports, and (c) keep the escape layer deadlock-free, as
//! certified by the channel-dependency check in `iba_routing::analysis`.

use iba_core::{PortIndex, SwitchId};
use iba_routing::{check_escape_routes, RoutingConfig};
use iba_sm::sm::BringUp;
use iba_sm::{ManagedFabric, SubnetManager};
use iba_topology::{Topology, TopologyBuilder};
use std::collections::HashMap;

/// First switch–switch link whose removal keeps the fabric connected,
/// as `(a, port-on-a, b, port-on-b)`.
fn removable_link(topo: &Topology) -> (SwitchId, PortIndex, SwitchId, PortIndex) {
    for a in topo.switch_ids() {
        for (pa, b, pb) in topo.switch_neighbors(a) {
            if b.0 <= a.0 {
                continue;
            }
            if degraded(topo, a, b).is_ok() {
                return (a, pa, b, pb);
            }
        }
    }
    panic!("topology has no removable link");
}

/// Rebuild `topo` without the `a`–`b` link; errors when that would
/// disconnect the fabric.
fn degraded(topo: &Topology, a: SwitchId, b: SwitchId) -> Result<Topology, iba_core::IbaError> {
    let mut bld = TopologyBuilder::new(topo.num_switches(), topo.ports_per_switch());
    for s in topo.switch_ids() {
        for (p, peer, pp) in topo.switch_neighbors(s) {
            if peer.0 > s.0 && !(s == a && peer == b) {
                bld.connect_ports(s, p, peer, pp)?;
            }
        }
    }
    for h in topo.host_ids() {
        let (sw, port) = topo.host_attachment(h);
        bld.attach_host_at(sw, port)?;
    }
    bld.build()
}

/// Assert the re-swept, SMP-programmed tables route every pair without
/// the dead link and pass the escape deadlock check. All assertions read
/// the *agents'* LFTs (what the SMPs actually wrote), correlated to the
/// discovered topology by GUID.
fn assert_tables_sound(
    physical: &Topology,
    fabric: &ManagedFabric,
    up: &BringUp,
    dead: &[(SwitchId, PortIndex)],
) {
    // Discovered switch id -> physical agent, correlated by GUID.
    let mut agent_of = HashMap::new();
    for s in up.topology.switch_ids() {
        let guid = up.discovered.switches[s.index()].guid;
        let phys = physical
            .switch_ids()
            .find(|&p| fabric.agent(p).guid == guid)
            .expect("discovered GUID must belong to a physical agent");
        agent_of.insert(s, phys);
    }

    // (b) no LFT entry on the dead link's endpoints uses the dead port.
    for &(phys, port) in dead {
        let view = fabric.agent(phys).lft.linear_view();
        assert!(
            !view.contains(&Some(port)),
            "agent {phys} still forwards over dead {port}"
        );
    }

    // (c) every escape chain terminates and the dependency graph is
    // acyclic — read back from the programmed LFTs, not the SM's own
    // route computation.
    check_escape_routes(&up.topology, |s, h| {
        let dlid = up.routing.dlid(h, false).ok()?;
        fabric.agent(agent_of[&s]).lft.get(dlid)
    })
    .unwrap();
}

#[test]
fn resweep_after_link_failure_reprograms_sound_tables() {
    let physical = iba_topology::IrregularConfig::paper(16, 4)
        .generate()
        .unwrap();
    let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
    let sm = SubnetManager::new(RoutingConfig::two_options());

    let up1 = sm.initialize(&mut fabric).unwrap();
    assert!(up1.report.verified);
    let links_before = up1.discovered.link_count();

    // Kill a connectivity-preserving link, then re-sweep over SMPs only.
    let (a, pa, b, pb) = removable_link(&physical);
    fabric.fail_link(a, b).unwrap();
    let smps_before = fabric.smps_sent;
    let up2 = sm.initialize(&mut fabric).unwrap();
    assert!(up2.report.verified);
    assert!(fabric.smps_sent > smps_before, "re-sweep must use SMPs");

    // (a) same fabric minus exactly the dead link, still connected.
    assert_eq!(up2.topology.num_switches(), physical.num_switches());
    assert_eq!(up2.topology.num_hosts(), physical.num_hosts());
    assert_eq!(up2.discovered.link_count(), links_before - 1);
    assert!(up2.topology.is_connected());

    assert_tables_sound(&physical, &fabric, &up2, &[(a, pa), (b, pb)]);

    // Repair: restoring the link and sweeping again finds it back.
    fabric.restore_link(a, b).unwrap();
    let up3 = sm.initialize(&mut fabric).unwrap();
    assert_eq!(up3.discovered.link_count(), links_before);
    assert_tables_sound(&physical, &fabric, &up3, &[]);
}

#[test]
fn resweep_of_partitioning_failure_programs_reachable_half() {
    // chain(4): killing the middle link splits the fabric. The SM's
    // directed-route sweep can only reach its own partition, so the
    // re-sweep brings up a *smaller* but still sound subnet — it must
    // not invent routes across the dead link.
    let physical = iba_topology::TopologySpec::Chain {
        switches: 4,
        hosts_per_switch: 1,
    }
    .generate(0)
    .unwrap();
    let mut fabric = ManagedFabric::new(&physical, 2).unwrap();
    let sm = SubnetManager::new(RoutingConfig::two_options());
    let up1 = sm.initialize(&mut fabric).unwrap();
    assert_eq!(up1.topology.num_switches(), 4);

    fabric.fail_link(SwitchId(1), SwitchId(2)).unwrap();
    let up2 = sm.initialize(&mut fabric).unwrap();
    assert_eq!(up2.topology.num_switches(), 2);
    assert_eq!(up2.topology.num_hosts(), 2);
    assert!(up2.report.verified);
    assert_tables_sound(&physical, &fabric, &up2, &[]);
}
