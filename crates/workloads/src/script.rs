//! Scripted (trace-driven) traffic.
//!
//! Besides the paper's synthetic distributions, real studies replay
//! application traces: an explicit list of `(time, source, destination,
//! size, adaptive?)` injections. [`TrafficScript`] holds such a trace —
//! built programmatically or parsed from CSV — and the simulator replays
//! it exactly (`NetworkBuilder::script`), which is how MPI communication
//! patterns (the paper's §2 motivation: "MPI-based parallel applications
//! ... able to initiate many concurrent non-blocking message
//! transmissions") can be driven through the fabric.

use iba_core::{HostId, IbaError, ServiceLevel, SimTime};
use serde::{Deserialize, Serialize};

/// Which path set a scripted packet addresses (§4.1 APM coexistence).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PathSet {
    /// The ordinary FA group (lower LID half).
    #[default]
    Primary,
    /// The Automatic-Path-Migration alternate group (upper LID half);
    /// requires tables built with `FaRouting::build_with_apm`.
    Alternate,
}

/// One scripted packet injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedPacket {
    /// Generation time at the source host.
    pub at: SimTime,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Total size in bytes.
    pub size_bytes: u32,
    /// Whether the source marks the packet adaptive.
    pub adaptive: bool,
    /// Service level.
    pub sl: ServiceLevel,
    /// Primary or APM-alternate path set.
    pub path_set: PathSet,
}

/// An explicit injection trace, ordered by time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficScript {
    packets: Vec<ScriptedPacket>,
}

impl TrafficScript {
    /// Build from a list of injections (sorted by time internally; the
    /// relative order of same-instant entries is preserved).
    pub fn new(mut packets: Vec<ScriptedPacket>) -> Result<TrafficScript, IbaError> {
        for (i, p) in packets.iter().enumerate() {
            if p.src == p.dst {
                return Err(IbaError::InvalidConfig(format!(
                    "script entry {i}: source equals destination ({})",
                    p.src
                )));
            }
            if p.size_bytes == 0 {
                return Err(IbaError::InvalidConfig(format!(
                    "script entry {i}: zero-size packet"
                )));
            }
        }
        packets.sort_by_key(|p| p.at);
        Ok(TrafficScript { packets })
    }

    /// Parse from CSV lines of the form
    /// `time_ns,src,dst,size_bytes,adaptive[,sl[,alternate]]` (header
    /// lines and lines starting with `#` are skipped; `adaptive` and
    /// `alternate` are `0`/`1`).
    pub fn from_csv(text: &str) -> Result<TrafficScript, IbaError> {
        let mut packets = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("time") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() < 5 {
                return Err(IbaError::InvalidConfig(format!(
                    "script line {}: expected at least 5 fields, got {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let parse = |s: &str, what: &str| -> Result<u64, IbaError> {
                s.parse().map_err(|_| {
                    IbaError::InvalidConfig(format!("script line {}: bad {what} {s:?}", lineno + 1))
                })
            };
            packets.push(ScriptedPacket {
                at: SimTime::from_ns(parse(fields[0], "time")?),
                src: HostId(parse(fields[1], "src")? as u16),
                dst: HostId(parse(fields[2], "dst")? as u16),
                size_bytes: parse(fields[3], "size")? as u32,
                adaptive: parse(fields[4], "adaptive flag")? != 0,
                sl: ServiceLevel(if fields.len() > 5 {
                    parse(fields[5], "sl")? as u8
                } else {
                    0
                }),
                path_set: if fields.len() > 6 && parse(fields[6], "alternate flag")? != 0 {
                    PathSet::Alternate
                } else {
                    PathSet::Primary
                },
            });
        }
        TrafficScript::new(packets)
    }

    /// Render as CSV (the `from_csv` format, with header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,src,dst,size_bytes,adaptive,sl,alternate\n");
        for p in &self.packets {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                p.at.as_ns(),
                p.src.0,
                p.dst.0,
                p.size_bytes,
                u8::from(p.adaptive),
                p.sl.0,
                u8::from(p.path_set == PathSet::Alternate)
            ));
        }
        out
    }

    /// The injections, time-ordered.
    pub fn packets(&self) -> &[ScriptedPacket] {
        &self.packets
    }

    /// Number of injections.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Largest packet size (the value the buffer validation needs).
    pub fn max_packet_bytes(&self) -> u32 {
        self.packets.iter().map(|p| p.size_bytes).max().unwrap_or(0)
    }

    /// Whether any entry requests adaptive routing.
    pub fn uses_adaptive(&self) -> bool {
        self.packets.iter().any(|p| p.adaptive)
    }

    /// Whether any entry addresses the APM alternate path set.
    pub fn uses_alternate(&self) -> bool {
        self.packets
            .iter()
            .any(|p| p.path_set == PathSet::Alternate)
    }

    /// The service levels used by each path set (primary, alternate) —
    /// the simulator checks these map to disjoint VLs when both sets are
    /// present (the two escape orientations must not share lanes).
    pub fn sls_by_path_set(&self) -> (Vec<ServiceLevel>, Vec<ServiceLevel>) {
        let mut primary = Vec::new();
        let mut alternate = Vec::new();
        for p in &self.packets {
            let list = match p.path_set {
                PathSet::Primary => &mut primary,
                PathSet::Alternate => &mut alternate,
            };
            if !list.contains(&p.sl) {
                list.push(p.sl);
            }
        }
        (primary, alternate)
    }

    /// Largest host id referenced (for population validation).
    pub fn max_host(&self) -> Option<HostId> {
        self.packets.iter().flat_map(|p| [p.src, p.dst]).max()
    }

    /// Time of the last injection.
    pub fn end_time(&self) -> SimTime {
        self.packets.last().map(|p| p.at).unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(at: u64, src: u16, dst: u16) -> ScriptedPacket {
        ScriptedPacket {
            at: SimTime::from_ns(at),
            src: HostId(src),
            dst: HostId(dst),
            size_bytes: 32,
            adaptive: true,
            sl: ServiceLevel(0),
            path_set: PathSet::Primary,
        }
    }

    #[test]
    fn new_sorts_and_validates() {
        let s = TrafficScript::new(vec![pkt(300, 0, 1), pkt(100, 1, 2), pkt(200, 2, 0)]).unwrap();
        let times: Vec<u64> = s.packets().iter().map(|p| p.at.as_ns()).collect();
        assert_eq!(times, vec![100, 200, 300]);
        assert_eq!(s.end_time(), SimTime::from_ns(300));
        assert_eq!(s.max_host(), Some(HostId(2)));
        assert!(s.uses_adaptive());
        assert_eq!(s.max_packet_bytes(), 32);
        assert!(TrafficScript::new(vec![pkt(1, 3, 3)]).is_err());
        let mut zero = pkt(1, 0, 1);
        zero.size_bytes = 0;
        assert!(TrafficScript::new(vec![zero]).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let s = TrafficScript::new(vec![pkt(100, 1, 2), {
            let mut p = pkt(250, 2, 3);
            p.adaptive = false;
            p.size_bytes = 256;
            p.sl = ServiceLevel(1);
            p.path_set = PathSet::Alternate;
            p
        }])
        .unwrap();
        let csv = s.to_csv();
        assert!(csv.starts_with("time_ns,"));
        let back = TrafficScript::from_csv(&csv).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn csv_parsing_tolerates_comments_and_rejects_junk() {
        let good =
            "# a trace\ntime_ns,src,dst,size_bytes,adaptive,sl\n10, 0, 1, 32, 1\n20,1,0,64,0,2\n";
        let s = TrafficScript::from_csv(good).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.packets()[0].sl, ServiceLevel(0)); // default SL
        assert_eq!(s.packets()[1].sl, ServiceLevel(2));
        assert!(!s.packets()[1].adaptive);
        assert_eq!(s.packets()[0].path_set, PathSet::Primary);
        assert!(TrafficScript::from_csv("10,0,1,32\n").is_err()); // too few fields
        assert!(TrafficScript::from_csv("x,0,1,32,1\n").is_err()); // bad number
    }

    #[test]
    fn empty_script() {
        let s = TrafficScript::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.max_host(), None);
        assert_eq!(s.max_packet_bytes(), 0);
        assert!(!s.uses_adaptive());
    }
}
