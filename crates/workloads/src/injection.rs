//! Open-loop packet injection.
//!
//! Each host generates packets independently at a configured byte rate
//! (the x-axis of every latency/throughput plot in the paper is swept by
//! scaling this rate). Inter-arrival times are exponential by default
//! (Poisson arrivals) or constant (periodic); each packet draws a
//! destination from the pattern and flips the adaptive-marking coin with
//! the configured probability — the knob of §5.2.1's "percentage of
//! adaptive traffic".

use crate::patterns::{DestinationSampler, TrafficPattern};
use iba_core::{HostId, IbaError, ServiceLevel};
use iba_engine::rng::{StreamKind, StreamRng};
use serde::{Deserialize, Serialize};

/// The arrival process of one host's generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectionProcess {
    /// Exponential inter-arrival times (Poisson arrivals) — the default.
    Poisson,
    /// Constant inter-arrival times.
    Periodic,
}

/// Full description of a synthetic workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Destination distribution.
    pub pattern: TrafficPattern,
    /// Packet size in bytes (the paper uses 32 and 256).
    pub packet_bytes: u32,
    /// Fraction of packets marked adaptive, in `[0, 1]` (§5.2.1 sweeps
    /// 0, 0.25, 0.5, 0.75, 1).
    pub adaptive_fraction: f64,
    /// Injection rate per host, in bytes per nanosecond.
    pub injection_rate: f64,
    /// Arrival process.
    pub process: InjectionProcess,
    /// Number of service levels the workload spreads over (1..=16);
    /// packets rotate through SLs 0..service_levels. With more than one
    /// data VL configured, this exercises the SLtoVL machinery and VL
    /// multiplexing.
    pub service_levels: u8,
}

impl WorkloadSpec {
    /// The paper's workhorse workload: uniform destinations, 32-byte
    /// packets, fully adaptive, Poisson arrivals at `rate` bytes/ns.
    pub fn uniform32(rate: f64) -> WorkloadSpec {
        WorkloadSpec {
            pattern: TrafficPattern::Uniform,
            packet_bytes: 32,
            adaptive_fraction: 1.0,
            injection_rate: rate,
            process: InjectionProcess::Poisson,
            service_levels: 1,
        }
    }

    /// Same workload spread over `n` service levels.
    pub fn with_service_levels(&self, n: u8) -> WorkloadSpec {
        WorkloadSpec {
            service_levels: n,
            ..*self
        }
    }

    /// Same workload at a different injection rate (for sweeps).
    pub fn at_rate(&self, rate: f64) -> WorkloadSpec {
        WorkloadSpec {
            injection_rate: rate,
            ..*self
        }
    }

    /// Same workload with a different adaptive fraction.
    pub fn with_adaptive_fraction(&self, fraction: f64) -> WorkloadSpec {
        WorkloadSpec {
            adaptive_fraction: fraction,
            ..*self
        }
    }

    /// Mean inter-arrival time in nanoseconds.
    pub fn mean_interarrival_ns(&self) -> f64 {
        self.packet_bytes as f64 / self.injection_rate
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), IbaError> {
        if self.packet_bytes == 0 {
            return Err(IbaError::InvalidConfig(
                "packet size must be positive".into(),
            ));
        }
        if !self.injection_rate.is_finite() || self.injection_rate <= 0.0 {
            return Err(IbaError::InvalidConfig(
                "injection rate must be positive".into(),
            ));
        }
        if self.service_levels == 0 || self.service_levels > 16 {
            return Err(IbaError::InvalidConfig(format!(
                "service levels {} outside 1..=16",
                self.service_levels
            )));
        }
        if !(0.0..=1.0).contains(&self.adaptive_fraction) {
            return Err(IbaError::InvalidConfig(format!(
                "adaptive fraction {} outside [0, 1]",
                self.adaptive_fraction
            )));
        }
        if let TrafficPattern::HotSpot { fraction } = self.pattern {
            if !(0.0..=1.0).contains(&fraction) {
                return Err(IbaError::InvalidConfig(format!(
                    "hot-spot fraction {fraction} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// A packet the workload asks the simulator to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeneratedPacket {
    /// Destination host.
    pub dst: HostId,
    /// Size in bytes.
    pub size_bytes: u32,
    /// Whether the source marked the packet adaptive (it will carry the
    /// `d+1` DLID).
    pub adaptive: bool,
    /// Service level (rotates through `spec.service_levels`).
    pub sl: ServiceLevel,
}

/// The per-host traffic generator.
///
/// Owns independent random streams for arrivals, destinations and
/// marking, derived from the simulation seed and the host index — so the
/// generated sequence of any host is unaffected by how other hosts
/// interleave with it.
#[derive(Clone, Debug)]
pub struct HostGenerator {
    host: HostId,
    spec: WorkloadSpec,
    sampler: DestinationSampler,
    arrival_rng: StreamRng,
    marking_rng: StreamRng,
    sl_cursor: u8,
}

impl HostGenerator {
    /// Build the generator for `host` under `spec`.
    ///
    /// `root` must be the *same* root stream for all hosts of one
    /// simulation: pattern-level choices (hot-spot host, permutation) are
    /// derived from it identically everywhere, while per-host streams are
    /// split by host index.
    pub fn new(
        host: HostId,
        num_hosts: usize,
        spec: WorkloadSpec,
        root: &StreamRng,
    ) -> Result<HostGenerator, IbaError> {
        Self::with_groups(host, num_hosts, 1, spec, root)
    }

    /// Like [`Self::new`], with `hosts_per_switch` consecutive hosts per
    /// switch so that deterministic permutations act on the switch index
    /// (see [`DestinationSampler::with_groups`]).
    pub fn with_groups(
        host: HostId,
        num_hosts: usize,
        hosts_per_switch: usize,
        spec: WorkloadSpec,
        root: &StreamRng,
    ) -> Result<HostGenerator, IbaError> {
        spec.validate()?;
        // Pattern-level choices (hot-spot host, permutation) come from the
        // shared Traffic stream — identical for every host — while the
        // per-packet draw stream is split by host index.
        let sampler =
            DestinationSampler::with_groups(spec.pattern, num_hosts, hosts_per_switch, root)
                .with_draw_stream(root.derive_indexed(StreamKind::Traffic, host.0 as u64 + 1));
        Ok(HostGenerator {
            host,
            spec,
            sampler,
            arrival_rng: root.derive_indexed(StreamKind::Arrival, host.0 as u64),
            marking_rng: root.derive_indexed(StreamKind::Marking, host.0 as u64),
            sl_cursor: (host.0 % spec.service_levels as u16) as u8,
        })
    }

    /// The workload being generated.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The generating host.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Nanoseconds until the next packet generation.
    pub fn next_interarrival_ns(&mut self) -> u64 {
        let mean = self.spec.mean_interarrival_ns();
        match self.spec.process {
            InjectionProcess::Poisson => self.arrival_rng.exponential(mean).round().max(1.0) as u64,
            InjectionProcess::Periodic => mean.round().max(1.0) as u64,
        }
    }

    /// Generate the next packet.
    pub fn generate(&mut self) -> GeneratedPacket {
        let sl = ServiceLevel(self.sl_cursor);
        self.sl_cursor = (self.sl_cursor + 1) % self.spec.service_levels;
        GeneratedPacket {
            dst: self.sampler.sample(self.host),
            size_bytes: self.spec.packet_bytes,
            adaptive: self.marking_rng.chance(self.spec.adaptive_fraction),
            sl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> StreamRng {
        StreamRng::from_seed(1234)
    }

    fn gen_for(host: u16, spec: WorkloadSpec) -> HostGenerator {
        HostGenerator::new(HostId(host), 32, spec, &root()).unwrap()
    }

    #[test]
    fn spec_validation() {
        assert!(WorkloadSpec::uniform32(0.01).validate().is_ok());
        assert!(WorkloadSpec::uniform32(0.0).validate().is_err());
        assert!(WorkloadSpec {
            packet_bytes: 0,
            ..WorkloadSpec::uniform32(0.01)
        }
        .validate()
        .is_err());
        assert!(WorkloadSpec::uniform32(0.01)
            .with_adaptive_fraction(1.5)
            .validate()
            .is_err());
        assert!(WorkloadSpec {
            pattern: TrafficPattern::HotSpot { fraction: 2.0 },
            ..WorkloadSpec::uniform32(0.01)
        }
        .validate()
        .is_err());
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        // 32 bytes at 0.016 bytes/ns → one packet every 2000 ns.
        let spec = WorkloadSpec::uniform32(0.016);
        assert!((spec.mean_interarrival_ns() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_process_is_constant() {
        let spec = WorkloadSpec {
            process: InjectionProcess::Periodic,
            ..WorkloadSpec::uniform32(0.032)
        };
        let mut g = gen_for(0, spec);
        let first = g.next_interarrival_ns();
        assert_eq!(first, 1000);
        for _ in 0..10 {
            assert_eq!(g.next_interarrival_ns(), first);
        }
    }

    #[test]
    fn poisson_mean_tracks_configuration() {
        let mut g = gen_for(0, WorkloadSpec::uniform32(0.032)); // mean 1000 ns
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| g.next_interarrival_ns()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 30.0, "mean = {mean}");
    }

    #[test]
    fn adaptive_fraction_is_respected() {
        for frac in [0.0, 0.25, 0.75, 1.0] {
            let mut g = gen_for(
                0,
                WorkloadSpec::uniform32(0.01).with_adaptive_fraction(frac),
            );
            let n = 10_000;
            let hits = (0..n).filter(|_| g.generate().adaptive).count();
            let got = hits as f64 / n as f64;
            assert!((got - frac).abs() < 0.02, "fraction {frac}: observed {got}");
        }
    }

    #[test]
    fn hosts_have_independent_streams() {
        let spec = WorkloadSpec::uniform32(0.01);
        let mut a = gen_for(0, spec);
        let mut b = gen_for(1, spec);
        let seq_a: Vec<u64> = (0..20).map(|_| a.next_interarrival_ns()).collect();
        let seq_b: Vec<u64> = (0..20).map(|_| b.next_interarrival_ns()).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn same_host_same_seed_reproduces() {
        let spec = WorkloadSpec::uniform32(0.01);
        let mut a = gen_for(5, spec);
        let mut b = gen_for(5, spec);
        for _ in 0..50 {
            assert_eq!(a.next_interarrival_ns(), b.next_interarrival_ns());
            assert_eq!(a.generate(), b.generate());
        }
    }

    #[test]
    fn hotspot_host_is_shared_across_generators() {
        let spec = WorkloadSpec {
            pattern: TrafficPattern::hotspot_percent(100),
            ..WorkloadSpec::uniform32(0.01)
        };
        // With 100 % hot-spot traffic every non-hotspot host sends every
        // packet to the same destination.
        let mut gens: Vec<HostGenerator> = (0..8).map(|h| gen_for(h, spec)).collect();
        let mut dests = std::collections::HashSet::new();
        for g in &mut gens {
            for _ in 0..5 {
                let p = g.generate();
                dests.insert(p.dst);
            }
        }
        // All traffic converges on at most 2 hosts: the hot spot, plus the
        // uniform fallback used by the hot-spot host itself.
        assert!(dests.len() <= 1 + 7, "dests = {dests:?}");
        let hs_counts: Vec<usize> = dests.iter().map(|_| 0).collect();
        drop(hs_counts);
        // Stronger: non-hotspot senders all agree on one destination.
        let mut g0 = gen_for(0, spec);
        let d0 = g0.generate().dst;
        if d0 != HostId(1) {
            let mut g1 = gen_for(1, spec);
            assert_eq!(g1.generate().dst, d0);
        }
    }

    #[test]
    fn generated_packets_carry_spec_size() {
        let mut g = gen_for(
            2,
            WorkloadSpec {
                packet_bytes: 256,
                ..WorkloadSpec::uniform32(0.01)
            },
        );
        assert_eq!(g.generate().size_bytes, 256);
    }

    #[test]
    fn interarrival_is_at_least_one_ns() {
        // Extremely high rate must not produce zero-delay loops.
        let mut g = gen_for(0, WorkloadSpec::uniform32(1e9));
        for _ in 0..100 {
            assert!(g.next_interarrival_ns() >= 1);
        }
    }
}
