//! Link-fault schedules.
//!
//! The paper evaluates a fault-free steady state, but its whole premise —
//! independently deadlock-free escape and APM-alternate path sets — only
//! pays off when links *break*. A [`FaultSchedule`] carries timed
//! `LinkDown`/`LinkUp` events on switch–switch links, built
//! programmatically or parsed from CSV exactly like [`TrafficScript`]
//! (crate::TrafficScript); the simulator replays it
//! (`Network::with_faults`), dropping in-transit packets, masking dead
//! ports out of the routing options, and optionally triggering an SM
//! re-sweep or APM migration.

use iba_core::{IbaError, SimTime, SwitchId};
use serde::{Deserialize, Serialize};

/// What happens to the link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The link goes dead: in-buffer packets routed over it are flushed,
    /// packets on the wire are lost, and the port stops being a feasible
    /// routing option.
    LinkDown,
    /// The link comes back: ports are unmasked and credits restored.
    LinkUp,
}

/// One timed link event on the switch–switch link `a`–`b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the event takes effect.
    pub at: SimTime,
    /// Down or up.
    pub kind: FaultKind,
    /// One endpoint switch.
    pub a: SwitchId,
    /// The other endpoint switch.
    pub b: SwitchId,
}

/// A time-ordered list of link faults.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Build from a list of events (sorted by time internally; the
    /// relative order of same-instant entries is preserved).
    pub fn new(mut events: Vec<FaultEvent>) -> Result<FaultSchedule, IbaError> {
        for (i, e) in events.iter().enumerate() {
            if e.a == e.b {
                return Err(IbaError::InvalidConfig(format!(
                    "fault entry {i}: link endpoints are the same switch ({})",
                    e.a
                )));
            }
        }
        events.sort_by_key(|e| e.at);
        Ok(FaultSchedule { events })
    }

    /// A single permanent link failure at `at`.
    pub fn single(at: SimTime, a: SwitchId, b: SwitchId) -> Result<FaultSchedule, IbaError> {
        FaultSchedule::new(vec![FaultEvent {
            at,
            kind: FaultKind::LinkDown,
            a,
            b,
        }])
    }

    /// Parse from CSV lines of the form `time_ns,kind,switch_a,switch_b`
    /// where `kind` is `down`/`up` (or `0`/`1`). Header lines and lines
    /// starting with `#` are skipped.
    pub fn from_csv(text: &str) -> Result<FaultSchedule, IbaError> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("time") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() < 4 {
                return Err(IbaError::InvalidConfig(format!(
                    "fault line {}: expected 4 fields, got {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let parse = |s: &str, what: &str| -> Result<u64, IbaError> {
                s.parse().map_err(|_| {
                    IbaError::InvalidConfig(format!("fault line {}: bad {what} {s:?}", lineno + 1))
                })
            };
            let kind = match fields[1] {
                "down" | "0" => FaultKind::LinkDown,
                "up" | "1" => FaultKind::LinkUp,
                other => {
                    return Err(IbaError::InvalidConfig(format!(
                        "fault line {}: bad kind {other:?} (want down/up)",
                        lineno + 1
                    )))
                }
            };
            events.push(FaultEvent {
                at: SimTime::from_ns(parse(fields[0], "time")?),
                kind,
                a: SwitchId(parse(fields[2], "switch_a")? as u16),
                b: SwitchId(parse(fields[3], "switch_b")? as u16),
            });
        }
        FaultSchedule::new(events)
    }

    /// Render as CSV (the `from_csv` format, with header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,kind,switch_a,switch_b\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{}\n",
                e.at.as_ns(),
                match e.kind {
                    FaultKind::LinkDown => "down",
                    FaultKind::LinkUp => "up",
                },
                e.a.0,
                e.b.0
            ));
        }
        out
    }

    /// The events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the first event, if any.
    pub fn first_time(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }

    /// Largest switch id referenced (for population validation).
    pub fn max_switch(&self) -> Option<SwitchId> {
        self.events.iter().flat_map(|e| [e.a, e.b]).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: FaultKind, a: u16, b: u16) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_ns(at),
            kind,
            a: SwitchId(a),
            b: SwitchId(b),
        }
    }

    #[test]
    fn new_sorts_and_validates() {
        let s = FaultSchedule::new(vec![
            ev(300, FaultKind::LinkUp, 0, 1),
            ev(100, FaultKind::LinkDown, 0, 1),
        ])
        .unwrap();
        let times: Vec<u64> = s.events().iter().map(|e| e.at.as_ns()).collect();
        assert_eq!(times, vec![100, 300]);
        assert_eq!(s.first_time(), Some(SimTime::from_ns(100)));
        assert_eq!(s.max_switch(), Some(SwitchId(1)));
        assert!(FaultSchedule::new(vec![ev(1, FaultKind::LinkDown, 2, 2)]).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let s = FaultSchedule::new(vec![
            ev(1000, FaultKind::LinkDown, 3, 7),
            ev(5000, FaultKind::LinkUp, 3, 7),
        ])
        .unwrap();
        let csv = s.to_csv();
        assert!(csv.starts_with("time_ns,"));
        let back = FaultSchedule::from_csv(&csv).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn csv_parsing_tolerates_comments_and_rejects_junk() {
        let good = "# faults\ntime_ns,kind,switch_a,switch_b\n10, down, 0, 1\n20,1,1,2\n";
        let s = FaultSchedule::from_csv(good).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].kind, FaultKind::LinkDown);
        assert_eq!(s.events()[1].kind, FaultKind::LinkUp);
        assert!(FaultSchedule::from_csv("10,down,0\n").is_err()); // too few fields
        assert!(FaultSchedule::from_csv("10,sideways,0,1\n").is_err()); // bad kind
        assert!(FaultSchedule::from_csv("x,down,0,1\n").is_err()); // bad number
    }

    #[test]
    fn single_helper() {
        let s = FaultSchedule::single(SimTime::from_us(50), SwitchId(2), SwitchId(5)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.events()[0].kind, FaultKind::LinkDown);
        assert!(FaultSchedule::single(SimTime::ZERO, SwitchId(1), SwitchId(1)).is_err());
    }
}
