//! Link, switch and flap fault schedules.
//!
//! The paper evaluates a fault-free steady state, but its whole premise —
//! independently deadlock-free escape and APM-alternate path sets — only
//! pays off when the fabric *breaks*. A [`FaultSchedule`] carries timed
//! events, built programmatically or parsed from CSV exactly like
//! [`TrafficScript`] (crate::TrafficScript); the simulator replays it
//! (`NetworkBuilder::faults`), dropping in-transit packets, masking dead
//! ports out of the routing options, and optionally triggering an SM
//! re-sweep or APM migration. Beyond the clean `LinkDown`/`LinkUp`
//! pairs, the schedule models whole-switch death (`SwitchDown` takes
//! every attached port with it atomically) and bounded link flapping
//! ([`FaultSchedule::flapping_events`]).
//!
//! Construction validates window structure: every up must close a
//! matching down, no resource may go down twice without recovering in
//! between, and a link window may not overlap a switch window on either
//! of its endpoints (the switch death already owns that link).

use iba_core::{IbaError, SimTime, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What happens to the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The link goes dead: in-buffer packets routed over it are flushed,
    /// packets on the wire are lost, and the port stops being a feasible
    /// routing option.
    LinkDown,
    /// The link comes back: ports are unmasked and credits restored.
    LinkUp,
    /// The switch `a` dies: every attached port (links *and* host
    /// ports) goes down atomically; `b` is ignored and canonicalized to
    /// `a`.
    SwitchDown,
    /// The switch `a` comes back: all its ports are unmasked and
    /// credits resynchronized.
    SwitchUp,
}

impl FaultKind {
    fn is_down(self) -> bool {
        matches!(self, FaultKind::LinkDown | FaultKind::SwitchDown)
    }

    fn is_switch(self) -> bool {
        matches!(self, FaultKind::SwitchDown | FaultKind::SwitchUp)
    }

    fn name(self) -> &'static str {
        match self {
            FaultKind::LinkDown => "down",
            FaultKind::LinkUp => "up",
            FaultKind::SwitchDown => "switch_down",
            FaultKind::SwitchUp => "switch_up",
        }
    }
}

/// One timed fault event: a link event on the switch–switch link
/// `a`–`b`, or a switch event on `a` (with `b == a`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the event takes effect.
    pub at: SimTime,
    /// Down or up, link or switch.
    pub kind: FaultKind,
    /// One endpoint switch (or *the* switch, for switch events).
    pub a: SwitchId,
    /// The other endpoint switch; equal to `a` for switch events.
    pub b: SwitchId,
}

impl FaultEvent {
    /// A link-death event.
    pub fn link_down(at: SimTime, a: SwitchId, b: SwitchId) -> FaultEvent {
        FaultEvent {
            at,
            kind: FaultKind::LinkDown,
            a,
            b,
        }
    }

    /// A link-recovery event.
    pub fn link_up(at: SimTime, a: SwitchId, b: SwitchId) -> FaultEvent {
        FaultEvent {
            at,
            kind: FaultKind::LinkUp,
            a,
            b,
        }
    }

    /// A switch-death event.
    pub fn switch_down(at: SimTime, s: SwitchId) -> FaultEvent {
        FaultEvent {
            at,
            kind: FaultKind::SwitchDown,
            a: s,
            b: s,
        }
    }

    /// A switch-recovery event.
    pub fn switch_up(at: SimTime, s: SwitchId) -> FaultEvent {
        FaultEvent {
            at,
            kind: FaultKind::SwitchUp,
            a: s,
            b: s,
        }
    }
}

/// The resource a fault window occupies (link keys are unordered).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Resource {
    Link(SwitchId, SwitchId),
    Switch(SwitchId),
}

impl Resource {
    fn of(e: &FaultEvent) -> Resource {
        if e.kind.is_switch() {
            Resource::Switch(e.a)
        } else if e.a.0 <= e.b.0 {
            Resource::Link(e.a, e.b)
        } else {
            Resource::Link(e.b, e.a)
        }
    }

    fn describe(self) -> String {
        match self {
            Resource::Link(a, b) => format!("link {a}–{b}"),
            Resource::Switch(s) => format!("switch {s}"),
        }
    }
}

/// A time-ordered list of fault events.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Build from a list of events (sorted by time internally; the
    /// relative order of same-instant entries is preserved). Switch
    /// events get `b` canonicalized to `a`. Rejects malformed windows:
    /// an up without a preceding down, a resource going down twice
    /// without recovering (overlapping/duplicate windows), and a link
    /// window overlapping a switch window on either endpoint.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<FaultSchedule, IbaError> {
        for (i, e) in events.iter_mut().enumerate() {
            if e.kind.is_switch() {
                e.b = e.a; // canonical form: switch faults name one switch
            } else if e.a == e.b {
                return Err(IbaError::InvalidConfig(format!(
                    "fault entry {i}: link endpoints are the same switch ({})",
                    e.a
                )));
            }
        }
        events.sort_by_key(|e| e.at);
        Self::validate_windows(&events)?;
        Ok(FaultSchedule { events })
    }

    /// Window-structure validation over time-sorted events.
    fn validate_windows(events: &[FaultEvent]) -> Result<(), IbaError> {
        let mut open: BTreeMap<Resource, u64> = BTreeMap::new();
        // Closed and never-closed `[down, up)` windows per resource.
        let mut windows: Vec<(Resource, u64, u64)> = Vec::new();
        for e in events {
            let r = Resource::of(e);
            let t = e.at.as_ns();
            if e.kind.is_down() {
                if open.contains_key(&r) {
                    return Err(IbaError::InvalidConfig(format!(
                        "overlapping fault windows: {} goes down again at {t} ns \
                         while still down",
                        r.describe()
                    )));
                }
                open.insert(r, t);
            } else {
                let Some(start) = open.remove(&r) else {
                    return Err(IbaError::InvalidConfig(format!(
                        "{} comes up at {t} ns without a preceding down event",
                        r.describe()
                    )));
                };
                windows.push((r, start, t));
            }
        }
        for (r, start) in open {
            windows.push((r, start, u64::MAX)); // permanent fault
        }
        // A link window must not overlap a switch window on either of
        // its endpoints: the switch death already owns the link, and the
        // simulator could not attribute the shared down/up transitions.
        for (i, &(ra, a0, a1)) in windows.iter().enumerate() {
            for &(rb, b0, b1) in &windows[i + 1..] {
                let touches = match (ra, rb) {
                    (Resource::Link(x, y), Resource::Switch(s))
                    | (Resource::Switch(s), Resource::Link(x, y)) => s == x || s == y,
                    _ => false,
                };
                if touches && a0 < b1 && b0 < a1 {
                    return Err(IbaError::InvalidConfig(format!(
                        "overlapping fault windows: {} and {} share an endpoint \
                         and their down intervals intersect",
                        ra.describe(),
                        rb.describe()
                    )));
                }
            }
        }
        Ok(())
    }

    /// A single permanent link failure at `at`.
    pub fn single(at: SimTime, a: SwitchId, b: SwitchId) -> Result<FaultSchedule, IbaError> {
        FaultSchedule::new(vec![FaultEvent::link_down(at, a, b)])
    }

    /// Expand a bounded link flap — `cycles` down/up oscillations on the
    /// link `a`–`b` starting at `start`, each cycle `down_ns` dead then
    /// `up_ns` healthy — into plain events for composition into a
    /// larger schedule.
    pub fn flapping_events(
        start: SimTime,
        a: SwitchId,
        b: SwitchId,
        down_ns: u64,
        up_ns: u64,
        cycles: usize,
    ) -> Vec<FaultEvent> {
        let mut out = Vec::with_capacity(cycles * 2);
        let mut t = start.as_ns();
        for _ in 0..cycles {
            out.push(FaultEvent::link_down(SimTime::from_ns(t), a, b));
            out.push(FaultEvent::link_up(SimTime::from_ns(t + down_ns), a, b));
            t += down_ns + up_ns;
        }
        out
    }

    /// A schedule that is exactly one bounded flap
    /// ([`Self::flapping_events`]).
    pub fn flapping(
        start: SimTime,
        a: SwitchId,
        b: SwitchId,
        down_ns: u64,
        up_ns: u64,
        cycles: usize,
    ) -> Result<FaultSchedule, IbaError> {
        FaultSchedule::new(Self::flapping_events(start, a, b, down_ns, up_ns, cycles))
    }

    /// Parse from CSV lines of the form `time_ns,kind,switch_a,switch_b`
    /// where `kind` is `down`/`up` (or `0`/`1`) for link events and
    /// `switch_down`/`switch_up` for switch events (whose `switch_b`
    /// field is ignored). Header lines and lines starting with `#` are
    /// skipped.
    pub fn from_csv(text: &str) -> Result<FaultSchedule, IbaError> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("time") {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() < 4 {
                return Err(IbaError::InvalidConfig(format!(
                    "fault line {}: expected 4 fields, got {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let parse = |s: &str, what: &str| -> Result<u64, IbaError> {
                s.parse().map_err(|_| {
                    IbaError::InvalidConfig(format!("fault line {}: bad {what} {s:?}", lineno + 1))
                })
            };
            let kind = match fields[1] {
                "down" | "0" => FaultKind::LinkDown,
                "up" | "1" => FaultKind::LinkUp,
                "switch_down" => FaultKind::SwitchDown,
                "switch_up" => FaultKind::SwitchUp,
                other => {
                    return Err(IbaError::InvalidConfig(format!(
                        "fault line {}: bad kind {other:?} \
                         (want down/up/switch_down/switch_up)",
                        lineno + 1
                    )))
                }
            };
            events.push(FaultEvent {
                at: SimTime::from_ns(parse(fields[0], "time")?),
                kind,
                a: SwitchId(parse(fields[2], "switch_a")? as u16),
                b: SwitchId(parse(fields[3], "switch_b")? as u16),
            });
        }
        FaultSchedule::new(events)
    }

    /// Render as CSV (the `from_csv` format, with header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,kind,switch_a,switch_b\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{}\n",
                e.at.as_ns(),
                e.kind.name(),
                e.a.0,
                e.b.0
            ));
        }
        out
    }

    /// The events, time-ordered.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the first event, if any.
    pub fn first_time(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }

    /// Largest switch id referenced (for population validation).
    pub fn max_switch(&self) -> Option<SwitchId> {
        self.events.iter().flat_map(|e| [e.a, e.b]).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ev(at: u64, kind: FaultKind, a: u16, b: u16) -> FaultEvent {
        FaultEvent {
            at: SimTime::from_ns(at),
            kind,
            a: SwitchId(a),
            b: SwitchId(b),
        }
    }

    #[test]
    fn new_sorts_and_validates() {
        let s = FaultSchedule::new(vec![
            ev(300, FaultKind::LinkUp, 0, 1),
            ev(100, FaultKind::LinkDown, 0, 1),
        ])
        .unwrap();
        let times: Vec<u64> = s.events().iter().map(|e| e.at.as_ns()).collect();
        assert_eq!(times, vec![100, 300]);
        assert_eq!(s.first_time(), Some(SimTime::from_ns(100)));
        assert_eq!(s.max_switch(), Some(SwitchId(1)));
        assert!(FaultSchedule::new(vec![ev(1, FaultKind::LinkDown, 2, 2)]).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let s = FaultSchedule::new(vec![
            ev(1000, FaultKind::LinkDown, 3, 7),
            ev(5000, FaultKind::LinkUp, 3, 7),
            ev(2000, FaultKind::SwitchDown, 4, 4),
            ev(6000, FaultKind::SwitchUp, 4, 4),
        ])
        .unwrap();
        let csv = s.to_csv();
        assert!(csv.starts_with("time_ns,"));
        let back = FaultSchedule::from_csv(&csv).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn csv_parsing_tolerates_comments_and_rejects_junk() {
        let good = "# faults\ntime_ns,kind,switch_a,switch_b\n10, down, 0, 1\n20,1,1,0\n";
        let s = FaultSchedule::from_csv(good).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].kind, FaultKind::LinkDown);
        assert_eq!(s.events()[1].kind, FaultKind::LinkUp);
        assert!(FaultSchedule::from_csv("10,down,0\n").is_err()); // too few fields
        assert!(FaultSchedule::from_csv("10,sideways,0,1\n").is_err()); // bad kind
        assert!(FaultSchedule::from_csv("x,down,0,1\n").is_err()); // bad number
    }

    #[test]
    fn single_helper() {
        let s = FaultSchedule::single(SimTime::from_us(50), SwitchId(2), SwitchId(5)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.events()[0].kind, FaultKind::LinkDown);
        assert!(FaultSchedule::single(SimTime::ZERO, SwitchId(1), SwitchId(1)).is_err());
    }

    #[test]
    fn switch_events_canonicalize_and_parse() {
        let s = FaultSchedule::new(vec![ev(10, FaultKind::SwitchDown, 3, 9)]).unwrap();
        assert_eq!(s.events()[0].b, SwitchId(3), "b canonicalized to a");
        assert_eq!(s.max_switch(), Some(SwitchId(3)));
        let parsed = FaultSchedule::from_csv("5,switch_down,2,2\n9,switch_up,2,2\n").unwrap();
        assert_eq!(parsed.events()[0].kind, FaultKind::SwitchDown);
        assert_eq!(parsed.events()[1].kind, FaultKind::SwitchUp);
    }

    #[test]
    fn flapping_expands_to_bounded_oscillation() {
        let s = FaultSchedule::flapping(
            SimTime::from_us(10),
            SwitchId(0),
            SwitchId(1),
            2_000,
            3_000,
            3,
        )
        .unwrap();
        assert_eq!(s.len(), 6);
        let kinds: Vec<FaultKind> = s.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::LinkDown,
                FaultKind::LinkUp,
                FaultKind::LinkDown,
                FaultKind::LinkUp,
                FaultKind::LinkDown,
                FaultKind::LinkUp,
            ]
        );
        assert_eq!(s.events()[0].at.as_ns(), 10_000);
        assert_eq!(s.events()[5].at.as_ns(), 10_000 + 2 * 5_000 + 2_000);
    }

    #[test]
    fn up_before_down_is_rejected_with_clear_error() {
        let err = FaultSchedule::new(vec![ev(100, FaultKind::LinkUp, 0, 1)]).unwrap_err();
        assert!(
            err.to_string().contains("without a preceding down"),
            "{err}"
        );
        let err = FaultSchedule::new(vec![ev(100, FaultKind::SwitchUp, 2, 2)]).unwrap_err();
        assert!(
            err.to_string().contains("without a preceding down"),
            "{err}"
        );
        // An up on a *different* link does not close the window.
        let err = FaultSchedule::new(vec![
            ev(100, FaultKind::LinkDown, 0, 1),
            ev(200, FaultKind::LinkUp, 0, 2),
        ])
        .unwrap_err();
        assert!(
            err.to_string().contains("without a preceding down"),
            "{err}"
        );
    }

    #[test]
    fn duplicate_and_overlapping_windows_are_rejected() {
        // Same link down twice with no recovery (link keys are unordered).
        let err = FaultSchedule::new(vec![
            ev(100, FaultKind::LinkDown, 0, 1),
            ev(200, FaultKind::LinkDown, 1, 0),
        ])
        .unwrap_err();
        assert!(
            err.to_string().contains("overlapping fault windows"),
            "{err}"
        );
        // Same switch down twice.
        let err = FaultSchedule::new(vec![
            ev(100, FaultKind::SwitchDown, 4, 4),
            ev(150, FaultKind::SwitchDown, 4, 4),
        ])
        .unwrap_err();
        assert!(
            err.to_string().contains("overlapping fault windows"),
            "{err}"
        );
        // A link window overlapping a switch window on an endpoint.
        let err = FaultSchedule::new(vec![
            ev(100, FaultKind::SwitchDown, 1, 1),
            ev(150, FaultKind::LinkDown, 0, 1),
            ev(300, FaultKind::SwitchUp, 1, 1),
            ev(400, FaultKind::LinkUp, 0, 1),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("share an endpoint"), "{err}");
        // Disjoint-in-time windows on the same resources are fine.
        FaultSchedule::new(vec![
            ev(100, FaultKind::SwitchDown, 1, 1),
            ev(200, FaultKind::SwitchUp, 1, 1),
            ev(300, FaultKind::LinkDown, 0, 1),
            ev(400, FaultKind::LinkUp, 0, 1),
        ])
        .unwrap();
        // Switch windows on *different* switches may overlap.
        FaultSchedule::new(vec![
            ev(100, FaultKind::SwitchDown, 1, 1),
            ev(150, FaultKind::SwitchDown, 2, 2),
            ev(300, FaultKind::SwitchUp, 1, 1),
            ev(350, FaultKind::SwitchUp, 2, 2),
        ])
        .unwrap();
    }

    /// Build a valid schedule from proptest-chosen raw material:
    /// `links` resources each get `windows` sequential down/up windows.
    fn valid_schedule(links: &[(u16, u16)], windows: usize, base_gap: u64) -> FaultSchedule {
        let mut events = Vec::new();
        for (i, &(a, b)) in links.iter().enumerate() {
            let mut t = 1_000 + i as u64; // distinct start per resource
            for _ in 0..windows {
                if a == b {
                    events.push(FaultEvent::switch_down(SimTime::from_ns(t), SwitchId(a)));
                    events.push(FaultEvent::switch_up(
                        SimTime::from_ns(t + base_gap),
                        SwitchId(a),
                    ));
                } else {
                    events.push(FaultEvent::link_down(
                        SimTime::from_ns(t),
                        SwitchId(a),
                        SwitchId(b),
                    ));
                    events.push(FaultEvent::link_up(
                        SimTime::from_ns(t + base_gap),
                        SwitchId(a),
                        SwitchId(b),
                    ));
                }
                t += 2 * base_gap + 1;
            }
        }
        FaultSchedule::new(events).expect("constructed schedule is valid")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_csv_roundtrip(
            windows in 1usize..4,
            gap in 1u64..10_000,
            raw in proptest::collection::vec((0u16..40, 0u16..40), 1..6),
        ) {
            // Distinct resources only: duplicate picks would create
            // overlapping windows across loop iterations at our fixed
            // start offsets; dedup instead of discarding the case.
            let mut links: Vec<(u16, u16)> = raw
                .into_iter()
                .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                .collect();
            links.sort_unstable();
            links.dedup();
            // Drop links touching a switch that also has a switch window.
            let switches: Vec<u16> =
                links.iter().filter(|(a, b)| a == b).map(|&(a, _)| a).collect();
            links.retain(|&(a, b)| a == b || (!switches.contains(&a) && !switches.contains(&b)));
            let s = valid_schedule(&links, windows, gap);
            let back = FaultSchedule::from_csv(&s.to_csv()).unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn prop_up_before_down_rejected(
            t in 0u64..1_000_000,
            a in 0u16..64,
            b in 0u16..64,
            switch_kind in any::<bool>(),
        ) {
            prop_assume!(a != b);
            let e = if switch_kind {
                FaultEvent::switch_up(SimTime::from_ns(t), SwitchId(a))
            } else {
                FaultEvent::link_up(SimTime::from_ns(t), SwitchId(a), SwitchId(b))
            };
            let err = FaultSchedule::new(vec![e]).unwrap_err();
            prop_assert!(err.to_string().contains("without a preceding down"));
        }

        #[test]
        fn prop_double_down_rejected(
            t1 in 0u64..1_000,
            dt in 0u64..1_000,
            a in 0u16..64,
            b in 0u16..64,
        ) {
            prop_assume!(a != b);
            // The second down may name the link from either direction.
            let err = FaultSchedule::new(vec![
                FaultEvent::link_down(SimTime::from_ns(t1), SwitchId(a), SwitchId(b)),
                FaultEvent::link_down(SimTime::from_ns(t1 + dt), SwitchId(b), SwitchId(a)),
            ])
            .unwrap_err();
            prop_assert!(err.to_string().contains("overlapping fault windows"));
        }

        #[test]
        fn prop_link_window_inside_switch_window_rejected(
            start in 0u64..1_000,
            len in 2u64..1_000,
            s in 0u16..32,
            peer in 0u16..32,
        ) {
            prop_assume!(s != peer);
            let err = FaultSchedule::new(vec![
                FaultEvent::switch_down(SimTime::from_ns(start), SwitchId(s)),
                FaultEvent::link_down(
                    SimTime::from_ns(start + 1),
                    SwitchId(s),
                    SwitchId(peer),
                ),
                FaultEvent::link_up(
                    SimTime::from_ns(start + len),
                    SwitchId(s),
                    SwitchId(peer),
                ),
                FaultEvent::switch_up(SimTime::from_ns(start + len + 1), SwitchId(s)),
            ])
            .unwrap_err();
            prop_assert!(err.to_string().contains("share an endpoint"));
        }
    }
}
