//! Destination distributions.
//!
//! A [`TrafficPattern`] is a pure description; [`DestinationSampler`]
//! binds it to a host population and a random stream. Patterns never
//! return the source itself as destination — self-addressed packets make
//! no sense for the paper's metrics — so deterministic permutations remap
//! their fixed points to the bit-complement of the source.

use iba_core::HostId;
use iba_engine::rng::{StreamKind, StreamRng};
use serde::{Deserialize, Serialize};

/// A destination distribution over hosts.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Uniform over all hosts except the source.
    Uniform,
    /// Bit-reversal permutation of the host index (the paper's second
    /// pattern; creates stable local congestion areas).
    BitReversal,
    /// A fraction of traffic goes to one randomly selected host, the rest
    /// is uniform (the paper uses 5, 10 and 20 %).
    HotSpot {
        /// Fraction of packets addressed to the hot-spot host, in `[0,1]`.
        fraction: f64,
    },
    /// Matrix-transpose permutation (swap high and low index halves).
    Transpose,
    /// Bit-complement permutation.
    Complement,
    /// A fixed random permutation of the hosts (fixed-point free).
    Permutation,
}

impl TrafficPattern {
    /// The paper's hot-spot configurations.
    pub fn hotspot_percent(percent: u32) -> TrafficPattern {
        TrafficPattern::HotSpot {
            fraction: percent as f64 / 100.0,
        }
    }

    /// Short machine-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            TrafficPattern::Uniform => "uniform".into(),
            TrafficPattern::BitReversal => "bit-reversal".into(),
            TrafficPattern::HotSpot { fraction } => {
                format!("hotspot-{:.0}%", fraction * 100.0)
            }
            TrafficPattern::Transpose => "transpose".into(),
            TrafficPattern::Complement => "complement".into(),
            TrafficPattern::Permutation => "permutation".into(),
        }
    }
}

fn index_bits(num_hosts: usize) -> u32 {
    debug_assert!(num_hosts >= 2);
    usize::BITS - (num_hosts - 1).leading_zeros()
}

fn reverse_bits(v: usize, bits: u32) -> usize {
    (v.reverse_bits()) >> (usize::BITS - bits)
}

fn complement(v: usize, bits: u32) -> usize {
    !v & ((1usize << bits) - 1)
}

fn transpose(v: usize, bits: u32) -> usize {
    let half = bits / 2;
    let low_mask = (1usize << half) - 1;
    let low = v & low_mask;
    let high = v >> half;
    (low << (bits - half)) | high
}

/// A [`TrafficPattern`] bound to a host population and a random stream.
///
/// Deterministic permutations (bit-reversal, transpose, complement) are
/// applied to the *switch* part of the host index when `group_size > 1`:
/// hosts are numbered consecutively per switch (`group_size` per switch),
/// and host `g·s + j` sends to host `g·perm(s) + j`. This is the
/// congestion-bearing interpretation of the paper's bit-reversal pattern
/// ("creates some local congestion areas"): all `g` hosts of a switch
/// address the same remote switch, so the deterministic path between the
/// pair concentrates `g` flows. With `group_size = 1` the permutations
/// act on the raw host index (which spreads demand almost perfectly and
/// exercises no congestion).
#[derive(Clone, Debug)]
pub struct DestinationSampler {
    pattern: TrafficPattern,
    num_hosts: usize,
    /// Hosts per switch for group-wise permutations (≥ 1).
    group: usize,
    /// Bits of the permuted index (switch index when `group > 1`).
    bits: u32,
    /// The selected hot-spot host (hot-spot pattern only).
    hotspot: Option<HostId>,
    /// Precomputed permutation (permutation pattern only).
    perm: Option<Vec<u16>>,
    rng: StreamRng,
}

impl DestinationSampler {
    /// Bind `pattern` to a population of `num_hosts` hosts (must be at
    /// least 2), with permutations acting on the raw host index.
    pub fn new(pattern: TrafficPattern, num_hosts: usize, seed_rng: &StreamRng) -> Self {
        Self::with_groups(pattern, num_hosts, 1, seed_rng)
    }

    /// Bind `pattern` with `group_size` hosts per switch: deterministic
    /// permutations act on the switch index, preserving the within-switch
    /// offset. Random choices (hot-spot host, permutation) come from the
    /// `Traffic` substream of `seed_rng`, so they are shared by all hosts
    /// of one simulation.
    pub fn with_groups(
        pattern: TrafficPattern,
        num_hosts: usize,
        group_size: usize,
        seed_rng: &StreamRng,
    ) -> Self {
        assert!(num_hosts >= 2, "need at least two hosts");
        // Group-wise permutation requires a uniform division into groups
        // of at least 2; fall back to raw-index permutations otherwise.
        let group = if group_size >= 1
            && num_hosts.is_multiple_of(group_size)
            && num_hosts / group_size >= 2
        {
            group_size
        } else {
            1
        };
        let mut rng = seed_rng.derive(StreamKind::Traffic);
        let hotspot = match pattern {
            TrafficPattern::HotSpot { .. } => Some(HostId(rng.below(num_hosts) as u16)),
            _ => None,
        };
        let perm = match pattern {
            TrafficPattern::Permutation => {
                let units = (num_hosts / group) as u16;
                let mut p: Vec<u16> = (0..units).collect();
                rng.shuffle(&mut p);
                // Break fixed points by swapping with a neighbor.
                for i in 0..p.len() {
                    if p[i] as usize == i {
                        let j = (i + 1) % p.len();
                        p.swap(i, j);
                    }
                }
                Some(p)
            }
            _ => None,
        };
        DestinationSampler {
            pattern,
            num_hosts,
            group,
            bits: index_bits(num_hosts / group),
            hotspot,
            perm,
            rng,
        }
    }

    /// The pattern being sampled.
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Replace the draw stream, keeping the pattern-level choices
    /// (hot-spot host, permutation). Used to give each host an
    /// independent stream while all hosts share the same hot spot.
    pub fn with_draw_stream(mut self, rng: StreamRng) -> Self {
        self.rng = rng;
        self
    }

    /// The hot-spot host, if the pattern has one.
    pub fn hotspot(&self) -> Option<HostId> {
        self.hotspot
    }

    fn uniform_excluding(&mut self, src: HostId) -> HostId {
        // Draw from n−1 candidates and skip over the source.
        let r = self.rng.below(self.num_hosts - 1);
        let dst = if r >= src.index() { r + 1 } else { r };
        HostId(dst as u16)
    }

    /// Apply a permutation of the (possibly switch-level) index to `src`,
    /// remapping fixed points and out-of-range results.
    fn apply_perm(&self, src: HostId, perm: impl Fn(usize, u32) -> usize) -> HostId {
        let (unit, offset) = (src.index() / self.group, src.index() % self.group);
        let units = self.num_hosts / self.group;
        let mut dst = perm(unit, self.bits);
        if dst >= units || dst == unit {
            // Out-of-range (non-power-of-two populations) or fixed point:
            // fall back to the bit-complement, which never equals the
            // source unit before the fold, and step off it if the modulo
            // folds back.
            dst = complement(unit, self.bits) % units;
            if dst == unit {
                dst = (dst + 1) % units;
            }
        }
        HostId((dst * self.group + offset) as u16)
    }

    /// Draw the destination for a packet generated by `src`.
    pub fn sample(&mut self, src: HostId) -> HostId {
        match self.pattern {
            TrafficPattern::Uniform => self.uniform_excluding(src),
            TrafficPattern::BitReversal => self.apply_perm(src, reverse_bits),
            TrafficPattern::HotSpot { fraction } => {
                let hs = self.hotspot.expect("hotspot chosen at construction");
                if src != hs && self.rng.chance(fraction) {
                    hs
                } else {
                    self.uniform_excluding(src)
                }
            }
            TrafficPattern::Transpose => self.apply_perm(src, transpose),
            TrafficPattern::Complement => self.apply_perm(src, complement),
            TrafficPattern::Permutation => {
                let perm = self.perm.clone().expect("permutation precomputed");
                self.apply_perm(src, move |unit, _| perm[unit] as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sampler(pattern: TrafficPattern, hosts: usize, seed: u64) -> DestinationSampler {
        DestinationSampler::new(pattern, hosts, &StreamRng::from_seed(seed))
    }

    #[test]
    fn uniform_never_self_and_covers_all() {
        let mut s = sampler(TrafficPattern::Uniform, 8, 1);
        let mut seen = [0usize; 8];
        for _ in 0..8000 {
            let d = s.sample(HostId(3));
            assert_ne!(d, HostId(3));
            seen[d.index()] += 1;
        }
        assert_eq!(seen[3], 0);
        for (i, &c) in seen.iter().enumerate() {
            if i != 3 {
                assert!(c > 800, "host {i} undersampled: {c}");
            }
        }
    }

    #[test]
    fn bit_reversal_is_the_expected_permutation() {
        let mut s = sampler(TrafficPattern::BitReversal, 16, 2);
        // 16 hosts → 4 bits: 0b0001 → 0b1000.
        assert_eq!(s.sample(HostId(1)), HostId(8));
        assert_eq!(s.sample(HostId(3)), HostId(12));
        // Palindrome 0b0110 → itself → remapped to complement 0b1001.
        assert_eq!(s.sample(HostId(6)), HostId(9));
    }

    #[test]
    fn bit_reversal_is_deterministic() {
        let mut a = sampler(TrafficPattern::BitReversal, 256, 3);
        let mut b = sampler(TrafficPattern::BitReversal, 256, 99);
        for h in 0..256u16 {
            // Pattern is a fixed permutation: independent of the seed.
            assert_eq!(a.sample(HostId(h)), b.sample(HostId(h)));
        }
    }

    #[test]
    fn hotspot_receives_the_configured_fraction() {
        let mut s = sampler(TrafficPattern::hotspot_percent(20), 32, 4);
        let hs = s.hotspot().unwrap();
        let mut to_hs = 0;
        let n = 20_000;
        for i in 0..n {
            let src = HostId((i % 32) as u16);
            if src == hs {
                continue;
            }
            if s.sample(src) == hs {
                to_hs += 1;
            }
        }
        // ~20 % plus the uniform share (1/31) of the remaining 80 %.
        let expected = 0.20 + 0.80 / 31.0;
        let got = to_hs as f64 / (n as f64 * 31.0 / 32.0);
        assert!(
            (got - expected).abs() < 0.02,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn hotspot_host_does_not_send_to_itself() {
        let mut s = sampler(TrafficPattern::hotspot_percent(50), 8, 5);
        let hs = s.hotspot().unwrap();
        for _ in 0..1000 {
            assert_ne!(s.sample(hs), hs);
        }
    }

    #[test]
    fn complement_and_transpose_are_fixed_permutations() {
        let mut s = sampler(TrafficPattern::Complement, 16, 6);
        assert_eq!(s.sample(HostId(0)), HostId(15));
        assert_eq!(s.sample(HostId(5)), HostId(10));
        let mut t = sampler(TrafficPattern::Transpose, 16, 6);
        // 4 bits, halves of 2: 0b0111 → 0b1101.
        assert_eq!(t.sample(HostId(0b0111)), HostId(0b1101));
    }

    #[test]
    fn permutation_is_fixed_point_free_and_seed_dependent() {
        let mut a = sampler(TrafficPattern::Permutation, 64, 7);
        let mut b = sampler(TrafficPattern::Permutation, 64, 8);
        let mut differs = false;
        for h in 0..64u16 {
            let da = a.sample(HostId(h));
            assert_ne!(da, HostId(h));
            // Permutation is stable across draws.
            assert_eq!(a.sample(HostId(h)), da);
            if b.sample(HostId(h)) != da {
                differs = true;
            }
        }
        assert!(differs);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TrafficPattern::Uniform.name(), "uniform");
        assert_eq!(TrafficPattern::hotspot_percent(10).name(), "hotspot-10%");
        assert_eq!(TrafficPattern::BitReversal.name(), "bit-reversal");
    }

    proptest! {
        /// No pattern ever samples the source itself, for any population
        /// size (including non-powers of two) and any source.
        #[test]
        fn prop_never_self(hosts in 2usize..300, src_frac in 0.0f64..1.0, pat in 0usize..6, seed in any::<u64>()) {
            let pattern = [
                TrafficPattern::Uniform,
                TrafficPattern::BitReversal,
                TrafficPattern::hotspot_percent(10),
                TrafficPattern::Transpose,
                TrafficPattern::Complement,
                TrafficPattern::Permutation,
            ][pat];
            let src = HostId(((src_frac * hosts as f64) as usize).min(hosts - 1) as u16);
            let mut s = sampler(pattern, hosts, seed);
            for _ in 0..20 {
                let d = s.sample(src);
                prop_assert!(d.index() < hosts);
                prop_assert_ne!(d, src);
            }
        }
    }
}
