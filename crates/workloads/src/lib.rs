//! # iba-workloads
//!
//! Synthetic traffic for the iba-far simulator.
//!
//! The paper's evaluation (§5.1) drives the network with three
//! destination distributions — uniform, bit-reversal and hot-spot (5, 10
//! or 20 % of traffic to one randomly chosen host) — at 32-byte and
//! 256-byte packet sizes, while sweeping the fraction of packets marked
//! *adaptive* from 0 % to 100 % (§5.2.1).
//!
//! * [`patterns`] — destination distributions (the paper's three plus
//!   transpose, complement and random-permutation extras used by tests
//!   and ablations);
//! * [`injection`] — open-loop injection processes (Poisson or periodic)
//!   parameterized by a byte rate, plus the per-packet adaptive marking;
//! * [`script`] — explicit trace-driven injection (CSV-parsable), for
//!   replaying application communication patterns;
//! * [`faults`] — timed link-down/link-up schedules (CSV-parsable) for
//!   fault-injection and recovery experiments.

#![warn(missing_docs)]

pub mod faults;
pub mod injection;
pub mod patterns;
pub mod script;

pub use faults::{FaultEvent, FaultKind, FaultSchedule};
pub use injection::{GeneratedPacket, HostGenerator, InjectionProcess, WorkloadSpec};
pub use patterns::{DestinationSampler, TrafficPattern};
pub use script::{PathSet, ScriptedPacket, TrafficScript};
