//! Structural metrics of a topology.
//!
//! Used by the experiment reports (topology summaries accompany every
//! table) and by tests that assert ensemble-level properties of the
//! random generator.

use crate::graph::Topology;
use serde::{Deserialize, Serialize};

/// Summary statistics of a switch graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyMetrics {
    /// Number of switches.
    pub switches: usize,
    /// Number of hosts.
    pub hosts: usize,
    /// Number of undirected inter-switch links.
    pub switch_links: usize,
    /// Longest shortest path between any two switches.
    pub diameter: u32,
    /// Mean shortest-path length over ordered switch pairs (excluding
    /// self-pairs).
    pub avg_distance: f64,
    /// Minimum inter-switch degree.
    pub min_degree: usize,
    /// Maximum inter-switch degree.
    pub max_degree: usize,
}

impl TopologyMetrics {
    /// Compute all metrics for `topo`.
    pub fn compute(topo: &Topology) -> TopologyMetrics {
        let dist = topo.switch_distances();
        let n = topo.num_switches();
        let mut diameter = 0u32;
        let mut sum = 0u64;
        let mut pairs = 0u64;
        for (i, row) in dist.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if i != j && d != u32::MAX {
                    diameter = diameter.max(d);
                    sum += d as u64;
                    pairs += 1;
                }
            }
        }
        let degrees: Vec<usize> = topo.switch_ids().map(|s| topo.switch_degree(s)).collect();
        TopologyMetrics {
            switches: n,
            hosts: topo.num_hosts(),
            switch_links: topo.num_switch_links(),
            diameter,
            avg_distance: if pairs == 0 {
                0.0
            } else {
                sum as f64 / pairs as f64
            },
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for TopologyMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} switches, {} hosts, {} links, degree {}..{}, diameter {}, avg distance {:.2}",
            self.switches,
            self.hosts,
            self.switch_links,
            self.min_degree,
            self.max_degree,
            self.diameter,
            self.avg_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irregular::IrregularConfig;
    use crate::regular;

    #[test]
    fn ring_metrics_exact() {
        let m = TopologyMetrics::compute(&regular::ring(8, 1).unwrap());
        assert_eq!(m.switches, 8);
        assert_eq!(m.switch_links, 8);
        assert_eq!(m.diameter, 4);
        assert_eq!(m.min_degree, 2);
        assert_eq!(m.max_degree, 2);
        // Ring of 8: distances 1,2,3,4,3,2,1 from any node → avg 16/7.
        assert!((m.avg_distance - 16.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn complete_metrics_exact() {
        let m = TopologyMetrics::compute(&regular::complete(6, 1).unwrap());
        assert_eq!(m.diameter, 1);
        assert!((m.avg_distance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn irregular_metrics_are_sane() {
        let t = IrregularConfig::paper(32, 3).generate().unwrap();
        let m = TopologyMetrics::compute(&t);
        assert_eq!(m.switches, 32);
        assert_eq!(m.hosts, 128);
        assert_eq!(m.min_degree, 4);
        assert_eq!(m.max_degree, 4);
        assert_eq!(m.switch_links, 64);
        assert!(
            m.diameter >= 2,
            "a 4-regular 32-switch graph cannot have diameter 1"
        );
        assert!(m.avg_distance > 1.0 && m.avg_distance < 10.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let m = TopologyMetrics::compute(&regular::ring(8, 1).unwrap());
        let s = m.to_string();
        assert!(s.contains("8 switches") && s.contains("diameter 4"));
    }
}
