//! Unified, serializable topology specification.
//!
//! The experiment harness, the routing-engine zoo and the test suite all
//! need to name a fabric shape *as data* — sweep over it, print it in a
//! report, round-trip it through JSON — instead of calling one of the
//! per-shape generator functions directly. [`TopologySpec`] is that
//! name: one enum variant per generator, with
//! [`TopologySpec::generate`] (or the [`Topology::generate`]
//! convenience) dispatching to the existing generators in
//! [`crate::irregular`] and [`crate::regular`], which remain the single
//! source of wiring truth — the spec layer adds no wiring of its own
//! except the [`TopologySpec::Dragonfly`] generator, which lives here.
//!
//! The `seed` parameter only influences the [`TopologySpec::Irregular`]
//! variant (the paper's random ensembles); the regular shapes are fully
//! determined by their parameters and ignore it, so a `(spec, seed)`
//! pair is always a complete, reproducible fabric description.

use crate::graph::{Topology, TopologyBuilder};
use crate::irregular::IrregularConfig;
use crate::regular;
use iba_core::{IbaError, SwitchId};
use serde::{Deserialize, Serialize};

/// A complete description of a fabric shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "shape", rename_all = "snake_case")]
pub enum TopologySpec {
    /// The paper's random irregular fabric (§5.1): fixed switch degree,
    /// single links between neighbors, seeded.
    Irregular {
        /// Number of switches.
        switches: usize,
        /// Inter-switch links per switch (the paper uses 4 or 6).
        inter_switch_links: usize,
        /// Hosts attached to every switch (the paper uses 4).
        hosts_per_switch: usize,
    },
    /// A bidirectional ring.
    Ring {
        /// Number of switches (≥ 3).
        switches: usize,
        /// Hosts attached to every switch.
        hosts_per_switch: usize,
    },
    /// A linear chain.
    Chain {
        /// Number of switches (≥ 2).
        switches: usize,
        /// Hosts attached to every switch.
        hosts_per_switch: usize,
    },
    /// A `rows × cols` 2-D mesh.
    Mesh2D {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Hosts attached to every switch.
        hosts_per_switch: usize,
    },
    /// A `rows × cols` 2-D torus (`rows, cols ≥ 3`).
    Torus2D {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Hosts attached to every switch.
        hosts_per_switch: usize,
    },
    /// A hypercube of `2^dim` switches.
    Hypercube {
        /// Dimension (1..=10).
        dim: u32,
        /// Hosts attached to every switch.
        hosts_per_switch: usize,
    },
    /// A fully connected switch graph.
    FullMesh {
        /// Number of switches (≥ 2).
        switches: usize,
        /// Hosts attached to every switch.
        hosts_per_switch: usize,
    },
    /// A canonical one-level dragonfly: `groups` groups of
    /// `switches_per_group` switches, complete graph inside each group,
    /// exactly one global link between every pair of groups, spread
    /// round-robin over each group's `global_links_per_switch ×
    /// switches_per_group` global ports.
    Dragonfly {
        /// Number of groups (≥ 2).
        groups: usize,
        /// Switches per group (intra-group complete graph).
        switches_per_group: usize,
        /// Global-link ports per switch.
        global_links_per_switch: usize,
        /// Hosts attached to every switch.
        hosts_per_switch: usize,
    },
}

impl TopologySpec {
    /// Generate the fabric. `seed` only affects [`Self::Irregular`].
    pub fn generate(&self, seed: u64) -> Result<Topology, IbaError> {
        match *self {
            TopologySpec::Irregular {
                switches,
                inter_switch_links,
                hosts_per_switch,
            } => IrregularConfig {
                switches,
                inter_switch_links,
                hosts_per_switch,
                seed,
            }
            .generate(),
            TopologySpec::Ring {
                switches,
                hosts_per_switch,
            } => regular::ring(switches, hosts_per_switch),
            TopologySpec::Chain {
                switches,
                hosts_per_switch,
            } => regular::chain(switches, hosts_per_switch),
            TopologySpec::Mesh2D {
                rows,
                cols,
                hosts_per_switch,
            } => regular::mesh2d(rows, cols, hosts_per_switch),
            TopologySpec::Torus2D {
                rows,
                cols,
                hosts_per_switch,
            } => regular::torus2d(rows, cols, hosts_per_switch),
            TopologySpec::Hypercube {
                dim,
                hosts_per_switch,
            } => regular::hypercube(dim, hosts_per_switch),
            TopologySpec::FullMesh {
                switches,
                hosts_per_switch,
            } => regular::complete(switches, hosts_per_switch),
            TopologySpec::Dragonfly {
                groups,
                switches_per_group,
                global_links_per_switch,
                hosts_per_switch,
            } => dragonfly(
                groups,
                switches_per_group,
                global_links_per_switch,
                hosts_per_switch,
            ),
        }
    }

    /// Compact stable name for reports and result files, e.g.
    /// `irregular16x4`, `torus8x8`, `fullmesh64`, `dragonfly9x3`.
    pub fn name(&self) -> String {
        match *self {
            TopologySpec::Irregular {
                switches,
                inter_switch_links,
                ..
            } => format!("irregular{switches}x{inter_switch_links}"),
            TopologySpec::Ring { switches, .. } => format!("ring{switches}"),
            TopologySpec::Chain { switches, .. } => format!("chain{switches}"),
            TopologySpec::Mesh2D { rows, cols, .. } => format!("mesh{rows}x{cols}"),
            TopologySpec::Torus2D { rows, cols, .. } => format!("torus{rows}x{cols}"),
            TopologySpec::Hypercube { dim, .. } => format!("hypercube{dim}"),
            TopologySpec::FullMesh { switches, .. } => format!("fullmesh{switches}"),
            TopologySpec::Dragonfly {
                groups,
                switches_per_group,
                ..
            } => format!("dragonfly{groups}x{switches_per_group}"),
        }
    }

    /// Total switch count of the generated fabric.
    pub fn num_switches(&self) -> usize {
        match *self {
            TopologySpec::Irregular { switches, .. }
            | TopologySpec::Ring { switches, .. }
            | TopologySpec::Chain { switches, .. }
            | TopologySpec::FullMesh { switches, .. } => switches,
            TopologySpec::Mesh2D { rows, cols, .. } | TopologySpec::Torus2D { rows, cols, .. } => {
                rows * cols
            }
            TopologySpec::Hypercube { dim, .. } => 1usize << dim,
            TopologySpec::Dragonfly {
                groups,
                switches_per_group,
                ..
            } => groups * switches_per_group,
        }
    }
}

impl Topology {
    /// Generate a fabric from a spec — convenience alias for
    /// [`TopologySpec::generate`].
    pub fn generate(spec: &TopologySpec, seed: u64) -> Result<Topology, IbaError> {
        spec.generate(seed)
    }
}

/// The canonical one-level dragonfly. Group `x`'s global slot for peer
/// group `y` is `y` when `y < x`, else `y − 1`; slot `k` lands on switch
/// `k / h` of the group (`h` = global links per switch). Requires
/// `groups − 1 ≤ switches_per_group × h` so every group can reach every
/// other; surplus global ports stay unwired (real installations leave
/// expansion ports open too, and the builder tolerates unused ports).
fn dragonfly(
    groups: usize,
    a: usize,
    h: usize,
    hosts_per_switch: usize,
) -> Result<Topology, IbaError> {
    if groups < 2 || a < 1 || h < 1 {
        return Err(IbaError::InvalidConfig(
            "dragonfly needs groups >= 2, switches_per_group >= 1, global links >= 1".into(),
        ));
    }
    if groups - 1 > a * h {
        return Err(IbaError::InvalidConfig(format!(
            "dragonfly with {groups} groups needs {} global ports per group, has {}",
            groups - 1,
            a * h
        )));
    }
    let ports = (a - 1) + h + hosts_per_switch;
    if ports > u8::MAX as usize {
        return Err(IbaError::InvalidConfig("too many ports per switch".into()));
    }
    let n = groups * a;
    let id = |g: usize, s: usize| SwitchId((g * a + s) as u16);
    let mut b = TopologyBuilder::new(n, ports as u8);
    // Intra-group complete graphs.
    for g in 0..groups {
        for i in 0..a {
            for j in (i + 1)..a {
                b.connect(id(g, i), id(g, j))?;
            }
        }
    }
    // One global link per group pair.
    for gi in 0..groups {
        for gj in (gi + 1)..groups {
            let slot_i = gj - 1; // gj > gi, so peer index shifts down by one
            let slot_j = gi; // gi < gj, so peer index is used as-is
            b.connect(id(gi, slot_i / h), id(gj, slot_j / h))?;
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_generate_the_same_fabrics_as_the_direct_generators() {
        let spec = TopologySpec::Torus2D {
            rows: 4,
            cols: 4,
            hosts_per_switch: 2,
        };
        let a = spec.generate(0).unwrap();
        let b = regular::torus2d(4, 4, 2).unwrap();
        assert_eq!(a.num_switches(), b.num_switches());
        for s in a.switch_ids() {
            let na: Vec<_> = a.switch_neighbors(s).collect();
            let nb: Vec<_> = b.switch_neighbors(s).collect();
            assert_eq!(na, nb, "wiring differs at {s}");
        }
    }

    #[test]
    fn irregular_spec_respects_the_seed() {
        let spec = TopologySpec::Irregular {
            switches: 16,
            inter_switch_links: 4,
            hosts_per_switch: 4,
        };
        let a = spec.generate(1).unwrap();
        let b = spec.generate(1).unwrap();
        let c = spec.generate(2).unwrap();
        let wires = |t: &Topology| {
            t.switch_ids()
                .flat_map(|s| t.switch_neighbors(s).map(move |(p, n, pp)| (s, p, n, pp)))
                .collect::<Vec<_>>()
        };
        assert_eq!(wires(&a), wires(&b));
        assert_ne!(wires(&a), wires(&c));
    }

    #[test]
    fn names_are_stable() {
        let cases: &[(TopologySpec, &str)] = &[
            (
                TopologySpec::Irregular {
                    switches: 16,
                    inter_switch_links: 4,
                    hosts_per_switch: 4,
                },
                "irregular16x4",
            ),
            (
                TopologySpec::Torus2D {
                    rows: 8,
                    cols: 8,
                    hosts_per_switch: 4,
                },
                "torus8x8",
            ),
            (
                TopologySpec::FullMesh {
                    switches: 64,
                    hosts_per_switch: 4,
                },
                "fullmesh64",
            ),
            (
                TopologySpec::Dragonfly {
                    groups: 9,
                    switches_per_group: 3,
                    global_links_per_switch: 3,
                    hosts_per_switch: 4,
                },
                "dragonfly9x3",
            ),
        ];
        for (spec, name) in cases {
            assert_eq!(spec.name(), *name);
            assert_eq!(
                spec.generate(7).unwrap().num_switches(),
                spec.num_switches()
            );
        }
    }

    #[test]
    fn dragonfly_structure() {
        // 6 groups × 4 switches, 2 global ports per switch.
        let spec = TopologySpec::Dragonfly {
            groups: 6,
            switches_per_group: 4,
            global_links_per_switch: 2,
            hosts_per_switch: 2,
        };
        let t = spec.generate(0).unwrap();
        assert_eq!(t.num_switches(), 24);
        // links: 6 groups × C(4,2) intra + C(6,2) global.
        assert_eq!(t.num_switch_links(), 6 * 6 + 15);
        assert!(t.is_connected());
        // Intra-group completeness.
        for g in 0..6 {
            for i in 0..4usize {
                for j in (i + 1)..4 {
                    assert!(t
                        .port_towards(SwitchId((g * 4 + i) as u16), SwitchId((g * 4 + j) as u16))
                        .is_some());
                }
            }
        }
        // Diameter ≤ 3: local → global → local.
        let d = t.switch_distances();
        let diam = d.iter().flatten().max().copied().unwrap();
        assert!(diam <= 3, "dragonfly diameter {diam}");
    }

    #[test]
    fn dragonfly_rejects_undersized_global_port_budget() {
        // 9 groups need 8 global ports per group; 2×3 = 6 is too few.
        let spec = TopologySpec::Dragonfly {
            groups: 9,
            switches_per_group: 2,
            global_links_per_switch: 3,
            hosts_per_switch: 1,
        };
        assert!(spec.generate(0).is_err());
        assert!(TopologySpec::Dragonfly {
            groups: 1,
            switches_per_group: 4,
            global_links_per_switch: 1,
            hosts_per_switch: 1,
        }
        .generate(0)
        .is_err());
    }
}
