//! Fabric partitioning for the sharded parallel simulation engine.
//!
//! A [`Partition`] assigns every switch (and, transitively, every host —
//! a host always lives with its attached switch) to exactly one of `N`
//! shards, and enumerates every inter-switch link whose endpoints land
//! in different shards. The parallel engine in `iba-sim` gives each
//! shard a private event queue and exchanges typed messages only across
//! the enumerated cross-shard links, so the partition invariants — a
//! true partition of the switches, each cross link registered exactly
//! once — are load-bearing for simulation correctness, not just for
//! balance. [`Partition::validate`] re-checks them against a topology.
//!
//! [`Partition::contiguous`] is the default construction: deterministic
//! BFS region growing from the lowest unassigned switch id, producing
//! `N` shards balanced within one switch and connected whenever the
//! remaining unassigned subgraph allows it. Determinism matters — the
//! partition feeds the parallel engine's event-ordering keys, and two
//! runs with the same topology and shard count must partition
//! identically on any machine.

use crate::graph::Topology;
use iba_core::{HostId, IbaError, PortIndex, SwitchId};
use std::collections::VecDeque;

/// One inter-switch link crossing a shard boundary, recorded once with
/// `a < b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossLink {
    /// Lower-id endpoint switch.
    pub a: SwitchId,
    /// `a`'s port on the link.
    pub pa: PortIndex,
    /// Higher-id endpoint switch.
    pub b: SwitchId,
    /// `b`'s port on the link.
    pub pb: PortIndex,
}

/// An assignment of every switch and host to exactly one shard, plus
/// the cross-shard link set.
#[derive(Clone, Debug)]
pub struct Partition {
    num_shards: usize,
    switch_shard: Vec<u16>,
    host_shard: Vec<u16>,
    cross_links: Vec<CrossLink>,
}

impl Partition {
    /// Partition `topo` into `num_shards` shards by deterministic BFS
    /// region growing: shard `k` seeds at the lowest unassigned switch
    /// id and absorbs unassigned switches in BFS order (neighbors in
    /// port order) until it reaches its balanced share,
    /// `ceil(unassigned / shards_left)`. If a region runs out of
    /// reachable unassigned switches early it re-seeds at the lowest
    /// unassigned id, so exactly `num_shards` shards always emerge,
    /// sizes balanced within one.
    pub fn contiguous(topo: &Topology, num_shards: usize) -> Result<Partition, IbaError> {
        let n = topo.num_switches();
        if num_shards == 0 {
            return Err(IbaError::InvalidTopology(
                "partition needs at least one shard".into(),
            ));
        }
        if num_shards > n {
            return Err(IbaError::InvalidTopology(format!(
                "cannot partition {n} switches into {num_shards} shards"
            )));
        }
        const UNASSIGNED: u16 = u16::MAX;
        let mut shard = vec![UNASSIGNED; n];
        let mut unassigned = n;
        for k in 0..num_shards {
            let shards_left = num_shards - k;
            let target = unassigned.div_ceil(shards_left);
            let mut taken = 0usize;
            let mut frontier = VecDeque::new();
            while taken < target {
                let Some(next) = frontier.pop_front() else {
                    // Seed (or re-seed after exhausting a component) at
                    // the lowest unassigned switch id.
                    let seed = shard
                        .iter()
                        .position(|&s| s == UNASSIGNED)
                        .expect("taken < target implies an unassigned switch");
                    frontier.push_back(SwitchId(seed as u16));
                    continue;
                };
                if shard[next.index()] != UNASSIGNED {
                    continue;
                }
                shard[next.index()] = k as u16;
                taken += 1;
                unassigned -= 1;
                for (_, peer, _) in topo.switch_neighbors(next) {
                    if shard[peer.index()] == UNASSIGNED {
                        frontier.push_back(peer);
                    }
                }
            }
        }
        debug_assert_eq!(unassigned, 0);
        Ok(Self::from_switch_assignment(topo, num_shards, shard))
    }

    /// Build a partition from an explicit switch→shard assignment
    /// (hosts follow their attached switch; cross links are derived).
    pub fn from_assignment(
        topo: &Topology,
        num_shards: usize,
        assignment: Vec<u16>,
    ) -> Result<Partition, IbaError> {
        if assignment.len() != topo.num_switches() {
            return Err(IbaError::InvalidTopology(format!(
                "assignment covers {} switches, topology has {}",
                assignment.len(),
                topo.num_switches()
            )));
        }
        if num_shards == 0 || assignment.iter().any(|&s| s as usize >= num_shards) {
            return Err(IbaError::InvalidTopology(
                "assignment names an out-of-range shard".into(),
            ));
        }
        Ok(Self::from_switch_assignment(topo, num_shards, assignment))
    }

    fn from_switch_assignment(
        topo: &Topology,
        num_shards: usize,
        switch_shard: Vec<u16>,
    ) -> Partition {
        let host_shard = topo
            .host_ids()
            .map(|h| switch_shard[topo.host_switch(h).index()])
            .collect();
        let mut cross_links = Vec::new();
        for s in topo.switch_ids() {
            for (p, peer, peer_port) in topo.switch_neighbors(s) {
                if s < peer && switch_shard[s.index()] != switch_shard[peer.index()] {
                    cross_links.push(CrossLink {
                        a: s,
                        pa: p,
                        b: peer,
                        pb: peer_port,
                    });
                }
            }
        }
        Partition {
            num_shards,
            switch_shard,
            host_shard,
            cross_links,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `switch`.
    #[inline]
    pub fn shard_of_switch(&self, switch: SwitchId) -> usize {
        self.switch_shard[switch.index()] as usize
    }

    /// The shard owning `host` (always its attached switch's shard).
    #[inline]
    pub fn shard_of_host(&self, host: HostId) -> usize {
        self.host_shard[host.index()] as usize
    }

    /// Switch ids owned by `shard`, ascending.
    pub fn switches_in(&self, shard: usize) -> impl Iterator<Item = SwitchId> + '_ {
        self.switch_shard
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| s as usize == shard)
            .map(|(i, _)| SwitchId(i as u16))
    }

    /// Host ids owned by `shard`, ascending.
    pub fn hosts_in(&self, shard: usize) -> impl Iterator<Item = HostId> + '_ {
        self.host_shard
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| s as usize == shard)
            .map(|(i, _)| HostId(i as u16))
    }

    /// Switch count per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards];
        for &s in &self.switch_shard {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Every inter-switch link whose endpoints are in different shards,
    /// each exactly once with `a < b`, ascending by `(a, pa)`.
    #[inline]
    pub fn cross_links(&self) -> &[CrossLink] {
        &self.cross_links
    }

    /// Whether the link out of `switch` through `port` (if an
    /// inter-switch link) crosses a shard boundary.
    pub fn is_cross_port(&self, topo: &Topology, switch: SwitchId, port: PortIndex) -> bool {
        topo.endpoint(switch, port)
            .and_then(|ep| ep.node.as_switch())
            .is_some_and(|peer| self.shard_of_switch(peer) != self.shard_of_switch(switch))
    }

    /// Re-check the partition invariants against `topo`: the assignment
    /// covers every switch and host with an in-range shard, hosts live
    /// with their attached switch, every shard is non-empty, and the
    /// cross-link set contains exactly the boundary-crossing
    /// inter-switch links, each once, in canonical order.
    pub fn validate(&self, topo: &Topology) -> Result<(), IbaError> {
        let fail = |msg: String| Err(IbaError::InvalidTopology(msg));
        if self.switch_shard.len() != topo.num_switches() {
            return fail("partition does not cover every switch".into());
        }
        if self.host_shard.len() != topo.num_hosts() {
            return fail("partition does not cover every host".into());
        }
        let mut seen = vec![false; self.num_shards];
        for (i, &s) in self.switch_shard.iter().enumerate() {
            if s as usize >= self.num_shards {
                return fail(format!("sw{i} assigned to out-of-range shard {s}"));
            }
            seen[s as usize] = true;
        }
        if let Some(k) = seen.iter().position(|&s| !s) {
            return fail(format!("shard {k} owns no switches"));
        }
        for h in topo.host_ids() {
            if self.shard_of_host(h) != self.shard_of_switch(topo.host_switch(h)) {
                return fail(format!("{h} not co-located with its switch"));
            }
        }
        let mut expected = Vec::new();
        for s in topo.switch_ids() {
            for (p, peer, peer_port) in topo.switch_neighbors(s) {
                if s < peer && self.shard_of_switch(s) != self.shard_of_switch(peer) {
                    expected.push(CrossLink {
                        a: s,
                        pa: p,
                        b: peer,
                        pb: peer_port,
                    });
                }
            }
        }
        if expected != self.cross_links {
            return fail(format!(
                "cross-link set mismatch: expected {} links, registered {}",
                expected.len(),
                self.cross_links.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;
    use crate::irregular::IrregularConfig;
    use proptest::prelude::*;

    fn line_topo(n: usize) -> Topology {
        let mut b = TopologyBuilder::new(n, 6);
        for i in 0..n - 1 {
            b.connect(SwitchId(i as u16), SwitchId(i as u16 + 1))
                .unwrap();
        }
        b.attach_hosts_everywhere(2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn one_shard_owns_everything() {
        let t = line_topo(5);
        let p = Partition::contiguous(&t, 1).unwrap();
        p.validate(&t).unwrap();
        assert_eq!(p.shard_sizes(), vec![5]);
        assert!(p.cross_links().is_empty());
        assert_eq!(p.switches_in(0).count(), 5);
        assert_eq!(p.hosts_in(0).count(), 10);
    }

    #[test]
    fn line_splits_into_contiguous_runs() {
        let t = line_topo(8);
        let p = Partition::contiguous(&t, 4).unwrap();
        p.validate(&t).unwrap();
        assert_eq!(p.shard_sizes(), vec![2, 2, 2, 2]);
        // A 4-way split of a line has exactly 3 boundary links.
        assert_eq!(p.cross_links().len(), 3);
        // BFS from lowest ids keeps runs contiguous on a line.
        for i in 0..8u16 {
            assert_eq!(p.shard_of_switch(SwitchId(i)), (i / 2) as usize);
        }
    }

    #[test]
    fn hosts_follow_their_switch() {
        let t = line_topo(4);
        let p = Partition::contiguous(&t, 2).unwrap();
        for h in t.host_ids() {
            assert_eq!(p.shard_of_host(h), p.shard_of_switch(t.host_switch(h)));
        }
    }

    #[test]
    fn cross_port_classification_matches_link_set() {
        let t = line_topo(6);
        let p = Partition::contiguous(&t, 3).unwrap();
        let mut cross_ports = 0;
        for s in t.switch_ids() {
            for (port, _, _) in t.switch_neighbors(s) {
                if p.is_cross_port(&t, s, port) {
                    cross_ports += 1;
                }
            }
        }
        // Each undirected cross link is seen from both ends.
        assert_eq!(cross_ports, p.cross_links().len() * 2);
    }

    #[test]
    fn rejects_degenerate_shard_counts() {
        let t = line_topo(3);
        assert!(Partition::contiguous(&t, 0).is_err());
        assert!(Partition::contiguous(&t, 4).is_err());
    }

    #[test]
    fn from_assignment_validates_coverage() {
        let t = line_topo(3);
        assert!(Partition::from_assignment(&t, 2, vec![0, 1]).is_err());
        assert!(Partition::from_assignment(&t, 2, vec![0, 1, 2]).is_err());
        let p = Partition::from_assignment(&t, 2, vec![0, 1, 0]).unwrap();
        p.validate(&t).unwrap();
        assert_eq!(p.cross_links().len(), 2);
    }

    #[test]
    fn partition_is_deterministic() {
        let t = IrregularConfig::paper(16, 3).generate().unwrap();
        let a = Partition::contiguous(&t, 4).unwrap();
        let b = Partition::contiguous(&t, 4).unwrap();
        assert_eq!(a.switch_shard, b.switch_shard);
        assert_eq!(a.cross_links, b.cross_links);
    }

    proptest! {
        /// Over random irregular topologies and shard counts, the
        /// contiguous partition is a true partition: every switch in
        /// exactly one in-range shard, every shard non-empty, sizes
        /// balanced within one, hosts co-located, and every cross-shard
        /// link registered exactly once (no lost or duplicated ports).
        #[test]
        fn prop_contiguous_is_a_true_partition(
            switches in 6usize..40,
            seed in 0u64..50,
            shard_sel in 1usize..8,
        ) {
            let topo = IrregularConfig::paper(switches, seed)
                .generate()
                .unwrap();
            let shards = shard_sel.min(switches);
            let p = Partition::contiguous(&topo, shards).unwrap();
            p.validate(&topo).unwrap();
            let sizes = p.shard_sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), switches);
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            prop_assert!(max - min <= 1, "unbalanced shards: {:?}", sizes);
            // Every cross link appears exactly once, canonically ordered.
            let links = p.cross_links();
            for w in links.windows(2) {
                prop_assert!((w[0].a, w[0].pa) < (w[1].a, w[1].pa));
            }
            for l in links {
                prop_assert!(l.a < l.b);
                prop_assert_ne!(
                    p.shard_of_switch(l.a),
                    p.shard_of_switch(l.b)
                );
            }
        }
    }
}
