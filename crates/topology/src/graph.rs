//! The wired subnet graph.
//!
//! A [`Topology`] is a set of switches, each with a fixed number of
//! physical ports, plus a set of hosts (channel-adapter ports). Every
//! switch port is wired to at most one remote endpoint — another switch's
//! port or a host — and all wiring is symmetric. Hosts have exactly one
//! port, wired to a switch.
//!
//! Construction goes through [`TopologyBuilder`], which enforces the
//! structural invariants the rest of the workspace relies on:
//!
//! * symmetric point-to-point wiring,
//! * at most one link between any pair of switches ("neighboring switches
//!   will be interconnected by just one link", §5.1),
//! * no self-links,
//! * a connected switch graph (checked at [`TopologyBuilder::build`]).

use iba_core::{HostId, IbaError, NodeRef, PortIndex, SwitchId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The remote end of a switch port.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Endpoint {
    /// The node the port is wired to.
    pub node: NodeRef,
    /// The port on the remote node (always 0 for hosts, which have a
    /// single port).
    pub port: PortIndex,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct SwitchNode {
    ports: Vec<Option<Endpoint>>,
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct HostNode {
    switch: SwitchId,
    switch_port: PortIndex,
}

/// An immutable, validated subnet topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    ports_per_switch: u8,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
}

impl Topology {
    /// Number of switches.
    #[inline]
    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of hosts.
    #[inline]
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Physical ports on every switch.
    #[inline]
    pub fn ports_per_switch(&self) -> u8 {
        self.ports_per_switch
    }

    /// Iterator over all switch ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> {
        (0..self.switches.len() as u16).map(SwitchId)
    }

    /// Iterator over all host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> {
        (0..self.hosts.len() as u16).map(HostId)
    }

    /// What `port` of `switch` is wired to, if anything.
    #[inline]
    pub fn endpoint(&self, switch: SwitchId, port: PortIndex) -> Option<Endpoint> {
        self.switches[switch.index()].ports[port.index()]
    }

    /// All `(local port, neighbor switch, neighbor's port)` triples of
    /// `switch`'s inter-switch links, in port order.
    pub fn switch_neighbors(
        &self,
        switch: SwitchId,
    ) -> impl Iterator<Item = (PortIndex, SwitchId, PortIndex)> + '_ {
        self.switches[switch.index()]
            .ports
            .iter()
            .enumerate()
            .filter_map(|(i, ep)| {
                let ep = ep.as_ref()?;
                let peer = ep.node.as_switch()?;
                Some((PortIndex(i as u8), peer, ep.port))
            })
    }

    /// All `(local port, host)` pairs of hosts attached to `switch`, in
    /// port order.
    pub fn attached_hosts(
        &self,
        switch: SwitchId,
    ) -> impl Iterator<Item = (PortIndex, HostId)> + '_ {
        self.switches[switch.index()]
            .ports
            .iter()
            .enumerate()
            .filter_map(|(i, ep)| {
                let ep = ep.as_ref()?;
                let host = ep.node.as_host()?;
                Some((PortIndex(i as u8), host))
            })
    }

    /// The switch and switch-port a host hangs off.
    #[inline]
    pub fn host_attachment(&self, host: HostId) -> (SwitchId, PortIndex) {
        let h = &self.hosts[host.index()];
        (h.switch, h.switch_port)
    }

    /// The switch a host hangs off.
    #[inline]
    pub fn host_switch(&self, host: HostId) -> SwitchId {
        self.hosts[host.index()].switch
    }

    /// The port on `from` that leads directly to switch `to`, if the two
    /// are neighbors. At most one exists (single-link constraint).
    pub fn port_towards(&self, from: SwitchId, to: SwitchId) -> Option<PortIndex> {
        self.switch_neighbors(from)
            .find(|&(_, peer, _)| peer == to)
            .map(|(p, _, _)| p)
    }

    /// Inter-switch degree of `switch`.
    pub fn switch_degree(&self, switch: SwitchId) -> usize {
        self.switch_neighbors(switch).count()
    }

    /// Number of (undirected) inter-switch links.
    pub fn num_switch_links(&self) -> usize {
        self.switch_ids()
            .map(|s| self.switch_degree(s))
            .sum::<usize>()
            / 2
    }

    /// All-pairs shortest-path distances over the *switch* graph (hops
    /// between switches; hosts are not counted). `u32::MAX` marks
    /// unreachable pairs, which a validated topology never has.
    pub fn switch_distances(&self) -> Vec<Vec<u32>> {
        let n = self.num_switches();
        let mut dist = vec![vec![u32::MAX; n]; n];
        let mut queue = VecDeque::new();
        for (src, row) in dist.iter_mut().enumerate() {
            row[src] = 0;
            queue.push_back(SwitchId(src as u16));
            while let Some(cur) = queue.pop_front() {
                let d = row[cur.index()];
                for (_, peer, _) in self.switch_neighbors(cur) {
                    if row[peer.index()] == u32::MAX {
                        row[peer.index()] = d + 1;
                        queue.push_back(peer);
                    }
                }
            }
        }
        dist
    }

    /// BFS distances from one switch.
    pub fn distances_from(&self, src: SwitchId) -> Vec<u32> {
        let n = self.num_switches();
        let mut dist = vec![u32::MAX; n];
        dist[src.index()] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(cur) = queue.pop_front() {
            let d = dist[cur.index()];
            for (_, peer, _) in self.switch_neighbors(cur) {
                if dist[peer.index()] == u32::MAX {
                    dist[peer.index()] = d + 1;
                    queue.push_back(peer);
                }
            }
        }
        dist
    }

    /// Whether the switch graph is connected (every validated topology
    /// is; exposed for tests and tools).
    pub fn is_connected(&self) -> bool {
        if self.switches.is_empty() {
            return true;
        }
        self.distances_from(SwitchId(0))
            .iter()
            .all(|&d| d != u32::MAX)
    }

    /// Render the subnet as a Graphviz DOT graph: switches as boxes
    /// (optionally annotated by the caller via `label`), hosts as small
    /// circles, links labelled with their port pair. Pipe into
    /// `dot -Tsvg` / `neato -Tpng` to visualize a generated fabric.
    pub fn to_dot(&self, label: impl Fn(SwitchId) -> String) -> String {
        let mut out = String::from("graph subnet {\n  node [fontsize=10];\n");
        for s in self.switch_ids() {
            out.push_str(&format!(
                "  sw{} [shape=box, style=filled, fillcolor=lightblue, label=\"{}\"];\n",
                s.0,
                label(s)
            ));
        }
        for h in self.host_ids() {
            out.push_str(&format!(
                "  h{0} [shape=circle, width=0.25, fixedsize=true, label=\"{0}\"];\n",
                h.0
            ));
        }
        for s in self.switch_ids() {
            for (p, peer, peer_port) in self.switch_neighbors(s) {
                if s < peer {
                    out.push_str(&format!(
                        "  sw{} -- sw{} [label=\"{}:{}\", fontsize=8];\n",
                        s.0, peer.0, p.0, peer_port.0
                    ));
                }
            }
            for (_, h) in self.attached_hosts(s) {
                out.push_str(&format!("  sw{} -- h{};\n", s.0, h.0));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Re-check every structural invariant. [`TopologyBuilder::build`]
    /// already runs this; exposed so deserialized topologies can be
    /// verified.
    pub fn validate(&self) -> Result<(), IbaError> {
        let n_sw = self.num_switches();
        let n_h = self.num_hosts();
        if n_sw == 0 {
            return Err(IbaError::InvalidTopology("no switches".into()));
        }
        let mut host_seen = vec![false; n_h];
        for s in self.switch_ids() {
            let node = &self.switches[s.index()];
            if node.ports.len() != self.ports_per_switch as usize {
                return Err(IbaError::InvalidTopology(format!(
                    "{s} has {} ports, expected {}",
                    node.ports.len(),
                    self.ports_per_switch
                )));
            }
            let mut neighbors_seen = Vec::new();
            for (i, ep) in node.ports.iter().enumerate() {
                let Some(ep) = ep else { continue };
                match ep.node {
                    NodeRef::Switch(peer) => {
                        if peer == s {
                            return Err(IbaError::InvalidTopology(format!("{s} links to itself")));
                        }
                        if peer.index() >= n_sw {
                            return Err(IbaError::InvalidTopology(format!(
                                "{s} links to out-of-range {peer}"
                            )));
                        }
                        if neighbors_seen.contains(&peer) {
                            return Err(IbaError::InvalidTopology(format!(
                                "{s} and {peer} connected by more than one link"
                            )));
                        }
                        neighbors_seen.push(peer);
                        // Symmetry: the remote port must point back here.
                        let back = self.switches[peer.index()]
                            .ports
                            .get(ep.port.index())
                            .and_then(|p| *p);
                        let expected = Endpoint {
                            node: NodeRef::Switch(s),
                            port: PortIndex(i as u8),
                        };
                        if back != Some(expected) {
                            return Err(IbaError::InvalidTopology(format!(
                                "asymmetric wiring between {s}:{} and {peer}:{}",
                                i, ep.port
                            )));
                        }
                    }
                    NodeRef::Host(h) => {
                        if h.index() >= n_h {
                            return Err(IbaError::InvalidTopology(format!(
                                "{s} links to out-of-range {h}"
                            )));
                        }
                        if host_seen[h.index()] {
                            return Err(IbaError::InvalidTopology(format!(
                                "{h} attached more than once"
                            )));
                        }
                        host_seen[h.index()] = true;
                        let rec = &self.hosts[h.index()];
                        if rec.switch != s || rec.switch_port.index() != i {
                            return Err(IbaError::InvalidTopology(format!(
                                "{h} attachment record disagrees with wiring"
                            )));
                        }
                    }
                }
            }
        }
        if let Some(h) = host_seen.iter().position(|&seen| !seen) {
            return Err(IbaError::InvalidTopology(format!("h{h} not attached")));
        }
        if !self.is_connected() {
            return Err(IbaError::InvalidTopology(
                "switch graph disconnected".into(),
            ));
        }
        Ok(())
    }
}

/// Incremental builder for [`Topology`].
pub struct TopologyBuilder {
    ports_per_switch: u8,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
}

impl TopologyBuilder {
    /// A builder for `num_switches` switches of `ports_per_switch` ports
    /// each, and no hosts yet.
    pub fn new(num_switches: usize, ports_per_switch: u8) -> TopologyBuilder {
        TopologyBuilder {
            ports_per_switch,
            switches: (0..num_switches)
                .map(|_| SwitchNode {
                    ports: vec![None; ports_per_switch as usize],
                })
                .collect(),
            hosts: Vec::new(),
        }
    }

    fn first_free_port(&self, s: SwitchId) -> Option<PortIndex> {
        self.switches[s.index()]
            .ports
            .iter()
            .position(|p| p.is_none())
            .map(|i| PortIndex(i as u8))
    }

    /// Whether switches `a` and `b` are already linked.
    pub fn linked(&self, a: SwitchId, b: SwitchId) -> bool {
        self.switches[a.index()]
            .ports
            .iter()
            .flatten()
            .any(|ep| ep.node == NodeRef::Switch(b))
    }

    /// Number of free ports left on `s`.
    pub fn free_ports(&self, s: SwitchId) -> usize {
        self.switches[s.index()]
            .ports
            .iter()
            .filter(|p| p.is_none())
            .count()
    }

    /// Wire a link between `a` and `b` on their lowest free ports.
    pub fn connect(&mut self, a: SwitchId, b: SwitchId) -> Result<(), IbaError> {
        let pa = self
            .first_free_port(a)
            .ok_or_else(|| IbaError::InvalidTopology(format!("{a} has no free port")))?;
        let pb = self
            .first_free_port(b)
            .ok_or_else(|| IbaError::InvalidTopology(format!("{b} has no free port")))?;
        self.connect_ports(a, pa, b, pb)
    }

    /// Wire a link between specific ports (used when reconstructing a
    /// fabric whose physical port numbers are already known, e.g. from
    /// subnet discovery).
    pub fn connect_ports(
        &mut self,
        a: SwitchId,
        pa: PortIndex,
        b: SwitchId,
        pb: PortIndex,
    ) -> Result<(), IbaError> {
        if a == b {
            return Err(IbaError::InvalidTopology(format!(
                "{a} cannot link to itself"
            )));
        }
        if self.linked(a, b) {
            return Err(IbaError::InvalidTopology(format!(
                "{a} and {b} already linked (single-link constraint)"
            )));
        }
        for (s, p) in [(a, pa), (b, pb)] {
            if p.index() >= self.ports_per_switch as usize {
                return Err(IbaError::InvalidTopology(format!("{s} has no port {p}")));
            }
            if self.switches[s.index()].ports[p.index()].is_some() {
                return Err(IbaError::InvalidTopology(format!("{s}:{p} already wired")));
            }
        }
        self.switches[a.index()].ports[pa.index()] = Some(Endpoint {
            node: NodeRef::Switch(b),
            port: pb,
        });
        self.switches[b.index()].ports[pb.index()] = Some(Endpoint {
            node: NodeRef::Switch(a),
            port: pa,
        });
        Ok(())
    }

    /// Disconnect the link between `a` and `b` (used by the irregular
    /// generator's edge-swap repair).
    pub fn disconnect(&mut self, a: SwitchId, b: SwitchId) -> Result<(), IbaError> {
        let pa = self.switches[a.index()]
            .ports
            .iter()
            .position(|ep| ep.map(|e| e.node) == Some(NodeRef::Switch(b)))
            .ok_or_else(|| IbaError::InvalidTopology(format!("{a} and {b} not linked")))?;
        let pb = self.switches[a.index()].ports[pa].unwrap().port;
        self.switches[a.index()].ports[pa] = None;
        self.switches[b.index()].ports[pb.index()] = None;
        Ok(())
    }

    /// Attach a new host to `switch` on its lowest free port, returning
    /// the new host's id.
    pub fn attach_host(&mut self, switch: SwitchId) -> Result<HostId, IbaError> {
        let port = self
            .first_free_port(switch)
            .ok_or_else(|| IbaError::InvalidTopology(format!("{switch} has no free port")))?;
        self.attach_host_at(switch, port)
    }

    /// Attach a new host on a specific port (fabric reconstruction).
    pub fn attach_host_at(
        &mut self,
        switch: SwitchId,
        port: PortIndex,
    ) -> Result<HostId, IbaError> {
        if port.index() >= self.ports_per_switch as usize {
            return Err(IbaError::InvalidTopology(format!(
                "{switch} has no port {port}"
            )));
        }
        if self.switches[switch.index()].ports[port.index()].is_some() {
            return Err(IbaError::InvalidTopology(format!(
                "{switch}:{port} already wired"
            )));
        }
        let host = HostId(self.hosts.len() as u16);
        self.switches[switch.index()].ports[port.index()] = Some(Endpoint {
            node: NodeRef::Host(host),
            port: PortIndex(0),
        });
        self.hosts.push(HostNode {
            switch,
            switch_port: port,
        });
        Ok(host)
    }

    /// Attach `count` hosts to every switch (the paper attaches 4).
    pub fn attach_hosts_everywhere(&mut self, count: usize) -> Result<(), IbaError> {
        for s in 0..self.switches.len() {
            for _ in 0..count {
                self.attach_host(SwitchId(s as u16))?;
            }
        }
        Ok(())
    }

    /// Finish construction, validating every invariant.
    pub fn build(self) -> Result<Topology, IbaError> {
        let topo = Topology {
            ports_per_switch: self.ports_per_switch,
            switches: self.switches,
            hosts: self.hosts,
        };
        topo.validate()?;
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_topo() -> Topology {
        let mut b = TopologyBuilder::new(2, 4);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.attach_hosts_everywhere(2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_validates() {
        let t = two_switch_topo();
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_switch_links(), 1);
        assert!(t.is_connected());
        t.validate().unwrap();
    }

    #[test]
    fn wiring_is_symmetric() {
        let t = two_switch_topo();
        let (p0, peer, p1) = t.switch_neighbors(SwitchId(0)).next().unwrap();
        assert_eq!(peer, SwitchId(1));
        let ep_back = t.endpoint(SwitchId(1), p1).unwrap();
        assert_eq!(ep_back.node, NodeRef::Switch(SwitchId(0)));
        assert_eq!(ep_back.port, p0);
    }

    #[test]
    fn port_towards_finds_the_link() {
        let t = two_switch_topo();
        assert!(t.port_towards(SwitchId(0), SwitchId(1)).is_some());
        assert!(t.port_towards(SwitchId(1), SwitchId(0)).is_some());
    }

    #[test]
    fn host_attachment_roundtrip() {
        let t = two_switch_topo();
        for h in t.host_ids() {
            let (s, p) = t.host_attachment(h);
            let ep = t.endpoint(s, p).unwrap();
            assert_eq!(ep.node, NodeRef::Host(h));
        }
        // Hosts 0,1 on switch 0; hosts 2,3 on switch 1.
        assert_eq!(t.host_switch(HostId(0)), SwitchId(0));
        assert_eq!(t.host_switch(HostId(3)), SwitchId(1));
    }

    #[test]
    fn attached_hosts_lists_all() {
        let t = two_switch_topo();
        let hosts: Vec<_> = t.attached_hosts(SwitchId(0)).map(|(_, h)| h).collect();
        assert_eq!(hosts, vec![HostId(0), HostId(1)]);
    }

    #[test]
    fn rejects_self_link() {
        let mut b = TopologyBuilder::new(2, 4);
        assert!(b.connect(SwitchId(0), SwitchId(0)).is_err());
    }

    #[test]
    fn rejects_duplicate_link() {
        let mut b = TopologyBuilder::new(2, 4);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        assert!(b.connect(SwitchId(0), SwitchId(1)).is_err());
        assert!(b.connect(SwitchId(1), SwitchId(0)).is_err());
    }

    #[test]
    fn rejects_port_exhaustion() {
        let mut b = TopologyBuilder::new(2, 1);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        assert!(b.attach_host(SwitchId(0)).is_err());
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = TopologyBuilder::new(3, 4);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        // switch 2 left unconnected
        assert!(matches!(b.build(), Err(IbaError::InvalidTopology(_))));
    }

    #[test]
    fn disconnect_reverses_connect() {
        let mut b = TopologyBuilder::new(2, 4);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.disconnect(SwitchId(0), SwitchId(1)).unwrap();
        assert!(!b.linked(SwitchId(0), SwitchId(1)));
        assert_eq!(b.free_ports(SwitchId(0)), 4);
        assert!(b.disconnect(SwitchId(0), SwitchId(1)).is_err());
    }

    #[test]
    fn distances_on_a_path() {
        let mut b = TopologyBuilder::new(3, 4);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.connect(SwitchId(1), SwitchId(2)).unwrap();
        let t = b.build().unwrap();
        let d = t.switch_distances();
        assert_eq!(d[0][2], 2);
        assert_eq!(d[0][1], 1);
        assert_eq!(d[2][2], 0);
        assert_eq!(t.distances_from(SwitchId(2))[0], 2);
    }

    #[test]
    fn dot_export_contains_every_element() {
        let t = two_switch_topo();
        let dot = t.to_dot(|s| format!("{s}"));
        assert!(dot.starts_with("graph subnet {"));
        assert!(dot.trim_end().ends_with('}'));
        // 2 switches, 4 hosts, 1 switch link, 4 host links.
        assert_eq!(dot.matches("shape=box").count(), 2);
        assert_eq!(dot.matches("shape=circle").count(), 4);
        assert_eq!(dot.matches("sw0 -- sw1").count(), 1);
        assert_eq!(dot.matches("-- h").count(), 4);
        // Caller-provided labels are used.
        assert!(dot.contains("label=\"sw1\""));
    }

    #[test]
    fn clone_preserves_validity() {
        let t = two_switch_topo();
        let t2 = t.clone();
        t2.validate().unwrap();
        assert_eq!(t2.num_switch_links(), t.num_switch_links());
    }
}
