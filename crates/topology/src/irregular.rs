//! Random irregular topologies, per the paper's restrictions (§5.1).
//!
//! "We will analyze irregular networks of 8, 16, 32, and 64 switches
//! randomly generated following some restrictions. First, we will assume
//! that every switch in the network has the same number of ports (we used
//! 8 or 10) and the same number of nodes connected to every switch (4 in
//! our simulations). And second, neighboring switches will be
//! interconnected by just one link."
//!
//! The generator builds a random `k`-regular switch graph (k = ports −
//! hosts, i.e. 4 or 6) with the *configuration model*: each switch
//! contributes `k` stubs, the stub list is shuffled and paired. Self-loops
//! and duplicate links are then removed by deterministic random edge
//! swaps, and disconnected components are merged the same way (a swap
//! between an edge of each component preserves all degrees while joining
//! them). The result is always a connected, simple, `k`-regular switch
//! graph — matching the paper's constraints exactly — and is a pure
//! function of the seed.

use crate::graph::{Topology, TopologyBuilder};
use iba_core::{IbaError, SwitchId};
use iba_engine::rng::{StreamKind, StreamRng};
use serde::{Deserialize, Serialize};

/// Configuration of the random irregular generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrregularConfig {
    /// Number of switches (the paper uses 8, 16, 32, 64).
    pub switches: usize,
    /// Inter-switch links per switch (the paper uses 4 or 6).
    pub inter_switch_links: usize,
    /// Hosts attached to every switch (the paper uses 4).
    pub hosts_per_switch: usize,
    /// Seed; each of the paper's "ten different topologies" per size is
    /// one seed value.
    pub seed: u64,
}

impl IrregularConfig {
    /// The paper's base configuration: `switches` switches, 4 inter-switch
    /// links, 4 hosts per switch (8-port switches).
    pub fn paper(switches: usize, seed: u64) -> IrregularConfig {
        IrregularConfig {
            switches,
            inter_switch_links: 4,
            hosts_per_switch: 4,
            seed,
        }
    }

    /// The paper's high-connectivity configuration: 6 inter-switch links
    /// (10-port switches).
    pub fn paper_connected(switches: usize, seed: u64) -> IrregularConfig {
        IrregularConfig {
            inter_switch_links: 6,
            ..IrregularConfig::paper(switches, seed)
        }
    }

    /// Total ports every switch needs.
    pub fn ports_per_switch(&self) -> usize {
        self.inter_switch_links + self.hosts_per_switch
    }

    /// Sanity-check the parameters.
    pub fn validate(&self) -> Result<(), IbaError> {
        if self.switches < 2 {
            return Err(IbaError::InvalidConfig("need at least 2 switches".into()));
        }
        if self.inter_switch_links == 0 {
            return Err(IbaError::InvalidConfig(
                "need at least 1 inter-switch link per switch".into(),
            ));
        }
        if self.inter_switch_links >= self.switches {
            return Err(IbaError::InvalidConfig(format!(
                "{} links per switch impossible with {} switches (single-link constraint)",
                self.inter_switch_links, self.switches
            )));
        }
        if !(self.switches * self.inter_switch_links).is_multiple_of(2) {
            return Err(IbaError::InvalidConfig(
                "switches × links must be even for a regular graph".into(),
            ));
        }
        if self.ports_per_switch() > u8::MAX as usize {
            return Err(IbaError::InvalidConfig("too many ports per switch".into()));
        }
        Ok(())
    }

    /// Generate the topology for this configuration.
    pub fn generate(&self) -> Result<Topology, IbaError> {
        self.validate()?;
        let mut rng = StreamRng::from_seed(self.seed).derive(StreamKind::Topology);
        // Edge list of the k-regular multigraph from the configuration
        // model; repaired in place.
        let mut edges = pair_stubs(self.switches, self.inter_switch_links, &mut rng);
        repair_simple(&mut edges, self.switches, &mut rng)?;
        repair_connectivity(&mut edges, self.switches, &mut rng)?;

        let mut builder = TopologyBuilder::new(self.switches, self.ports_per_switch() as u8);
        for &(a, b) in &edges {
            builder.connect(SwitchId(a as u16), SwitchId(b as u16))?;
        }
        builder.attach_hosts_everywhere(self.hosts_per_switch)?;
        builder.build()
    }

    /// The ensemble of `count` topologies the paper averages over
    /// (seeds `seed..seed+count`).
    pub fn ensemble(&self, count: u64) -> impl Iterator<Item = Result<Topology, IbaError>> + '_ {
        (0..count).map(move |i| {
            IrregularConfig {
                seed: self.seed.wrapping_add(i),
                ..*self
            }
            .generate()
        })
    }
}

/// Shuffle `n × k` stubs and pair them sequentially.
fn pair_stubs(n: usize, k: usize, rng: &mut StreamRng) -> Vec<(usize, usize)> {
    let mut stubs: Vec<usize> = (0..n).flat_map(|s| std::iter::repeat_n(s, k)).collect();
    rng.shuffle(&mut stubs);
    stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

fn is_dup(edges: &[(usize, usize)], i: usize) -> bool {
    let (a, b) = edges[i];
    a == b
        || edges
            .iter()
            .enumerate()
            .any(|(j, &(c, d))| j != i && ((a, b) == (c, d) || (a, b) == (d, c)))
}

/// Remove self-loops and duplicate edges by random 2-swaps, preserving all
/// degrees. Bounded; fails (extremely unlikely for feasible configs) with
/// `GenerationFailed`.
fn repair_simple(
    edges: &mut [(usize, usize)],
    n: usize,
    rng: &mut StreamRng,
) -> Result<(), IbaError> {
    let max_iters = 200 * edges.len().max(1) * n.max(1);
    let mut iters = 0;
    loop {
        let Some(bad) = (0..edges.len()).find(|&i| is_dup(edges, i)) else {
            return Ok(());
        };
        iters += 1;
        if iters > max_iters {
            return Err(IbaError::GenerationFailed(format!(
                "could not make the graph simple after {max_iters} swaps"
            )));
        }
        // Swap the bad edge with a random other edge: (a,b),(c,d) →
        // (a,c),(b,d). Degrees are preserved unconditionally; whether the
        // result is simple is re-checked next iteration.
        let other = rng.below(edges.len());
        if other == bad {
            continue;
        }
        let (a, b) = edges[bad];
        let (c, d) = edges[other];
        edges[bad] = (a, c);
        edges[other] = (b, d);
    }
}

/// Union-find over switch ids.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu((0..n).collect())
    }
    fn find(&mut self, x: usize) -> usize {
        if self.0[x] != x {
            let root = self.find(self.0[x]);
            self.0[x] = root;
        }
        self.0[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

fn component_count(edges: &[(usize, usize)], n: usize) -> usize {
    let mut dsu = Dsu::new(n);
    for &(a, b) in edges {
        dsu.union(a, b);
    }
    (0..n).filter(|&i| dsu.find(i) == i).count()
}

/// Join disconnected components by swapping one edge of each, preserving
/// degrees and simplicity (re-repaired after each swap).
fn repair_connectivity(
    edges: &mut [(usize, usize)],
    n: usize,
    rng: &mut StreamRng,
) -> Result<(), IbaError> {
    let max_rounds = 50 * n.max(1);
    for _ in 0..max_rounds {
        let mut dsu = Dsu::new(n);
        for &(a, b) in edges.iter() {
            dsu.union(a, b);
        }
        let root0 = dsu.find(0);
        let Some(outside) = (0..n).find(|&i| dsu.find(i) != root0) else {
            return Ok(());
        };
        let comp_out = dsu.find(outside);
        // Pick one edge inside component 0 and one inside the other
        // component, then cross them.
        let inside_edges: Vec<usize> = (0..edges.len())
            .filter(|&i| dsu.find(edges[i].0) == root0)
            .collect();
        let outside_edges: Vec<usize> = (0..edges.len())
            .filter(|&i| dsu.find(edges[i].0) == comp_out)
            .collect();
        let (Some(&ei), Some(&eo)) = (rng.choose(&inside_edges), rng.choose(&outside_edges)) else {
            return Err(IbaError::GenerationFailed(
                "component without edges cannot be joined (k = 0?)".into(),
            ));
        };
        let (a, b) = edges[ei];
        let (c, d) = edges[eo];
        edges[ei] = (a, c);
        edges[eo] = (b, d);
        repair_simple(edges, n, rng)?;
        // Loop re-checks connectivity; each successful round strictly
        // reduces the component count unless a later simple-repair swap
        // disturbed it, hence the generous round bound.
        let _ = component_count(edges, n);
    }
    Err(IbaError::GenerationFailed(
        "could not connect the graph within the swap budget".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_sizes_generate_and_validate() {
        for &n in &[8usize, 16, 32, 64] {
            let t = IrregularConfig::paper(n, 0xA5).generate().unwrap();
            assert_eq!(t.num_switches(), n);
            assert_eq!(t.num_hosts(), 4 * n);
            assert_eq!(t.ports_per_switch(), 8);
            for s in t.switch_ids() {
                assert_eq!(t.switch_degree(s), 4, "switch {s} not 4-regular");
                assert_eq!(t.attached_hosts(s).count(), 4);
            }
            t.validate().unwrap();
        }
    }

    #[test]
    fn high_connectivity_variant() {
        let t = IrregularConfig::paper_connected(16, 7).generate().unwrap();
        assert_eq!(t.ports_per_switch(), 10);
        for s in t.switch_ids() {
            assert_eq!(t.switch_degree(s), 6);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = IrregularConfig::paper(16, 42).generate().unwrap();
        let b = IrregularConfig::paper(16, 42).generate().unwrap();
        for s in a.switch_ids() {
            let na: Vec<_> = a.switch_neighbors(s).collect();
            let nb: Vec<_> = b.switch_neighbors(s).collect();
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = IrregularConfig::paper(16, 1).generate().unwrap();
        let b = IrregularConfig::paper(16, 2).generate().unwrap();
        let same = a.switch_ids().all(|s| {
            let na: Vec<_> = a.switch_neighbors(s).map(|(_, p, _)| p).collect();
            let nb: Vec<_> = b.switch_neighbors(s).map(|(_, p, _)| p).collect();
            na == nb
        });
        assert!(!same, "two seeds produced identical wiring");
    }

    #[test]
    fn ensemble_yields_count_distinct_members() {
        let cfg = IrregularConfig::paper(8, 100);
        let topos: Vec<_> = cfg.ensemble(10).collect::<Result<_, _>>().unwrap();
        assert_eq!(topos.len(), 10);
        for t in &topos {
            t.validate().unwrap();
        }
    }

    #[test]
    fn dense_small_network_works() {
        // 8 switches, 6 links each: 24 edges among 28 possible pairs —
        // stress for the simple-graph repair.
        for seed in 0..10 {
            let t = IrregularConfig::paper_connected(8, seed)
                .generate()
                .unwrap();
            for s in t.switch_ids() {
                assert_eq!(t.switch_degree(s), 6);
            }
        }
    }

    #[test]
    fn rejects_infeasible_configs() {
        assert!(IrregularConfig {
            switches: 4,
            inter_switch_links: 4, // ≥ switches: impossible simple graph
            hosts_per_switch: 4,
            seed: 0
        }
        .generate()
        .is_err());
        assert!(IrregularConfig {
            switches: 1,
            inter_switch_links: 1,
            hosts_per_switch: 4,
            seed: 0
        }
        .generate()
        .is_err());
        assert!(IrregularConfig {
            switches: 3,
            inter_switch_links: 1, // odd stub count
            hosts_per_switch: 1,
            seed: 0
        }
        .generate()
        .is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Any seed yields a valid, connected, k-regular topology.
        #[test]
        fn prop_generator_respects_constraints(seed in any::<u64>(), size_idx in 0usize..3, k_idx in 0usize..2) {
            let n = [8usize, 16, 32][size_idx];
            let k = [4usize, 6][k_idx];
            let cfg = IrregularConfig { switches: n, inter_switch_links: k, hosts_per_switch: 4, seed };
            let t = cfg.generate().unwrap();
            prop_assert!(t.is_connected());
            for s in t.switch_ids() {
                prop_assert_eq!(t.switch_degree(s), k);
            }
            prop_assert_eq!(t.num_switch_links(), n * k / 2);
        }
    }
}
