//! # iba-topology
//!
//! Subnet topologies for the iba-far reproduction.
//!
//! The paper evaluates on *irregular* networks "randomly generated
//! following some restrictions" (§5.1): every switch has the same number
//! of ports (8 or 10), the same number of end nodes attached (4), and
//! neighboring switches are interconnected by exactly one link. Ten
//! random instances are generated per network size (8/16/32/64 switches)
//! and results are reported as min/max/avg over them.
//!
//! This crate provides:
//!
//! * [`graph::Topology`] — the wired subnet: switches with fixed port
//!   counts, point-to-point links, hosts hanging off switch ports;
//! * [`graph::TopologyBuilder`] — safe incremental construction;
//! * [`irregular`] — the paper's random generator (configuration model
//!   with deterministic edge-swap repair, seeded, always connected);
//! * [`regular`] — reference topologies (ring, 2-D mesh/torus, hypercube,
//!   fully connected) used by tests, examples and ablations;
//! * [`spec`] — [`TopologySpec`], the unified serializable shape
//!   description dispatching to the generators above, plus the
//!   dragonfly generator used by the routing-engine zoo;
//! * [`metrics`] — diameter, average distance, link counts;
//! * [`partition`] — deterministic fabric sharding for the parallel
//!   simulation engine (balanced BFS regions, cross-shard link
//!   enumeration, validated partition invariants).

#![warn(missing_docs)]

pub mod graph;
pub mod irregular;
pub mod metrics;
pub mod partition;
pub mod regular;
pub mod spec;

pub use graph::{Endpoint, Topology, TopologyBuilder};
pub use irregular::IrregularConfig;
pub use metrics::TopologyMetrics;
pub use partition::{CrossLink, Partition};
pub use spec::TopologySpec;
