//! Regular reference topologies.
//!
//! The paper evaluates on irregular networks only, but regular topologies
//! with known diameters and path counts make the test suite sharp (we can
//! assert exact distances and option counts) and give the examples
//! recognizable shapes. All generators attach a configurable number of
//! hosts per switch and leave the switch-port budget to the caller.

use crate::graph::{Topology, TopologyBuilder};
use iba_core::{IbaError, SwitchId};

/// A bidirectional ring of `n` switches (degree 2).
pub fn ring(n: usize, hosts_per_switch: usize) -> Result<Topology, IbaError> {
    if n < 3 {
        return Err(IbaError::InvalidConfig(
            "ring needs at least 3 switches".into(),
        ));
    }
    let ports = 2 + hosts_per_switch;
    let mut b = TopologyBuilder::new(n, ports as u8);
    for i in 0..n {
        b.connect(SwitchId(i as u16), SwitchId(((i + 1) % n) as u16))?;
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// A `rows × cols` 2-D mesh (degree ≤ 4).
pub fn mesh2d(rows: usize, cols: usize, hosts_per_switch: usize) -> Result<Topology, IbaError> {
    if rows == 0 || cols == 0 || rows * cols < 2 {
        return Err(IbaError::InvalidConfig(
            "mesh needs at least 2 switches".into(),
        ));
    }
    let ports = 4 + hosts_per_switch;
    let id = |r: usize, c: usize| SwitchId((r * cols + c) as u16);
    let mut b = TopologyBuilder::new(rows * cols, ports as u8);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.connect(id(r, c), id(r, c + 1))?;
            }
            if r + 1 < rows {
                b.connect(id(r, c), id(r + 1, c))?;
            }
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// A `rows × cols` 2-D torus (degree 4). Requires `rows, cols ≥ 3` so the
/// wrap-around links do not duplicate mesh links.
pub fn torus2d(rows: usize, cols: usize, hosts_per_switch: usize) -> Result<Topology, IbaError> {
    if rows < 3 || cols < 3 {
        return Err(IbaError::InvalidConfig(
            "torus needs rows, cols >= 3 (single-link constraint)".into(),
        ));
    }
    let ports = 4 + hosts_per_switch;
    let id = |r: usize, c: usize| SwitchId((r * cols + c) as u16);
    let mut b = TopologyBuilder::new(rows * cols, ports as u8);
    for r in 0..rows {
        for c in 0..cols {
            b.connect(id(r, c), id(r, (c + 1) % cols))?;
            b.connect(id(r, c), id((r + 1) % rows, c))?;
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// A hypercube of dimension `dim` (2^dim switches, degree `dim`).
pub fn hypercube(dim: u32, hosts_per_switch: usize) -> Result<Topology, IbaError> {
    if dim == 0 || dim > 10 {
        return Err(IbaError::InvalidConfig(
            "hypercube dimension must be 1..=10".into(),
        ));
    }
    let n = 1usize << dim;
    let ports = dim as usize + hosts_per_switch;
    let mut b = TopologyBuilder::new(n, ports as u8);
    for i in 0..n {
        for bit in 0..dim {
            let j = i ^ (1 << bit);
            if i < j {
                b.connect(SwitchId(i as u16), SwitchId(j as u16))?;
            }
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// A fully connected graph of `n` switches (degree `n − 1`).
pub fn complete(n: usize, hosts_per_switch: usize) -> Result<Topology, IbaError> {
    if n < 2 {
        return Err(IbaError::InvalidConfig(
            "complete graph needs >= 2 switches".into(),
        ));
    }
    let ports = (n - 1) + hosts_per_switch;
    if ports > u8::MAX as usize {
        return Err(IbaError::InvalidConfig("too many ports per switch".into()));
    }
    let mut b = TopologyBuilder::new(n, ports as u8);
    for i in 0..n {
        for j in (i + 1)..n {
            b.connect(SwitchId(i as u16), SwitchId(j as u16))?;
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// A linear chain of `n` switches (degree ≤ 2) — the most pathological
/// shape for congestion tests.
pub fn chain(n: usize, hosts_per_switch: usize) -> Result<Topology, IbaError> {
    if n < 2 {
        return Err(IbaError::InvalidConfig(
            "chain needs at least 2 switches".into(),
        ));
    }
    let ports = 2 + hosts_per_switch;
    let mut b = TopologyBuilder::new(n, ports as u8);
    for i in 0..n - 1 {
        b.connect(SwitchId(i as u16), SwitchId((i + 1) as u16))?;
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let t = ring(6, 1).unwrap();
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_switch_links(), 6);
        for s in t.switch_ids() {
            assert_eq!(t.switch_degree(s), 2);
        }
        // Diameter of a 6-ring is 3.
        assert_eq!(t.switch_distances()[0][3], 3);
    }

    #[test]
    fn mesh_structure() {
        let t = mesh2d(3, 4, 2).unwrap();
        assert_eq!(t.num_switches(), 12);
        assert_eq!(t.num_switch_links(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
                                                         // Corner has degree 2, center degree 4.
        assert_eq!(t.switch_degree(SwitchId(0)), 2);
        assert_eq!(t.switch_degree(SwitchId(5)), 4);
        // Manhattan distance between opposite corners.
        assert_eq!(t.switch_distances()[0][11], 2 + 3);
    }

    #[test]
    fn torus_structure() {
        let t = torus2d(3, 3, 1).unwrap();
        assert_eq!(t.num_switch_links(), 18);
        for s in t.switch_ids() {
            assert_eq!(t.switch_degree(s), 4);
        }
        assert!(t.is_connected());
        assert!(torus2d(2, 3, 1).is_err());
    }

    #[test]
    fn hypercube_structure() {
        let t = hypercube(4, 1).unwrap();
        assert_eq!(t.num_switches(), 16);
        assert_eq!(t.num_switch_links(), 16 * 4 / 2);
        // Distance equals Hamming distance.
        let d = t.switch_distances();
        assert_eq!(d[0b0000][0b1111], 4);
        assert_eq!(d[0b0101][0b0110], 2);
    }

    #[test]
    fn complete_structure() {
        let t = complete(5, 1).unwrap();
        assert_eq!(t.num_switch_links(), 10);
        let d = t.switch_distances();
        for (i, row) in d.iter().enumerate() {
            for (j, &dd) in row.iter().enumerate() {
                assert_eq!(dd, u32::from(i != j));
            }
        }
    }

    #[test]
    fn chain_structure() {
        let t = chain(5, 1).unwrap();
        assert_eq!(t.switch_distances()[0][4], 4);
        assert_eq!(t.switch_degree(SwitchId(0)), 1);
        assert_eq!(t.switch_degree(SwitchId(2)), 2);
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert!(ring(2, 1).is_err());
        assert!(hypercube(0, 1).is_err());
        assert!(complete(1, 1).is_err());
        assert!(chain(1, 1).is_err());
        assert!(mesh2d(0, 5, 1).is_err());
    }

    #[test]
    fn all_regular_topologies_validate() {
        ring(8, 4).unwrap().validate().unwrap();
        mesh2d(4, 4, 4).unwrap().validate().unwrap();
        torus2d(4, 4, 4).unwrap().validate().unwrap();
        hypercube(3, 4).unwrap().validate().unwrap();
        complete(8, 4).unwrap().validate().unwrap();
        chain(8, 4).unwrap().validate().unwrap();
    }
}
