//! The supervised multi-worker campaign runner.
//!
//! Workers pull specs off a shared queue in campaign order. Every
//! attempt runs the executor on a *sacrificial* thread: a panic is
//! caught (`catch_unwind`) and a hang is abandoned after the per-run
//! wall-clock timeout — the worker simply stops waiting and the
//! runaway thread can never block the sweep. Failures retry with
//! bounded exponential backoff; once the attempt budget is spent the
//! run is journalled as poisoned with its last failure, and the sweep
//! continues. One fsync'd journal record per completed run means a
//! crash (or SIGKILL) loses at most the in-flight runs, never the
//! completed ones.

use crate::journal::{replay, truncate_torn_tail, Journal, RunRecord, RunStatus};
use crate::spec::{Campaign, RunSpec};
use iba_core::Json;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// The executor: interprets a [`RunSpec`] and returns its result
/// document. Shared across workers and cloned into each attempt's
/// sacrificial thread, hence the `Arc`.
pub type Executor = Arc<dyn Fn(&RunSpec) -> Result<Json, String> + Send + Sync>;

/// Supervision knobs.
#[derive(Clone, Debug)]
pub struct RunnerOpts {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Attempts per run before it is recorded as poisoned (≥ 1).
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Retry-delay ceiling.
    pub backoff_cap_ms: u64,
    /// Per-attempt wall-clock timeout.
    pub timeout_ms: u64,
    /// Stop dispatching after this many *new* journal records (test /
    /// CI hook standing in for a crash: the journal stays, the final
    /// output is not written).
    pub halt_after: Option<usize>,
    /// Suppress per-run progress lines.
    pub quiet: bool,
}

impl Default for RunnerOpts {
    fn default() -> RunnerOpts {
        RunnerOpts {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            max_attempts: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            timeout_ms: 600_000,
            halt_after: None,
            quiet: false,
        }
    }
}

/// What a campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One record per completed spec, in campaign (spec) order. When
    /// the run halted early, only completed specs are present.
    pub records: Vec<RunRecord>,
    /// Specs in the campaign.
    pub total: usize,
    /// Records recovered from the journal instead of re-executed.
    pub resumed: usize,
    /// Records newly executed by this invocation.
    pub executed: usize,
    /// Whether dispatch stopped early (`halt_after`).
    pub halted: bool,
}

impl CampaignOutcome {
    /// Spec ids of poisoned runs, in spec order.
    pub fn poisoned_ids(&self) -> Vec<&str> {
        self.records
            .iter()
            .filter(|r| r.status == RunStatus::Poisoned)
            .map(|r| r.spec_id.as_str())
            .collect()
    }

    /// The record for a spec id.
    pub fn record_for(&self, spec_id: &str) -> Option<&RunRecord> {
        self.records.iter().find(|r| r.spec_id == spec_id)
    }

    /// Campaign digest: per-run result digests folded in spec order.
    pub fn digest(&self) -> u64 {
        crate::digest::combine(self.records.iter().map(|r| r.digest))
    }
}

/// Exponential backoff with a ceiling: `base << (attempt-1)`, capped.
fn backoff_ms(opts: &RunnerOpts, attempt: u32) -> u64 {
    opts.backoff_base_ms
        .saturating_mul(1u64 << (attempt - 1).min(16))
        .min(opts.backoff_cap_ms)
}

/// Render a panic payload for the journal.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    let text = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    format!("panicked: {text}")
}

/// One supervised attempt on a sacrificial thread.
///
/// Returns the executor's verdict, or an error string for a panic or a
/// timeout. On timeout the sacrificial thread is *abandoned* (it holds
/// only clones of the spec and executor, so nothing in the campaign
/// waits on it).
fn attempt(executor: &Executor, spec: &RunSpec, timeout: Duration) -> Result<Json, String> {
    let (tx, rx) = mpsc::channel();
    let ex = executor.clone();
    let sp = spec.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("campaign-run-{}", sp.id))
        .spawn(move || {
            let verdict = catch_unwind(AssertUnwindSafe(|| ex(&sp)));
            let _ = tx.send(verdict);
        });
    if let Err(e) = spawned {
        return Err(format!("failed to spawn run thread: {e}"));
    }
    match rx.recv_timeout(timeout) {
        Ok(Ok(Ok(result))) => Ok(result),
        Ok(Ok(Err(e))) => Err(e),
        Ok(Err(payload)) => Err(panic_message(payload)),
        Err(_) => Err(format!("timed out after {} ms", timeout.as_millis())),
    }
}

/// Run one spec to a terminal record: retry with backoff until the
/// attempt budget is spent, then poison.
fn supervise(executor: &Executor, spec: &RunSpec, opts: &RunnerOpts) -> RunRecord {
    let timeout = Duration::from_millis(opts.timeout_ms.max(1));
    let mut last_error = String::new();
    for n in 1..=opts.max_attempts.max(1) {
        match attempt(executor, spec, timeout) {
            Ok(result) => return RunRecord::ok(spec, n, result),
            Err(e) => last_error = e,
        }
        if n < opts.max_attempts {
            std::thread::sleep(Duration::from_millis(backoff_ms(opts, n)));
        }
    }
    RunRecord::poisoned(spec, opts.max_attempts.max(1), last_error)
}

struct Progress {
    journal: Journal,
    done: usize,
    new_records: Vec<RunRecord>,
    /// First journal-append failure, if any. Durability is gone at
    /// that point, so the campaign must end in an error — never be
    /// mistaken for a deliberate `halt_after` stop.
    io_error: Option<String>,
}

/// Execute (or resume) a campaign.
///
/// With `resume = false` the journal at `journal_path` must not hold
/// prior records (pass `--resume`, or remove it, to continue an
/// interrupted sweep — a fresh run never silently discards one).
/// With `resume = true` the journal is replayed (tolerating a torn
/// final line), completed specs are skipped, and the outcome contains
/// the union of recovered and newly executed records in spec order.
pub fn run_campaign(
    campaign: &Campaign,
    executor: Executor,
    journal_path: impl AsRef<Path>,
    opts: &RunnerOpts,
    resume: bool,
) -> Result<CampaignOutcome, String> {
    campaign.validate()?;
    let journal_path = journal_path.as_ref();
    let total = campaign.specs.len();

    // Recover completed work.
    let mut done: HashMap<String, RunRecord> = HashMap::new();
    let journal = if resume {
        let rp = replay(journal_path)?;
        if rp.torn_tail {
            eprintln!(
                "campaign {}: journal had a torn final line (crash mid-write); truncated",
                campaign.name
            );
            // Cut the fragment off before appending: gluing the next
            // record onto it would turn the tolerated torn tail into
            // hard interior corruption on the following replay.
            truncate_torn_tail(journal_path, rp.valid_len).map_err(|e| {
                format!(
                    "{}: truncating torn journal tail: {e}",
                    journal_path.display()
                )
            })?;
        }
        for rec in rp.records {
            if !campaign.specs.iter().any(|s| s.id == rec.spec_id) {
                return Err(format!(
                    "journal {} holds record for unknown spec {:?}; \
                     it belongs to a different campaign definition",
                    journal_path.display(),
                    rec.spec_id
                ));
            }
            done.insert(rec.spec_id.clone(), rec);
        }
        eprintln!(
            "campaign {}: resumed {}/{} runs from journal",
            campaign.name,
            done.len(),
            total
        );
        Journal::append_to(journal_path).map_err(|e| e.to_string())?
    } else {
        if std::fs::metadata(journal_path)
            .map(|m| m.len() > 0)
            .unwrap_or(false)
        {
            return Err(format!(
                "journal {} already holds records; pass --resume to continue the \
                 interrupted sweep or remove the file to start over",
                journal_path.display()
            ));
        }
        Journal::create(journal_path).map_err(|e| e.to_string())?
    };
    let resumed = done.len();

    let pending: VecDeque<RunSpec> = campaign
        .specs
        .iter()
        .filter(|s| !done.contains_key(&s.id))
        .cloned()
        .collect();
    let queue = Mutex::new(pending);
    let stop = AtomicBool::new(false);
    let progress = Mutex::new(Progress {
        journal,
        done: resumed,
        new_records: Vec::new(),
        io_error: None,
    });

    let workers = opts.workers.max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let executor = executor.clone();
            let queue = &queue;
            let stop = &stop;
            let progress = &progress;
            let name = campaign.name.as_str();
            scope.spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Some(spec) = queue.lock().expect("queue lock poisoned").pop_front() else {
                    break;
                };
                let record = supervise(&executor, &spec, opts);
                let mut p = progress.lock().expect("progress lock poisoned");
                // A journal-append failure means durability is gone —
                // stop dispatching; completed records stay on disk and
                // the campaign ends in an error (not a clean halt).
                if let Err(e) = p.journal.append(&record) {
                    eprintln!("campaign {name}: journal write failed: {e}; halting");
                    if p.io_error.is_none() {
                        p.io_error = Some(e.to_string());
                    }
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
                p.done += 1;
                let executed_now = p.new_records.len() + 1;
                if !opts.quiet {
                    let note = match record.status {
                        RunStatus::Ok => "ok".to_string(),
                        RunStatus::Poisoned => format!(
                            "POISONED after {} attempts: {}",
                            record.attempts,
                            record.error.as_deref().unwrap_or("")
                        ),
                    };
                    eprintln!("campaign {name}: [{}/{total}] {} {note}", p.done, spec.id);
                }
                p.new_records.push(record);
                if opts.halt_after.is_some_and(|n| executed_now >= n) {
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
            });
        }
    });

    let halted = stop.load(Ordering::SeqCst);
    let progress = progress.into_inner().expect("progress lock poisoned");
    if let Some(e) = progress.io_error {
        return Err(format!(
            "journal write failed: {e}; {} completed runs remain in {}; \
             rerun with --resume once the journal is writable again",
            progress.done,
            journal_path.display()
        ));
    }
    for rec in progress.new_records {
        done.insert(rec.spec_id.clone(), rec);
    }
    let executed = done.len() - resumed;
    let records: Vec<RunRecord> = campaign
        .specs
        .iter()
        .filter_map(|s| done.remove(&s.id))
        .collect();
    Ok(CampaignOutcome {
        records,
        total,
        resumed,
        executed,
        halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let opts = RunnerOpts {
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            ..RunnerOpts::default()
        };
        assert_eq!(backoff_ms(&opts, 1), 100);
        assert_eq!(backoff_ms(&opts, 2), 200);
        assert_eq!(backoff_ms(&opts, 4), 800);
        assert_eq!(backoff_ms(&opts, 5), 1_000);
        assert_eq!(backoff_ms(&opts, 40), 1_000, "shift must not overflow");
    }

    #[test]
    fn panic_messages_cover_both_payload_shapes() {
        let p = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p), "panicked: static str");
        let p = catch_unwind(|| panic!("{}", String::from("formatted"))).unwrap_err();
        assert_eq!(panic_message(p), "panicked: formatted");
    }
}
