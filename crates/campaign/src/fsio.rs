//! Atomic results writes.
//!
//! Every results artifact in this workspace (`results/*.json`, CI
//! smoke outputs, Prometheus expositions) used to be written with a
//! bare `std::fs::write`, which can leave a torn half-document behind
//! on a crash mid-write. [`write_atomic`] closes that hole with the
//! classic tmp-file + rename dance: the content is fully written and
//! fsync'd to a sibling temporary file, then atomically renamed over
//! the destination, then the directory is fsync'd so the rename itself
//! is durable. Readers either see the old complete file or the new
//! complete file — never a prefix.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process sequence number for temporary names, so concurrent
/// writers of the same artifact within one process cannot collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` atomically (tmp file + rename), creating
/// parent directories as needed.
///
/// The temporary file lives in the same directory as `path` (renames
/// are only atomic within a filesystem) and carries the pid plus a
/// per-process sequence number, so neither two processes nor two
/// threads writing the same artifact can collide on the tmp name.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => {
            fs::create_dir_all(d)?;
            Some(d)
        }
        _ => None,
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best effort: don't leave the temporary behind on failure.
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Durability of the rename itself; non-fatal where directories
    // cannot be opened (e.g. some non-POSIX filesystems).
    if let Some(d) = dir {
        if let Ok(dh) = File::open(d) {
            let _ = dh.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("iba-campaign-fsio-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = scratch("basic");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.json");
        write_atomic(&path, "{\"a\":1}\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":1}\n");
        write_atomic(&path, "{\"a\":2}\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":2}\n");
        // No tmp litter.
        let names: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "{names:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_directoryless_name() {
        assert!(write_atomic("..", "x").is_err());
    }

    #[test]
    fn concurrent_writers_never_tear_or_collide() {
        let dir = scratch("concurrent");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let docs: Vec<String> = (0..4)
            .map(|i| format!("{{\"writer\":{i}}}\n").repeat(64))
            .collect();
        std::thread::scope(|s| {
            for doc in &docs {
                let path = &path;
                s.spawn(move || {
                    for _ in 0..25 {
                        write_atomic(path, doc).unwrap();
                    }
                });
            }
        });
        let last = fs::read_to_string(&path).unwrap();
        assert!(
            docs.contains(&last),
            "final file must be one writer's complete document"
        );
        // No tmp litter from any of the 100 writes.
        let names: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "{names:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
