//! Append-only JSONL journal of completed runs.
//!
//! One compact JSON line per completed run, fsync'd before the runner
//! moves on, so a crash (or SIGKILL) can lose at most the line being
//! written — and that torn final line is tolerated on replay. Every
//! record carries an FNV-1a digest of its result document; replay
//! recomputes and checks it, so silent corruption of a *complete* line
//! is detected rather than resumed over.

use crate::digest::fnv1a64;
use crate::spec::RunSpec;
use iba_core::Json;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Journal format version.
pub const JOURNAL_VERSION: u64 = 1;

/// Terminal status of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The executor returned a result.
    Ok,
    /// Every attempt failed (error, panic or timeout); the run is
    /// recorded with its last failure instead of aborting the sweep.
    Poisoned,
}

impl RunStatus {
    /// Stable JSON vocabulary.
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Poisoned => "poisoned",
        }
    }

    /// Parse the JSON vocabulary.
    pub fn parse(s: &str) -> Option<RunStatus> {
        match s {
            "ok" => Some(RunStatus::Ok),
            "poisoned" => Some(RunStatus::Poisoned),
            _ => None,
        }
    }
}

/// One journal line: the durable record of a completed run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// [`RunSpec::id`] of the run.
    pub spec_id: String,
    /// [`RunSpec::experiment`] kind.
    pub experiment: String,
    /// Terminal status.
    pub status: RunStatus,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Last failure message (panic payload, executor error or timeout)
    /// for poisoned runs; `None` for ok runs.
    pub error: Option<String>,
    /// FNV-1a digest of the compact rendering of `result`.
    pub digest: u64,
    /// The run's result document (`Json::Null` for poisoned runs).
    pub result: Json,
}

impl RunRecord {
    /// A successful record.
    pub fn ok(spec: &RunSpec, attempts: u32, result: Json) -> RunRecord {
        let digest = fnv1a64(result.to_string_compact().as_bytes());
        RunRecord {
            spec_id: spec.id.clone(),
            experiment: spec.experiment.clone(),
            status: RunStatus::Ok,
            attempts,
            error: None,
            digest,
            result,
        }
    }

    /// A poisoned record carrying the last failure.
    pub fn poisoned(spec: &RunSpec, attempts: u32, error: String) -> RunRecord {
        RunRecord {
            spec_id: spec.id.clone(),
            experiment: spec.experiment.clone(),
            status: RunStatus::Poisoned,
            attempts,
            error: Some(error),
            digest: fnv1a64(Json::Null.to_string_compact().as_bytes()),
            result: Json::Null,
        }
    }

    /// The journal line (compact JSON, newline-terminated).
    pub fn to_line(&self) -> String {
        let mut line = Json::obj([
            ("v", Json::from(JOURNAL_VERSION)),
            ("spec_id", Json::from(self.spec_id.as_str())),
            ("experiment", Json::from(self.experiment.as_str())),
            ("status", Json::from(self.status.as_str())),
            ("attempts", Json::from(self.attempts as u64)),
            (
                "error",
                self.error.as_deref().map(Json::from).unwrap_or(Json::Null),
            ),
            ("digest", Json::from(crate::digest::digest_hex(self.digest))),
            ("result", self.result.clone()),
        ])
        .to_string_compact();
        line.push('\n');
        line
    }

    /// Parse and validate a journal line's document.
    pub fn from_json(j: &Json) -> Result<RunRecord, String> {
        let version = j
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("record missing version")?;
        if version != JOURNAL_VERSION {
            return Err(format!("unsupported journal version {version}"));
        }
        let field = |k: &str| j.get(k).ok_or_else(|| format!("record missing {k:?}"));
        let spec_id = field("spec_id")?
            .as_str()
            .ok_or("spec_id not a string")?
            .to_string();
        let experiment = field("experiment")?
            .as_str()
            .ok_or("experiment not a string")?
            .to_string();
        let status = field("status")?
            .as_str()
            .and_then(RunStatus::parse)
            .ok_or_else(|| format!("{spec_id}: invalid status"))?;
        let attempts = field("attempts")?
            .as_u64()
            .ok_or_else(|| format!("{spec_id}: attempts not an integer"))?
            as u32;
        let error = match field("error")? {
            Json::Null => None,
            e => Some(
                e.as_str()
                    .ok_or_else(|| format!("{spec_id}: error not a string"))?
                    .to_string(),
            ),
        };
        let digest_text = field("digest")?
            .as_str()
            .ok_or_else(|| format!("{spec_id}: digest not a string"))?;
        let digest = digest_text
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("{spec_id}: malformed digest {digest_text:?}"))?;
        let result = field("result")?.clone();
        let recomputed = fnv1a64(result.to_string_compact().as_bytes());
        if recomputed != digest {
            return Err(format!(
                "{spec_id}: result digest mismatch (journal {digest:#x}, recomputed {recomputed:#x})"
            ));
        }
        Ok(RunRecord {
            spec_id,
            experiment,
            status,
            attempts,
            error,
            digest,
            result,
        })
    }
}

/// An open journal, appending one fsync'd record per completed run.
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Create a fresh journal, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Journal { file, path })
    }

    /// Open an existing journal for appending (creating it if absent).
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { file, path })
    }

    /// Append one record and fsync it to disk before returning.
    pub fn append(&mut self, record: &RunRecord) -> io::Result<()> {
        self.file.write_all(record.to_line().as_bytes())?;
        self.file.sync_data()
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Result of replaying a journal.
#[derive(Debug)]
pub struct Replay {
    /// Every complete, validated record, in append order.
    pub records: Vec<RunRecord>,
    /// Whether a torn (unterminated) final line was dropped — the
    /// signature of a crash mid-write.
    pub torn_tail: bool,
    /// Byte length of the valid prefix: everything up to and including
    /// the last newline-terminated line. When [`Replay::torn_tail`] is
    /// set the file must be truncated to this length (see
    /// [`truncate_torn_tail`]) before appending, or the next record
    /// would be concatenated onto the torn fragment and corrupt the
    /// journal's interior.
    pub valid_len: u64,
}

/// Truncate a journal to the valid prefix reported by [`replay`],
/// discarding a torn final line so the next append starts on a fresh
/// line instead of being glued onto the crash's partial record (which
/// would turn a tolerated torn tail into hard interior corruption on
/// the following replay).
pub fn truncate_torn_tail(path: impl AsRef<Path>, valid_len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_data()
}

/// Replay a journal file.
///
/// A missing file replays as empty. Every newline-terminated line must
/// parse and validate (a corrupt *interior* line is a hard error — the
/// journal is append-only, so only its very tail can legitimately be
/// incomplete); a final line without a terminating newline is the torn
/// write of a crash and is dropped, reported via [`Replay::torn_tail`].
/// Callers that go on to append must first cut the torn fragment off
/// the file with [`truncate_torn_tail`] at [`Replay::valid_len`].
pub fn replay(path: impl AsRef<Path>) -> Result<Replay, String> {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Replay {
                records: Vec::new(),
                torn_tail: false,
                valid_len: 0,
            })
        }
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut valid_len = 0u64;
    for (idx, chunk) in bytes.split_inclusive(|&b| b == b'\n').enumerate() {
        let line_no = idx + 1;
        let Some(line) = chunk.strip_suffix(b"\n") else {
            // Unterminated tail: the record being written when the
            // process died. By append-only construction it is the last
            // chunk; drop it.
            torn_tail = true;
            break;
        };
        valid_len += chunk.len() as u64;
        if line.is_empty() {
            continue;
        }
        let text = std::str::from_utf8(line)
            .map_err(|_| format!("{}: line {line_no}: invalid UTF-8", path.display()))?;
        let doc = Json::parse(text)
            .map_err(|e| format!("{}: line {line_no}: corrupt journal: {e}", path.display()))?;
        let rec = RunRecord::from_json(&doc)
            .map_err(|e| format!("{}: line {line_no}: corrupt journal: {e}", path.display()))?;
        records.push(rec);
    }
    Ok(Replay {
        records,
        torn_tail,
        valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("iba-journal-{}-{name}", std::process::id()))
    }

    fn spec(id: &str) -> RunSpec {
        RunSpec::new(id, "test", Json::obj([("n", Json::from(1u64))]))
    }

    #[test]
    fn record_round_trips_through_a_line() {
        let ok = RunRecord::ok(&spec("a"), 2, Json::obj([("x", Json::from(7u64))]));
        let line = ok.to_line();
        assert!(line.ends_with('\n'));
        assert!(!line.trim_end().contains('\n'), "records must be one line");
        let parsed = RunRecord::from_json(&Json::parse(line.trim_end()).unwrap()).unwrap();
        assert_eq!(parsed, ok);

        let bad = RunRecord::poisoned(&spec("b"), 3, "panicked: injected".into());
        let parsed = RunRecord::from_json(&Json::parse(bad.to_line().trim_end()).unwrap()).unwrap();
        assert_eq!(parsed, bad);
        assert_eq!(parsed.status, RunStatus::Poisoned);
        assert!(parsed.result.is_null());
    }

    #[test]
    fn digest_mismatch_is_detected() {
        let ok = RunRecord::ok(&spec("a"), 1, Json::obj([("x", Json::from(7u64))]));
        let line = ok.to_line().replace("\"x\":7", "\"x\":8");
        let err = RunRecord::from_json(&Json::parse(line.trim_end()).unwrap()).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn append_replay_round_trip_and_torn_tail() {
        let path = scratch("roundtrip");
        let _ = std::fs::remove_file(&path);
        let recs = vec![
            RunRecord::ok(&spec("a"), 1, Json::obj([("v", Json::from(1u64))])),
            RunRecord::poisoned(&spec("b"), 2, "boom".into()),
            RunRecord::ok(&spec("c"), 1, Json::obj([("v", Json::from(3u64))])),
        ];
        let mut j = Journal::create(&path).unwrap();
        for r in &recs {
            j.append(r).unwrap();
        }
        drop(j);
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records, recs);
        assert!(!rp.torn_tail);
        let intact_len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(rp.valid_len, intact_len);

        // Simulate a crash mid-write: append half a record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"spec_id\":\"d\",\"st").unwrap();
        drop(f);
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records, recs, "torn tail must not hide complete records");
        assert!(rp.torn_tail);
        assert_eq!(rp.valid_len, intact_len, "valid prefix excludes the torn tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_torn_tail_accepts_appends_and_replays_clean() {
        let path = scratch("truncate-resume");
        let _ = std::fs::remove_file(&path);
        let first = RunRecord::ok(&spec("a"), 1, Json::obj([("v", Json::from(1u64))]));
        let mut j = Journal::create(&path).unwrap();
        j.append(&first).unwrap();
        drop(j);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"v\":1,\"spec_id\":\"b\",\"st").unwrap();
        drop(f);

        // Resume protocol: replay, truncate the torn tail, append.
        let rp = replay(&path).unwrap();
        assert!(rp.torn_tail);
        truncate_torn_tail(&path, rp.valid_len).unwrap();
        let second = RunRecord::ok(&spec("b"), 2, Json::obj([("v", Json::from(2u64))]));
        let mut j = Journal::append_to(&path).unwrap();
        j.append(&second).unwrap();
        drop(j);

        // The appended record must be a fresh interior-clean line, not
        // a continuation of the torn fragment.
        let rp = replay(&path).unwrap();
        assert_eq!(rp.records, vec![first, second]);
        assert!(!rp.torn_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let path = scratch("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append(&RunRecord::ok(&spec("a"), 1, Json::Null)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        bytes.extend_from_slice(
            RunRecord::ok(&spec("b"), 1, Json::Null)
                .to_line()
                .as_bytes(),
        );
        std::fs::write(&path, bytes).unwrap();
        assert!(replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_replays_empty() {
        let rp = replay(scratch("never-created")).unwrap();
        assert!(rp.records.is_empty());
        assert!(!rp.torn_tail);
    }
}
