//! FNV-1a digests for journal records and campaign-level accounting.
//!
//! The journal stores a digest of every run's result so a resumed
//! campaign can detect a corrupted record instead of silently reusing
//! it, and so CI can compare a resumed sweep against a clean one by a
//! single value.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold an ordered sequence of digests into one campaign digest.
///
/// Deliberately order-sensitive (little-endian bytes of each digest fed
/// through FNV-1a): two campaigns agree iff every run result agrees *in
/// spec order*, which is exactly the resumed-equals-uninterrupted
/// guarantee CI gates on.
pub fn combine(digests: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for d in digests {
        for b in d.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Canonical hex rendering (`0x`-prefixed, zero-padded to 16 digits).
pub fn digest_hex(d: u64) -> String {
    format!("{d:#018x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine([1, 2]), combine([2, 1]));
        assert_eq!(combine([1, 2]), combine([1, 2]));
        assert_ne!(combine([]), combine([0]));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(digest_hex(0), "0x0000000000000000");
        assert_eq!(digest_hex(u64::MAX), "0xffffffffffffffff");
        assert_eq!(digest_hex(0xab), "0x00000000000000ab");
    }
}
