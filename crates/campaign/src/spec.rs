//! Declarative campaign definitions.

use iba_core::Json;

/// One run of a campaign: an experiment kind plus its parameters
/// (topology spec, seed, LMC, load, fault mix, ...), all declarative —
/// the executor closure interprets them.
///
/// The `id` is the run's durable identity: the journal keys completed
/// work by it, and resume skips specs whose id already has a record.
/// It must be unique within the campaign and stable across invocations
/// (derive it from the parameters, never from wall time).
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Stable unique identity, e.g. `chaos/links/n8/s100`.
    pub id: String,
    /// Experiment kind the executor dispatches on, e.g. `chaos-cell`.
    pub experiment: String,
    /// Declarative parameters of the run.
    pub params: Json,
}

impl RunSpec {
    /// Build a spec.
    pub fn new(id: impl Into<String>, experiment: impl Into<String>, params: Json) -> RunSpec {
        RunSpec {
            id: id.into(),
            experiment: experiment.into(),
            params,
        }
    }

    /// A `u64` parameter, with a spec-qualified error.
    pub fn param_u64(&self, key: &str) -> Result<u64, String> {
        self.params
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{}: missing or non-integer param {key:?}", self.id))
    }

    /// A string parameter, with a spec-qualified error.
    pub fn param_str(&self, key: &str) -> Result<&str, String> {
        self.params
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: missing or non-string param {key:?}", self.id))
    }
}

/// An ordered set of [`RunSpec`]s with a campaign name.
///
/// Order matters: the final output is assembled in spec order, which is
/// what makes a resumed campaign byte-identical to an uninterrupted
/// one regardless of worker interleaving.
#[derive(Clone, Debug, Default)]
pub struct Campaign {
    /// Campaign name (journal header / report labelling).
    pub name: String,
    /// The runs, in output order.
    pub specs: Vec<RunSpec>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new(name: impl Into<String>) -> Campaign {
        Campaign {
            name: name.into(),
            specs: Vec::new(),
        }
    }

    /// Append a spec.
    pub fn push(&mut self, spec: RunSpec) {
        self.specs.push(spec);
    }

    /// Validate the definition: every id non-empty and unique.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for s in &self.specs {
            if s.id.is_empty() {
                return Err(format!("campaign {}: empty spec id", self.name));
            }
            if !seen.insert(s.id.as_str()) {
                return Err(format!(
                    "campaign {}: duplicate spec id {}",
                    self.name, s.id
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_accessors_carry_spec_context() {
        let s = RunSpec::new(
            "chaos/links/n8/s1",
            "chaos-cell",
            Json::obj([("size", Json::from(8u64)), ("mix", Json::from("links"))]),
        );
        assert_eq!(s.param_u64("size").unwrap(), 8);
        assert_eq!(s.param_str("mix").unwrap(), "links");
        let err = s.param_u64("seed").unwrap_err();
        assert!(err.contains("chaos/links/n8/s1"), "{err}");
        assert!(s.param_str("size").is_err());
    }

    #[test]
    fn validate_rejects_duplicates_and_empties() {
        let mut c = Campaign::new("t");
        c.push(RunSpec::new("a", "k", Json::object()));
        c.push(RunSpec::new("b", "k", Json::object()));
        assert!(c.validate().is_ok());
        c.push(RunSpec::new("a", "k", Json::object()));
        assert!(c.validate().unwrap_err().contains("duplicate"));
        let mut e = Campaign::new("t");
        e.push(RunSpec::new("", "k", Json::object()));
        assert!(e.validate().unwrap_err().contains("empty"));
    }
}
