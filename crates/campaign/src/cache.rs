//! Topology / routing artifact cache.
//!
//! Campaign runs that share a fabric — the same `(topo_spec, seed,
//! lmc)` triple — should not each rebuild the topology and its LFTs:
//! at 256+ switches with LMC ≥ 1 a routing compile dwarfs many of the
//! simulations that use it. [`ArtifactCache`] memoizes any `Send +
//! Sync` artifact behind an [`std::sync::Arc`], building each key at
//! most once even when workers race (losers block on the builder via
//! [`std::sync::OnceLock::get_or_init`]) and counting hits/misses for
//! the campaign report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: the fabric identity a compiled artifact belongs to.
///
/// `topo_spec` is the caller's canonical topology string (e.g.
/// `irregular8`, `torus16x16`, `irregular8+apm` when the routing
/// variant matters); `seed` the generator seed; `lmc` the LID mask
/// control the routing was compiled for.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FabricKey {
    /// Canonical topology-spec string.
    pub topo_spec: String,
    /// Generator seed.
    pub seed: u64,
    /// LID mask control of the compiled routing.
    pub lmc: u8,
}

impl FabricKey {
    /// Build a key.
    pub fn new(topo_spec: impl Into<String>, seed: u64, lmc: u8) -> FabricKey {
        FabricKey {
            topo_spec: topo_spec.into(),
            seed,
            lmc,
        }
    }
}

type Slot<V> = Arc<OnceLock<Result<Arc<V>, String>>>;

/// A keyed build-once cache of shared artifacts.
pub struct ArtifactCache<V> {
    slots: Mutex<HashMap<FabricKey, Slot<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for ArtifactCache<V> {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

impl<V> ArtifactCache<V> {
    /// An empty cache.
    pub fn new() -> ArtifactCache<V> {
        ArtifactCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The artifact for `key`, building it with `build` on first use.
    ///
    /// Concurrent callers of the same key block until the single
    /// builder finishes; a build error is cached too (retrying a
    /// deterministic builder would fail identically).
    pub fn get_or_build(
        &self,
        key: &FabricKey,
        build: impl FnOnce() -> Result<V, String>,
    ) -> Result<Arc<V>, String> {
        let slot: Slot<V> = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            slots.entry(key.clone()).or_default().clone()
        };
        let mut built = false;
        let outcome = slot.get_or_init(|| {
            built = true;
            build().map(Arc::new)
        });
        if built {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        outcome.clone()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn builds_once_and_counts() {
        let cache: ArtifactCache<u64> = ArtifactCache::new();
        let builds = AtomicU32::new(0);
        let key = FabricKey::new("irregular8", 42, 1);
        for _ in 0..3 {
            let v = cache
                .get_or_build(&key, || {
                    builds.fetch_add(1, Ordering::Relaxed);
                    Ok(7)
                })
                .unwrap();
            assert_eq!(*v, 7);
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), (2, 1));
        assert_eq!(cache.len(), 1);

        let other = FabricKey::new("irregular8", 43, 1);
        cache.get_or_build(&other, || Ok(9)).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn errors_are_cached() {
        let cache: ArtifactCache<u64> = ArtifactCache::new();
        let key = FabricKey::new("bad", 0, 0);
        assert!(cache.get_or_build(&key, || Err("nope".into())).is_err());
        // Second call must not invoke the builder again.
        let err = cache
            .get_or_build(&key, || panic!("builder must not rerun"))
            .unwrap_err();
        assert_eq!(err, "nope");
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache: Arc<ArtifactCache<u64>> = Arc::new(ArtifactCache::new());
        let builds = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let builds = builds.clone();
            handles.push(std::thread::spawn(move || {
                let key = FabricKey::new("torus8x8", 1, 1);
                *cache
                    .get_or_build(&key, || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        // Widen the race window.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(11)
                    })
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 11);
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 7);
    }
}
