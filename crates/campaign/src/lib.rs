//! # iba-campaign
//!
//! Crash-safe campaign runner for large parameter sweeps (DESIGN.md
//! §16). A *campaign* is a declarative, ordered set of [`RunSpec`]s —
//! experiment kind plus topology / seed / LMC / load / fault parameters
//! — executed by a supervised multi-worker pool:
//!
//! * every run executes on a sacrificial thread under `catch_unwind`
//!   **panic isolation** and a per-run **wall-clock timeout**;
//! * failed or timed-out runs are retried with bounded exponential
//!   **backoff**; once the attempt budget is exhausted the run is
//!   recorded as **poisoned** (with the panic payload or error message)
//!   instead of aborting the sweep;
//! * progress streams to an append-only **JSONL journal** — one
//!   fsync'd [`RunRecord`] per completed run, carrying an FNV-1a digest
//!   of the result — so no completed work is ever lost;
//! * a **resumed** campaign ([`run_campaign`] with `resume = true`)
//!   replays the journal (tolerating a torn final line from a crash
//!   mid-write), skips completed specs, and produces final output
//!   byte-identical to an uninterrupted campaign because records are
//!   assembled in spec order from deterministic per-run results;
//! * an [`ArtifactCache`] keyed by `(topo_spec, seed, lmc)` shares
//!   expensive topology/routing builds across runs of the same fabric.
//!
//! The runner is generic: an executor closure maps a [`RunSpec`] to a
//! result [`iba_core::Json`] document. The experiment crates own the
//! spec vocabulary; this crate owns supervision and durability.

#![warn(missing_docs)]

pub mod cache;
pub mod digest;
pub mod fsio;
pub mod journal;
pub mod runner;
pub mod spec;

pub use cache::{ArtifactCache, FabricKey};
pub use digest::{digest_hex, fnv1a64};
pub use fsio::write_atomic;
pub use journal::{replay, truncate_torn_tail, Journal, Replay, RunRecord, RunStatus};
pub use runner::{run_campaign, CampaignOutcome, Executor, RunnerOpts};
pub use spec::{Campaign, RunSpec};
