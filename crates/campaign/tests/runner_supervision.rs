//! Supervision contract of the campaign runner: panic isolation,
//! hang containment via wall-clock timeout, retry with backoff,
//! poisoning after budget exhaustion — and the crash/resume identity:
//! an interrupted campaign, resumed, yields byte-identical output to
//! an uninterrupted one with zero re-executed runs.

use iba_campaign::{
    replay, run_campaign, Campaign, Executor, RunRecord, RunSpec, RunStatus, RunnerOpts,
};
use iba_core::Json;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "iba-runner-{}-{}-{name}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Executor whose behaviour is scripted by the spec's `kind` param;
/// records per-spec execution counts so tests can assert zero re-runs.
fn scripted(counts: Arc<Mutex<HashMap<String, u32>>>) -> Executor {
    Arc::new(move |spec: &RunSpec| {
        let attempt_no = {
            let mut c = counts.lock().unwrap();
            let e = c.entry(spec.id.clone()).or_insert(0);
            *e += 1;
            *e
        };
        match spec.param_str("kind")? {
            "ok" => Ok(Json::obj([
                ("id", Json::from(spec.id.as_str())),
                ("value", Json::from(spec.param_u64("value")?)),
            ])),
            "flaky" => {
                // Fails until the scripted attempt, then succeeds.
                if u64::from(attempt_no) < spec.param_u64("succeed_on")? {
                    Err(format!("{}: transient failure", spec.id))
                } else {
                    Ok(Json::obj([("recovered_after", Json::from(attempt_no))]))
                }
            }
            "panic" => panic!("injected panic in {}", spec.id),
            "hang" => loop {
                std::thread::sleep(std::time::Duration::from_millis(25));
            },
            other => Err(format!("unknown kind {other:?}")),
        }
    })
}

fn ok_spec(i: u64) -> RunSpec {
    RunSpec::new(
        format!("t/ok-{i}"),
        "scripted",
        Json::obj([("kind", Json::from("ok")), ("value", Json::from(i * 10))]),
    )
}

fn quick_opts() -> RunnerOpts {
    RunnerOpts {
        workers: 3,
        max_attempts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        timeout_ms: 200,
        halt_after: None,
        quiet: true,
    }
}

#[test]
fn panics_hangs_and_flakes_are_contained() {
    let mut campaign = Campaign::new("supervision");
    for i in 0..4 {
        campaign.push(ok_spec(i));
    }
    campaign.push(RunSpec::new(
        "t/flaky",
        "scripted",
        Json::obj([
            ("kind", Json::from("flaky")),
            ("succeed_on", Json::from(3u64)),
        ]),
    ));
    campaign.push(RunSpec::new(
        "t/panicker",
        "scripted",
        Json::obj([("kind", Json::from("panic"))]),
    ));
    campaign.push(RunSpec::new(
        "t/hanger",
        "scripted",
        Json::obj([("kind", Json::from("hang"))]),
    ));

    let counts = Arc::new(Mutex::new(HashMap::new()));
    let journal = scratch("contained.jsonl");
    let outcome = run_campaign(
        &campaign,
        scripted(counts.clone()),
        &journal,
        &quick_opts(),
        false,
    )
    .unwrap();

    assert_eq!(outcome.total, 7);
    assert_eq!(outcome.executed, 7);
    assert_eq!(outcome.resumed, 0);
    assert!(!outcome.halted);
    // Records come back in campaign order regardless of worker timing.
    let ids: Vec<&str> = outcome.records.iter().map(|r| r.spec_id.as_str()).collect();
    assert_eq!(
        ids,
        [
            "t/ok-0",
            "t/ok-1",
            "t/ok-2",
            "t/ok-3",
            "t/flaky",
            "t/panicker",
            "t/hanger"
        ]
    );

    // The flaky run retried to success and no other run lost anything.
    let flaky = outcome.record_for("t/flaky").unwrap();
    assert_eq!(flaky.status, RunStatus::Ok);
    assert_eq!(flaky.attempts, 3);
    assert_eq!(
        flaky.result.get("recovered_after").unwrap().as_u64(),
        Some(3)
    );

    // The panicker is poisoned with its payload, not aborting the sweep.
    let p = outcome.record_for("t/panicker").unwrap();
    assert_eq!(p.status, RunStatus::Poisoned);
    assert_eq!(p.attempts, 3);
    assert!(
        p.error
            .as_deref()
            .unwrap()
            .contains("injected panic in t/panicker"),
        "{:?}",
        p.error
    );
    assert_eq!(
        counts.lock().unwrap()["t/panicker"],
        3,
        "panic retries honour the budget"
    );

    // The hanger is poisoned by the wall-clock timeout.
    let h = outcome.record_for("t/hanger").unwrap();
    assert_eq!(h.status, RunStatus::Poisoned);
    assert!(
        h.error
            .as_deref()
            .unwrap()
            .contains("timed out after 200 ms"),
        "{:?}",
        h.error
    );

    // Every ok run completed exactly once with its result intact.
    for i in 0..4 {
        let r = outcome.record_for(&format!("t/ok-{i}")).unwrap();
        assert_eq!(r.status, RunStatus::Ok);
        assert_eq!(r.result.get("value").unwrap().as_u64(), Some(i * 10));
        assert_eq!(counts.lock().unwrap()[&format!("t/ok-{i}")], 1);
    }
    assert_eq!(outcome.poisoned_ids(), ["t/panicker", "t/hanger"]);
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn interrupted_campaign_resumes_byte_identical_with_zero_reruns() {
    let mut campaign = Campaign::new("resume");
    for i in 0..6 {
        campaign.push(ok_spec(i));
    }

    // Uninterrupted reference run.
    let ref_counts = Arc::new(Mutex::new(HashMap::new()));
    let ref_journal = scratch("ref.jsonl");
    let reference = run_campaign(
        &campaign,
        scripted(ref_counts),
        &ref_journal,
        &quick_opts(),
        false,
    )
    .unwrap();
    assert!(!reference.halted);

    // Interrupted run: halt dispatch after 3 journal records, then
    // simulate the crash's torn write by appending half a record.
    let counts = Arc::new(Mutex::new(HashMap::new()));
    let journal = scratch("resumed.jsonl");
    let halted = run_campaign(
        &campaign,
        scripted(counts.clone()),
        &journal,
        &RunnerOpts {
            workers: 1,
            halt_after: Some(3),
            ..quick_opts()
        },
        false,
    )
    .unwrap();
    assert!(halted.halted);
    assert_eq!(halted.executed, 3);
    let executed_before: Vec<String> = counts.lock().unwrap().keys().cloned().collect();
    assert_eq!(executed_before.len(), 3);
    let mut f = OpenOptions::new().append(true).open(&journal).unwrap();
    f.write_all(b"{\"v\":1,\"spec_id\":\"t/ok-3\",\"status\":\"o")
        .unwrap();
    drop(f);

    // Resume: skips the 3 completed specs, executes the other 3.
    let resumed = run_campaign(
        &campaign,
        scripted(counts.clone()),
        &journal,
        &quick_opts(),
        true,
    )
    .unwrap();
    assert!(!resumed.halted);
    assert_eq!(resumed.resumed, 3);
    assert_eq!(resumed.executed, 3);
    // Zero re-executed runs: every spec ran exactly once across both
    // invocations.
    for (id, n) in counts.lock().unwrap().iter() {
        assert_eq!(*n, 1, "{id} was re-executed");
    }

    // Byte-identical final output: identical records, digests and
    // rendered documents.
    assert_eq!(resumed.records, reference.records);
    assert_eq!(resumed.digest(), reference.digest());
    let render = |records: &[RunRecord]| {
        Json::arr(records.iter().map(|r| r.result.clone())).to_string_pretty()
    };
    assert_eq!(render(&resumed.records), render(&reference.records));

    // The resume must have truncated the torn fragment before
    // appending: every line of the post-resume journal is a complete
    // record, so a *second* crash + resume replays clean instead of
    // dying on interior corruption.
    let rp = replay(&journal).unwrap();
    assert!(!rp.torn_tail, "resume left the torn fragment in place");
    assert_eq!(rp.records.len(), 6);
    let again = run_campaign(
        &campaign,
        scripted(counts.clone()),
        &journal,
        &quick_opts(),
        true,
    )
    .unwrap();
    assert_eq!(again.resumed, 6);
    assert_eq!(again.executed, 0);
    assert_eq!(again.records, reference.records);

    std::fs::remove_file(&journal).unwrap();
    std::fs::remove_file(&ref_journal).unwrap();
}

#[cfg(target_os = "linux")]
#[test]
fn journal_write_failure_is_an_error_not_a_clean_halt() {
    // /dev/full accepts opens but fails every write with ENOSPC — the
    // canonical disk-full stand-in. The campaign must surface that as
    // an error so a sweep whose journal stopped persisting can never
    // exit like a deliberate --halt-after stop.
    let mut campaign = Campaign::new("enospc");
    campaign.push(ok_spec(0));
    let counts = Arc::new(Mutex::new(HashMap::new()));
    let err = run_campaign(
        &campaign,
        scripted(counts),
        "/dev/full",
        &quick_opts(),
        false,
    )
    .unwrap_err();
    assert!(err.contains("journal write failed"), "{err}");
}

#[test]
fn fresh_run_refuses_a_populated_journal() {
    let mut campaign = Campaign::new("guard");
    campaign.push(ok_spec(0));
    let counts = Arc::new(Mutex::new(HashMap::new()));
    let journal = scratch("guard.jsonl");
    run_campaign(
        &campaign,
        scripted(counts.clone()),
        &journal,
        &quick_opts(),
        false,
    )
    .unwrap();
    let err = run_campaign(
        &campaign,
        scripted(counts.clone()),
        &journal,
        &quick_opts(),
        false,
    )
    .unwrap_err();
    assert!(err.contains("--resume"), "{err}");
    // Resuming a *complete* journal is a no-op that reproduces the run.
    let resumed = run_campaign(
        &campaign,
        scripted(counts.clone()),
        &journal,
        &quick_opts(),
        true,
    )
    .unwrap();
    assert_eq!(resumed.resumed, 1);
    assert_eq!(resumed.executed, 0);
    assert_eq!(counts.lock().unwrap()["t/ok-0"], 1);
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn journal_from_another_campaign_is_rejected_on_resume() {
    let mut a = Campaign::new("a");
    a.push(ok_spec(0));
    let counts = Arc::new(Mutex::new(HashMap::new()));
    let journal = scratch("foreign.jsonl");
    run_campaign(&a, scripted(counts.clone()), &journal, &quick_opts(), false).unwrap();
    let mut b = Campaign::new("b");
    b.push(ok_spec(1));
    let err = run_campaign(&b, scripted(counts), &journal, &quick_opts(), true).unwrap_err();
    assert!(err.contains("unknown spec"), "{err}");
    std::fs::remove_file(&journal).unwrap();
}
