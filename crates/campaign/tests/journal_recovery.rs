//! Journal crash-recovery property: truncating the JSONL journal at an
//! *arbitrary byte offset* — the on-disk state after a crash or
//! SIGKILL mid-write — must replay exactly the set of complete
//! (newline-terminated) records, flagging a torn tail when one was
//! dropped, and never erroring.

use iba_campaign::{replay, Journal, RunRecord, RunSpec};
use iba_core::Json;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "iba-journal-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Deterministically varied record for case `i`: a mix of ok and
/// poisoned records with string payloads that exercise JSON escaping
/// (quotes, backslashes, newlines) inside a single journal line.
fn record(i: u64, poisoned: bool) -> RunRecord {
    let spec = RunSpec::new(
        format!("prop/run-{i}"),
        "prop-cell",
        Json::obj([("i", Json::from(i))]),
    );
    if poisoned {
        RunRecord::poisoned(&spec, 3, format!("panicked: \"boom\\{i}\"\nline two"))
    } else {
        RunRecord::ok(
            &spec,
            1,
            Json::obj([
                ("i", Json::from(i)),
                ("latency_ns", Json::from(i * 997)),
                ("note", Json::from(format!("q\"{i}\" and \\slash"))),
            ]),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_recovers_exactly_the_complete_records(
        n in 0usize..8,
        poison_mask in any::<u8>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = scratch();
        let records: Vec<RunRecord> = (0..n as u64)
            .map(|i| record(i, poison_mask >> (i % 8) & 1 == 1))
            .collect();
        let mut journal = Journal::create(&path).unwrap();
        for r in &records {
            journal.append(r).unwrap();
        }
        drop(journal);

        let bytes = std::fs::read(&path).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // Expected floor: records whose full line (incl. newline) fits.
        let mut offset = 0usize;
        let mut expected = Vec::new();
        for r in &records {
            offset += r.to_line().len();
            if offset <= cut {
                expected.push(r.clone());
            } else {
                break;
            }
        }
        let valid_len = expected.iter().map(|r| r.to_line().len()).sum::<usize>();
        let tail_torn = cut > valid_len;

        let rp = replay(&path).unwrap();
        prop_assert_eq!(&rp.records, &expected);
        prop_assert_eq!(rp.torn_tail, tail_torn);
        prop_assert_eq!(rp.valid_len as usize, valid_len);
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn truncation_sweep_is_exhaustive_for_a_small_journal() {
    // Every byte offset of a 3-record journal, not just sampled ones.
    let records: Vec<RunRecord> = (0..3).map(|i| record(i, i == 1)).collect();
    let path = scratch();
    let mut journal = Journal::create(&path).unwrap();
    for r in &records {
        journal.append(r).unwrap();
    }
    drop(journal);
    let bytes = std::fs::read(&path).unwrap();
    let line_ends: Vec<usize> = records
        .iter()
        .scan(0usize, |acc, r| {
            *acc += r.to_line().len();
            Some(*acc)
        })
        .collect();
    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let rp = replay(&path).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let complete = line_ends.iter().filter(|&&e| e <= cut).count();
        let valid_len = line_ends
            .get(complete.wrapping_sub(1))
            .copied()
            .unwrap_or(0);
        assert_eq!(rp.records.len(), complete, "cut at byte {cut}");
        assert_eq!(rp.records[..], records[..complete], "cut at byte {cut}");
        assert_eq!(rp.torn_tail, cut > valid_len, "cut at byte {cut}");
        assert_eq!(rp.valid_len as usize, valid_len, "cut at byte {cut}");
    }
    std::fs::remove_file(&path).unwrap();
}
