//! The telemetry probe layer.
//!
//! [`crate::RunResult`] reports end-of-run aggregates; the paper's core
//! claims, though, live in *where packets wait* — how full the adaptive
//! and escape regions of each VL buffer are over time, how often an
//! output is skipped for lack of adaptive (`C_A`) or total credits, and
//! how long granted packets sat between routing-pipeline completion and
//! their crossbar grant. This module records exactly that transient
//! behavior:
//!
//! * **occupancy timeseries** — on a configurable simulated-time cadence
//!   ([`TelemetryOpts::sample_every_ns`]) the simulator snapshots every
//!   switch's per-VL buffer occupancy, split at the §4.4 adaptive/escape
//!   boundary and aggregated over input ports ([`VlOccupancy`]);
//! * **credit-stall counters** — each time arbitration skips a feasible
//!   route option, the skip is tallied per (switch, output port) and
//!   tagged with its cause ([`StallCause`]): adaptive share below the
//!   packet size, escape (total) credits below the packet size, or a
//!   dead port;
//! * **forwarding counters** — adaptive- vs escape-option grants per
//!   switch (the per-switch refinement of
//!   [`crate::RunResult::escape_fraction`]);
//! * **arbitration-wait histograms** — per switch, the simulated
//!   nanoseconds from a packet becoming arbitration-eligible
//!   (`ready_at`) to its crossbar grant, in power-of-two buckets.
//!
//! Samples and the final report flow through a pluggable
//! [`TelemetrySink`]: [`MemorySink`] keeps everything in memory for
//! tests and in-process analysis, [`JsonLinesSink`] streams
//! JSON-lines with a versioned schema ([`TELEMETRY_SCHEMA_VERSION`])
//! for experiments. Sampling rides the ordinary event queue, so an
//! instrumented run is bit-identical across event-queue backends; with
//! telemetry disabled the simulator carries a single `Option` check per
//! hook and schedules no extra events.

use crate::buffer::VlBuffer;
use iba_core::{Credits, Json, PortIndex, Pow2Histogram, SimTime, SwitchId, VirtualLane};

/// Version stamp of the telemetry sink schema. Bump on any change to
/// the JSON layout emitted by [`TelemetrySample::to_json`] /
/// [`TelemetryReport::to_json`].
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Telemetry configuration: what cadence to sample occupancy at and how
/// many samples to keep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryOpts {
    /// Simulated-time distance between occupancy samples, in
    /// nanoseconds (clamped to ≥ 1 at use).
    pub sample_every_ns: u64,
    /// Occupancy samples delivered to the sink before further samples
    /// are dropped (counted in [`TelemetryReport::samples_dropped`]) —
    /// bounds memory and artifact size on long runs. Counters and
    /// histograms keep accumulating regardless.
    pub max_samples: usize,
}

impl TelemetryOpts {
    /// Sample every `sample_every_ns` simulated nanoseconds, with the
    /// default sample cap.
    pub fn every_ns(sample_every_ns: u64) -> TelemetryOpts {
        TelemetryOpts {
            sample_every_ns,
            ..TelemetryOpts::default()
        }
    }
}

impl Default for TelemetryOpts {
    /// 1 µs cadence (300 samples over the paper's 300 µs horizon),
    /// capped at 65 536 samples.
    fn default() -> TelemetryOpts {
        TelemetryOpts {
            sample_every_ns: 1_000,
            max_samples: 1 << 16,
        }
    }
}

/// Why arbitration skipped an output option for a routed, ready packet.
///
/// Link-busy skips are deliberately *not* a stall cause: a streaming
/// output is the link doing useful work, not starvation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallCause {
    /// An adaptive option's free adaptive share (`C_A = max(0, C −
    /// C_max/2)`) was below the packet size.
    NoAdaptiveCredit,
    /// The escape option's total free credits were below the packet
    /// size.
    NoEscapeCredit,
    /// The option's port is masked out by a link fault.
    DeadPort,
}

impl StallCause {
    /// Every cause, in schema order.
    pub const ALL: [StallCause; 3] = [
        StallCause::NoAdaptiveCredit,
        StallCause::NoEscapeCredit,
        StallCause::DeadPort,
    ];

    /// Schema field name.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::NoAdaptiveCredit => "no_adaptive_credit",
            StallCause::NoEscapeCredit => "no_escape_credit",
            StallCause::DeadPort => "dead_port",
        }
    }
}

/// One switch's occupancy of one virtual lane at a sample instant,
/// aggregated over the switch's input ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VlOccupancy {
    /// The switch.
    pub sw: SwitchId,
    /// The virtual lane.
    pub vl: VirtualLane,
    /// Credits occupied in the adaptive region (first half), summed
    /// over the switch's input-port buffers of this VL.
    pub adaptive: Credits,
    /// Credits occupied in the escape region (second half), summed over
    /// the same buffers.
    pub escape: Credits,
    /// Largest single-buffer occupancy among those buffers — never
    /// exceeds `C_max` under correct flow control.
    pub peak: Credits,
}

impl VlOccupancy {
    /// Total occupied credits (adaptive + escape regions).
    pub fn total(&self) -> Credits {
        self.adaptive + self.escape
    }
}

/// One occupancy snapshot: every (switch, VL) at a sample instant.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySample {
    /// Simulated time of the snapshot.
    pub at: SimTime,
    /// One entry per (switch, VL), switches ascending, VLs ascending
    /// within a switch.
    pub occupancy: Vec<VlOccupancy>,
}

impl TelemetrySample {
    /// The JSON-lines rendering of this sample: time plus one
    /// `[sw, vl, adaptive, escape, peak]` tuple per entry.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::from("sample")),
            ("at_ns", Json::from(self.at.as_ns())),
            (
                "occupancy",
                Json::arr(self.occupancy.iter().map(|o| {
                    Json::arr([
                        Json::from(o.sw.0 as u64),
                        Json::from(o.vl.0 as u64),
                        Json::from(o.adaptive.count()),
                        Json::from(o.escape.count()),
                        Json::from(o.peak.count()),
                    ])
                })),
            ),
        ])
    }

    /// Summed adaptive-region occupancy across every (switch, VL).
    pub fn total_adaptive(&self) -> u64 {
        self.occupancy
            .iter()
            .map(|o| o.adaptive.count() as u64)
            .sum()
    }

    /// Summed escape-region occupancy across every (switch, VL).
    pub fn total_escape(&self) -> u64 {
        self.occupancy.iter().map(|o| o.escape.count() as u64).sum()
    }
}

/// Cause-tagged stall counters for one (switch, output port).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortStalls {
    /// Adaptive options skipped for lack of adaptive-share credits.
    pub no_adaptive_credit: u64,
    /// Escape options skipped for lack of total credits.
    pub no_escape_credit: u64,
    /// Options skipped because the port's link is down.
    pub dead_port: u64,
}

impl PortStalls {
    /// Total stalls of every cause.
    pub fn total(&self) -> u64 {
        self.no_adaptive_credit + self.no_escape_credit + self.dead_port
    }

    #[inline]
    fn count(&mut self, cause: StallCause) {
        match cause {
            StallCause::NoAdaptiveCredit => self.no_adaptive_credit += 1,
            StallCause::NoEscapeCredit => self.no_escape_credit += 1,
            StallCause::DeadPort => self.dead_port += 1,
        }
    }

    /// Tally of one cause.
    pub fn by_cause(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::NoAdaptiveCredit => self.no_adaptive_credit,
            StallCause::NoEscapeCredit => self.no_escape_credit,
            StallCause::DeadPort => self.dead_port,
        }
    }
}

/// One switch's accumulated telemetry over a whole run.
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchTelemetry {
    /// The switch.
    pub sw: SwitchId,
    /// Crossbar grants through adaptive (minimal) options.
    pub adaptive_forwards: u64,
    /// Crossbar grants through the escape option.
    pub escape_forwards: u64,
    /// Stall counters per output port.
    pub stalls: Vec<PortStalls>,
    /// Ready-to-grant wait in simulated nanoseconds, over every grant
    /// this switch made.
    pub arb_wait_ns: Pow2Histogram,
}

impl SwitchTelemetry {
    pub(crate) fn new(sw: SwitchId, ports: usize) -> SwitchTelemetry {
        SwitchTelemetry {
            sw,
            adaptive_forwards: 0,
            escape_forwards: 0,
            stalls: vec![PortStalls::default(); ports],
            arb_wait_ns: Pow2Histogram::new(),
        }
    }

    /// Stalls of `cause` summed over this switch's ports.
    pub fn stalls_by_cause(&self, cause: StallCause) -> u64 {
        self.stalls.iter().map(|p| p.by_cause(cause)).sum()
    }

    /// Fold another accumulation of the *same* switch into this one —
    /// how the parallel engine merges shard-local telemetry. Counters
    /// sum, per-port stalls sum positionally, histograms merge.
    pub(crate) fn absorb(&mut self, other: &SwitchTelemetry) {
        debug_assert_eq!(self.sw, other.sw);
        self.adaptive_forwards += other.adaptive_forwards;
        self.escape_forwards += other.escape_forwards;
        for (mine, theirs) in self.stalls.iter_mut().zip(other.stalls.iter()) {
            mine.no_adaptive_credit += theirs.no_adaptive_credit;
            mine.no_escape_credit += theirs.no_escape_credit;
            mine.dead_port += theirs.dead_port;
        }
        self.arb_wait_ns.merge(&other.arb_wait_ns);
    }
}

/// The end-of-run telemetry report: accumulated counters and
/// histograms, plus sampling bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryReport {
    /// Schema version ([`TELEMETRY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The cadence the run sampled at, in nanoseconds.
    pub sample_every_ns: u64,
    /// Occupancy samples delivered to the sink.
    pub samples_taken: u64,
    /// Samples dropped after [`TelemetryOpts::max_samples`].
    pub samples_dropped: u64,
    /// Per-switch accumulations, switches ascending.
    pub switches: Vec<SwitchTelemetry>,
}

impl TelemetryReport {
    /// Stalls of `cause` summed over the whole fabric.
    pub fn total_stalls(&self, cause: StallCause) -> u64 {
        self.switches.iter().map(|s| s.stalls_by_cause(cause)).sum()
    }

    /// Fabric-wide arbitration-wait quantile (merged over switches).
    pub fn arb_wait_quantile(&self, q: f64) -> Option<u64> {
        let mut merged = Pow2Histogram::new();
        for s in &self.switches {
            merged.merge(&s.arb_wait_ns);
        }
        merged.quantile(q)
    }

    /// Fabric-wide adaptive and escape grant totals.
    pub fn total_forwards(&self) -> (u64, u64) {
        self.switches.iter().fold((0, 0), |(a, e), s| {
            (a + s.adaptive_forwards, e + s.escape_forwards)
        })
    }

    /// The JSON rendering of the report (one line in a JSON-lines
    /// sink; also embeddable in larger result documents).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::from("report")),
            ("schema_version", Json::from(self.schema_version)),
            ("sample_every_ns", Json::from(self.sample_every_ns)),
            ("samples_taken", Json::from(self.samples_taken)),
            ("samples_dropped", Json::from(self.samples_dropped)),
            (
                "switches",
                Json::arr(self.switches.iter().map(|s| {
                    Json::obj([
                        ("sw", Json::from(s.sw.0 as u64)),
                        ("adaptive_forwards", Json::from(s.adaptive_forwards)),
                        ("escape_forwards", Json::from(s.escape_forwards)),
                        (
                            "stalls",
                            Json::arr(s.stalls.iter().map(|p| {
                                Json::obj([
                                    ("no_adaptive_credit", Json::from(p.no_adaptive_credit)),
                                    ("no_escape_credit", Json::from(p.no_escape_credit)),
                                    ("dead_port", Json::from(p.dead_port)),
                                ])
                            })),
                        ),
                        ("arb_wait_ns", s.arb_wait_ns.to_json()),
                    ])
                })),
            ),
        ])
    }
}

/// Where telemetry flows. Implementations receive every occupancy
/// sample as it is taken and the accumulated report once at the end of
/// the run.
///
/// Sinks are `Send` so an instrumented simulation can hand its
/// shard-local sinks to the parallel engine's worker threads.
pub trait TelemetrySink: Send {
    /// An occupancy snapshot was taken.
    fn on_sample(&mut self, sample: &TelemetrySample);
    /// The run ended; `report` holds the accumulated counters.
    fn on_report(&mut self, report: &TelemetryReport);
    /// Downcast hook: `Some` when this sink is a [`MemorySink`] (how
    /// tests retrieve recorded samples without `dyn Any`).
    fn as_memory(&self) -> Option<&MemorySink> {
        None
    }
}

/// A sink that keeps everything in memory — the test and in-process
/// analysis backend.
#[derive(Debug, Default)]
pub struct MemorySink {
    samples: Vec<TelemetrySample>,
    report: Option<TelemetryReport>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Every sample received, in order.
    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// The end-of-run report, once flushed.
    pub fn report(&self) -> Option<&TelemetryReport> {
        self.report.as_ref()
    }
}

impl TelemetrySink for MemorySink {
    fn on_sample(&mut self, sample: &TelemetrySample) {
        self.samples.push(sample.clone());
    }

    fn on_report(&mut self, report: &TelemetryReport) {
        self.report = Some(report.clone());
    }

    fn as_memory(&self) -> Option<&MemorySink> {
        Some(self)
    }
}

/// A sink that streams JSON lines to a writer — the experiment backend.
///
/// The first line is a header object carrying the schema version; each
/// sample and the final report follow as one self-describing object per
/// line (`"kind": "header" | "sample" | "report"`).
pub struct JsonLinesSink<W: std::io::Write> {
    w: W,
    wrote_header: bool,
}

impl<W: std::io::Write> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> JsonLinesSink<W> {
        JsonLinesSink {
            w,
            wrote_header: false,
        }
    }

    fn write_line(&mut self, json: &Json) {
        if !self.wrote_header {
            self.wrote_header = true;
            let header = Json::obj([
                ("kind", Json::from("header")),
                ("schema_version", Json::from(TELEMETRY_SCHEMA_VERSION)),
            ]);
            writeln!(self.w, "{}", header.to_string_compact())
                .expect("telemetry sink write failed");
        }
        writeln!(self.w, "{}", json.to_string_compact()).expect("telemetry sink write failed");
    }

    /// Unwrap the writer (flushing is the writer's business).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: std::io::Write + Send> TelemetrySink for JsonLinesSink<W> {
    fn on_sample(&mut self, sample: &TelemetrySample) {
        self.write_line(&sample.to_json());
    }

    fn on_report(&mut self, report: &TelemetryReport) {
        self.write_line(&report.to_json());
    }
}

/// The live telemetry state a [`crate::Network`] carries when
/// instrumented: accumulation arrays pre-sized at construction so the
/// hot-path hooks are array indexing plus an increment, never an
/// allocation.
pub(crate) struct TelemetryState {
    opts: TelemetryOpts,
    sink: Box<dyn TelemetrySink>,
    samples_taken: u64,
    samples_dropped: u64,
    switches: Vec<SwitchTelemetry>,
    flushed: bool,
}

impl TelemetryState {
    pub(crate) fn new(
        opts: TelemetryOpts,
        sink: Box<dyn TelemetrySink>,
        num_switches: usize,
        ports: usize,
    ) -> TelemetryState {
        TelemetryState {
            opts,
            sink,
            samples_taken: 0,
            samples_dropped: 0,
            switches: (0..num_switches)
                .map(|s| SwitchTelemetry::new(SwitchId(s as u16), ports))
                .collect(),
            flushed: false,
        }
    }

    /// Sampling cadence in nanoseconds (≥ 1).
    #[inline]
    pub(crate) fn cadence_ns(&self) -> u64 {
        self.opts.sample_every_ns.max(1)
    }

    /// Whether the next sample would still be delivered (false once the
    /// cap is reached — the caller may then skip the collection sweep).
    #[inline]
    pub(crate) fn wants_sample(&self) -> bool {
        (self.samples_taken as usize) < self.opts.max_samples
    }

    #[inline]
    pub(crate) fn note_stall(&mut self, sw: SwitchId, port: PortIndex, cause: StallCause) {
        self.switches[sw.index()].stalls[port.index()].count(cause);
    }

    #[inline]
    pub(crate) fn note_forward(&mut self, sw: SwitchId, via_escape: bool, wait_ns: u64) {
        let s = &mut self.switches[sw.index()];
        if via_escape {
            s.escape_forwards += 1;
        } else {
            s.adaptive_forwards += 1;
        }
        s.arb_wait_ns.record(wait_ns);
    }

    /// Take one occupancy snapshot at `at` over the switches `filter`
    /// admits (the serial engine admits all) — a parallel-engine shard
    /// snapshots only the switches it owns, and the coordinator splices
    /// the shard samples back together in switch order. `buffers` maps
    /// `(switch, port, vl)` to that input port's VL buffer.
    pub(crate) fn record_sample_filtered<'b>(
        &mut self,
        at: SimTime,
        num_vls: usize,
        mut buffers: impl FnMut(usize, usize, usize) -> &'b VlBuffer,
        num_switches: usize,
        ports: usize,
        filter: impl Fn(usize) -> bool,
    ) {
        if !self.wants_sample() {
            self.samples_dropped += 1;
            return;
        }
        let mut occupancy = Vec::with_capacity(num_switches * num_vls);
        for sw in 0..num_switches {
            if !filter(sw) {
                continue;
            }
            for vl in 0..num_vls {
                let mut adaptive = Credits::ZERO;
                let mut escape = Credits::ZERO;
                let mut peak = Credits::ZERO;
                for port in 0..ports {
                    let buf = buffers(sw, port, vl);
                    let (a, e) = buf.region_occupancy();
                    adaptive += a;
                    escape += e;
                    peak = peak.max(buf.occupied());
                }
                occupancy.push(VlOccupancy {
                    sw: SwitchId(sw as u16),
                    vl: VirtualLane(vl as u8),
                    adaptive,
                    escape,
                    peak,
                });
            }
        }
        let sample = TelemetrySample { at, occupancy };
        self.samples_taken += 1;
        self.sink.on_sample(&sample);
    }

    /// Build the report and hand it to the sink. Idempotent — only the
    /// first call flushes.
    pub(crate) fn flush(&mut self) {
        if self.flushed {
            return;
        }
        self.flushed = true;
        let report = TelemetryReport {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            sample_every_ns: self.cadence_ns(),
            samples_taken: self.samples_taken,
            samples_dropped: self.samples_dropped,
            switches: self.switches.clone(),
        };
        self.sink.on_report(&report);
    }

    pub(crate) fn sink(&self) -> &dyn TelemetrySink {
        self.sink.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occupancy(sw: u16, adaptive: u32, escape: u32) -> VlOccupancy {
        VlOccupancy {
            sw: SwitchId(sw),
            vl: VirtualLane(0),
            adaptive: Credits(adaptive),
            escape: Credits(escape),
            peak: Credits(adaptive + escape),
        }
    }

    #[test]
    fn sample_json_is_one_self_describing_object() {
        let s = TelemetrySample {
            at: SimTime::from_ns(500),
            occupancy: vec![occupancy(0, 3, 1)],
        };
        assert_eq!(
            s.to_json().to_string_compact(),
            r#"{"kind":"sample","at_ns":500,"occupancy":[[0,0,3,1,4]]}"#
        );
        assert_eq!(s.total_adaptive(), 3);
        assert_eq!(s.total_escape(), 1);
    }

    #[test]
    fn jsonl_sink_emits_header_then_lines() {
        let mut sink = JsonLinesSink::new(Vec::new());
        let s = TelemetrySample {
            at: SimTime::from_ns(1),
            occupancy: vec![],
        };
        sink.on_sample(&s);
        sink.on_sample(&s);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""kind":"header""#));
        assert!(lines[0].contains(r#""schema_version":1"#));
        assert!(lines[1].contains(r#""kind":"sample""#));
    }

    #[test]
    fn memory_sink_retrieves_through_trait_object() {
        let mut sink: Box<dyn TelemetrySink> = Box::new(MemorySink::new());
        sink.on_sample(&TelemetrySample {
            at: SimTime::ZERO,
            occupancy: vec![],
        });
        let mem = sink.as_memory().expect("memory sink");
        assert_eq!(mem.samples().len(), 1);
        assert!(mem.report().is_none());
    }

    #[test]
    fn report_aggregates_over_switches() {
        let mut a = SwitchTelemetry::new(SwitchId(0), 2);
        a.adaptive_forwards = 10;
        a.escape_forwards = 2;
        a.stalls[0].no_adaptive_credit = 5;
        a.stalls[1].dead_port = 1;
        a.arb_wait_ns.record(100);
        let mut b = SwitchTelemetry::new(SwitchId(1), 2);
        b.escape_forwards = 3;
        b.stalls[0].no_escape_credit = 7;
        b.arb_wait_ns.record(1000);
        let report = TelemetryReport {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            sample_every_ns: 1000,
            samples_taken: 4,
            samples_dropped: 0,
            switches: vec![a, b],
        };
        assert_eq!(report.total_stalls(StallCause::NoAdaptiveCredit), 5);
        assert_eq!(report.total_stalls(StallCause::NoEscapeCredit), 7);
        assert_eq!(report.total_stalls(StallCause::DeadPort), 1);
        assert_eq!(report.total_forwards(), (10, 5));
        assert_eq!(report.arb_wait_quantile(1.0), Some(1024));
        let json = report.to_json().to_string_compact();
        assert!(json.contains(r#""schema_version":1"#));
        assert!(json.contains(r#""no_escape_credit":7"#));
    }

    #[test]
    fn state_drops_samples_past_the_cap() {
        let buf = VlBuffer::new(Credits(8));
        let opts = TelemetryOpts {
            sample_every_ns: 10,
            max_samples: 2,
        };
        let mut st = TelemetryState::new(opts, Box::new(MemorySink::new()), 1, 1);
        for i in 0..4u64 {
            st.record_sample_filtered(SimTime::from_ns(i * 10), 1, |_, _, _| &buf, 1, 1, |_| true);
        }
        st.flush();
        st.flush(); // idempotent
        let mem = st.sink().as_memory().unwrap();
        assert_eq!(mem.samples().len(), 2);
        let report = mem.report().unwrap();
        assert_eq!(report.samples_taken, 2);
        assert_eq!(report.samples_dropped, 2);
    }

    #[test]
    fn stall_cause_names_cover_all() {
        for c in StallCause::ALL {
            assert!(!c.name().is_empty());
        }
    }
}
