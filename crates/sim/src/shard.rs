//! One shard of the fabric simulation: the event core of the network
//! model, shared by the serial and the conservative-parallel engines.
//!
//! A [`Shard`] owns a private event queue over the run-time selected
//! [`DesQueue`] backend plus the *full-size* fabric state vectors
//! (switches, hosts, fault masks). In serial mode there is exactly one
//! shard that owns every entity and schedules with plain FIFO keys —
//! byte-identical to the pre-shard engine. In parallel mode each shard
//! executes only the events of the switches and hosts its
//! [`Partition`] region owns, exchanges cross-shard link messages
//! through per-shard mailboxes, and tags every schedule with a
//! canonical `(class, entity, counter)` key so the pop order within a
//! timestamp is partition- and thread-count-independent.
//!
//! Mode divergences are deliberate and few, each gated on
//! `self.part.is_some()`:
//!
//! * **Event keys** — serial schedules keep key 0 (pure FIFO); parallel
//!   schedules pack [`event_key`] from the *acting* entity's counter.
//! * **RNG discipline** — serial keeps the single shared arbitration
//!   and corruption streams; parallel derives one stream per switch
//!   (`derive_indexed`), so draw order is partition-independent.
//! * **Packet ids** — serial numbers packets globally in generation
//!   order; parallel packs `(source host, per-host sequence)` so ids
//!   never depend on the interleaving of other hosts' generators.
//! * **Fault masks** — every shard executes every fault event and
//!   applies the port masks globally (reads are hot-path); behavioral
//!   side effects (stats, credit resync, arbitration kicks) run only in
//!   the owning shard.
//! * **Credit resync** — serial re-synchronizes sender counters from
//!   receiver free space instantly at link-up; parallel runs a
//!   two-phase snapshot protocol ([`Event::CreditResync`]) that crosses
//!   the shard boundary with the link propagation delay and discards
//!   stale in-flight returns, conserving credits exactly.

use crate::buffer::{ReadPoint, SlotHandle, VlBuffer};
use crate::config::{RecoveryPolicy, SelectionPolicy, SimConfig};
use crate::fib::FibCache;
use crate::recorder::{classify_stall, FlightRecorder, TriggerCause};
use crate::stats::StatsCollector;
use crate::telemetry::{StallCause, TelemetryState};
use crate::trace::{TraceStep, Tracer};
use iba_core::{
    Credits, DropCause, FlightEvent, HostId, IbaError, InlineVec, NodeRef, OptionOutcome,
    OptionOutcomes, OptionVerdict, Packet, PacketId, PortIndex, SimTime, StallClass, SwitchId,
    VirtualLane, MAX_PORTS,
};
use iba_engine::rng::{StreamKind, StreamRng};
use iba_engine::{event_key, DesQueue};
use iba_routing::{check_escape_routes, EscapeEngine, FaRouting, SlToVlTable};
use iba_topology::{Partition, Topology, TopologyBuilder};
use iba_workloads::{
    FaultKind, FaultSchedule, HostGenerator, PathSet, TrafficScript, WorkloadSpec,
};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Event-class ranks for the canonical ordering key: ties at one
/// timestamp execute in class order, chosen so state mutations land
/// before the events that observe them (fault masks before packet
/// events, credit snapshots before credit returns, credit returns
/// before injection retries).
pub(crate) const CLASS_FAULT: u8 = 0;
pub(crate) const CLASS_TELEMETRY: u8 = 1;
pub(crate) const CLASS_CREDIT_RESYNC: u8 = 2;
pub(crate) const CLASS_CREDIT_RETURN: u8 = 3;
pub(crate) const CLASS_GENERATE: u8 = 4;
pub(crate) const CLASS_TRY_INJECT: u8 = 5;
pub(crate) const CLASS_HEADER_ARRIVE: u8 = 6;
pub(crate) const CLASS_ROUTE_DONE: u8 = 7;
pub(crate) const CLASS_ARBITRATE: u8 = 8;
pub(crate) const CLASS_TX_DONE: u8 = 9;
pub(crate) const CLASS_DELIVER: u8 = 10;

/// Discrete events of the network model.
#[derive(Debug)]
pub(crate) enum Event {
    /// A host's traffic generator fires.
    Generate { host: HostId },
    /// The next scripted injection (trace-driven mode) fires.
    GenerateScripted { idx: usize },
    /// A host retries sending the head of its source queue.
    TryInject { host: HostId },
    /// A packet's header reaches a switch input port.
    HeaderArrive {
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        packet: Packet,
    },
    /// The forwarding-table pipeline for a buffered packet completes.
    /// The handle addresses the exact residency `push` created, so no
    /// buffer scan is needed when the event fires.
    RouteDone {
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    },
    /// Coalesced arbitration pass at a switch.
    Arbitrate { sw: SwitchId },
    /// A forwarded packet's tail has left its input buffer.
    TxDone {
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    },
    /// Freed credits reach the upstream sender.
    CreditReturn {
        target: NodeRef,
        port: PortIndex,
        vl: VirtualLane,
        credits: Credits,
    },
    /// Link-retraining credit snapshot from the receiver side of a
    /// revived link (parallel engine only; the serial engine
    /// re-synchronizes sender counters instantly at link-up). `free` is
    /// the receiver's per-VL free space at snapshot time; it reaches
    /// the sender-side switch `sw`/`port` with the link propagation
    /// delay, and in-flight credit returns that raced it are discarded.
    CreditResync {
        sw: SwitchId,
        port: PortIndex,
        /// Boxed so this rare variant (one per link revival) does not
        /// inflate the size of every queue entry in the hot path.
        free: Box<InlineVec<Credits, 16>>,
    },
    /// A packet's tail reaches its destination host.
    Deliver { host: HostId, packet: Packet },
    /// A scheduled link fault (down or up) takes effect.
    Fault { idx: usize },
    /// The subnet manager's re-sweep completes and recovery routing is
    /// installed (`RecoveryPolicy::SmResweep` only).
    ResweepDone,
    /// The telemetry probe samples buffer occupancy (instrumented runs
    /// only; reschedules itself at the configured cadence).
    TelemetrySample,
    /// The flight recorder's stall watchdog inspects every VL buffer for
    /// forward progress (recorded runs with a watchdog only; reschedules
    /// itself at the configured cadence).
    WatchdogCheck,
}

/// A cross-shard event en route to another shard's queue, carrying the
/// ordering key assigned by the sending shard.
pub(crate) struct OutMsg {
    pub(crate) dst: usize,
    pub(crate) at: SimTime,
    pub(crate) key: u64,
    pub(crate) ev: Event,
}

/// One shard's inbox in the threaded window protocol: senders push
/// keyed events under the lock during the flush step, the owner drains
/// it after the barrier.
pub(crate) type Mailbox = Mutex<Vec<(SimTime, u64, Event)>>;

/// A schedule entry with its endpoints resolved to concrete ports, done
/// once at construction so fault application is O(1) and allocation-free
/// inside the event loop. For switch faults only `a` is meaningful; the
/// affected ports are enumerated from the topology at apply time.
#[derive(Clone, Copy, Debug)]
struct ResolvedFault {
    at: SimTime,
    kind: FaultKind,
    a: SwitchId,
    pa: PortIndex,
    b: SwitchId,
    pb: PortIndex,
}

/// One physical input port of a switch.
struct InputPort {
    /// Per-VL split buffers.
    vls: Vec<VlBuffer>,
    /// The buffer RAM's read path (the Figure 2 multiplexer) is busy
    /// streaming a packet out until this time.
    read_busy_until: SimTime,
    /// Round-robin cursor over VLs (a minimal stand-in for IBA's VL
    /// arbitration so no data VL starves behind VL0).
    vl_cursor: usize,
}

/// One physical output port of a switch.
struct OutputPort {
    /// The serial link transmits one packet at a time.
    busy_until: SimTime,
    /// Sender-side credit counters per VL of the downstream input buffer;
    /// `None` for host-facing ports (hosts are infinite sinks).
    credits: Option<Vec<Credits>>,
    /// Cumulative transmission time (utilization probe).
    busy_ns_total: u64,
}

struct SwitchState {
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    sl2vl: SlToVlTable,
    arb_pending: bool,
    rr_cursor: usize,
    /// Per-port link state; `false` masks the port out of every feasible
    /// option set at arbitration. Derived cache of `down_depth == 0` so
    /// the hot path stays a single bool load. A host-facing port goes
    /// down only when its own switch dies.
    link_up: Vec<bool>,
    /// How many active faults currently mask each port: a link fault
    /// contributes 1 to both endpoints, a switch fault contributes 1 to
    /// every wired port of the dead switch *and* the peer-side port of
    /// each of its inter-switch links — so two overlapping switch deaths
    /// on adjacent switches stack on the shared link and the port only
    /// revives when both have recovered.
    down_depth: Vec<u8>,
    /// The portion of `down_depth` owed to switch deaths; used to
    /// attribute wire drops at a masked port to [`DropCause::SwitchDown`]
    /// rather than [`DropCause::LinkDown`]. Schedule validation forbids
    /// link and switch windows overlapping on a shared endpoint, so a
    /// nonzero value is unambiguous.
    switch_down_depth: Vec<u8>,
}

struct HostState {
    /// Synthetic generator; `None` in trace-driven mode.
    gen: Option<HostGenerator>,
    /// Open-loop source queue.
    queue: VecDeque<Packet>,
    tx_busy_until: SimTime,
    /// Credits towards the attached switch's input buffer, per VL.
    credits: Vec<Credits>,
    attached_switch: SwitchId,
    /// Per-source sequence counter (order checking).
    next_seq: u64,
    /// Rotating DLID-offset cursor for source-selected multipath.
    mp_cursor: u16,
}

/// A forwarding decision produced by arbitration. Positions and handle
/// are taken while the buffer is inspected and stay valid until the
/// decision is committed (arbitration grants synchronously, and a grant
/// marks the packet in flight rather than removing it).
struct Decision {
    input: usize,
    vl: usize,
    /// FIFO position of the granted packet in its VL buffer.
    idx: usize,
    /// Stable residency handle, carried into the `TxDone` event.
    handle: SlotHandle,
    packet_id: PacketId,
    out_port: PortIndex,
    out_vl: VirtualLane,
    via_escape: bool,
    read_point: ReadPoint,
}

/// One shard of the simulation (the whole simulation in serial mode).
pub(crate) struct Shard<'a, E: EscapeEngine> {
    /// This shard's index in the partition (0 in serial mode).
    pub(crate) id: usize,
    topo: &'a Topology,
    routing: &'a FaRouting<E>,
    pub(crate) spec: WorkloadSpec,
    config: SimConfig,
    /// `None` in serial mode; the shared fabric partition otherwise.
    part: Option<Arc<Partition>>,
    pub(crate) queue: DesQueue<Event>,
    switches: Vec<SwitchState>,
    hosts: Vec<HostState>,
    pub(crate) stats: StatsCollector,
    next_packet_id: u64,
    arb_rng: StreamRng,
    /// Parallel mode: one arbitration stream per switch, so draw order
    /// is partition-independent. Empty in serial mode.
    switch_arb_rngs: Vec<StreamRng>,
    /// No packets are generated at or after this time.
    pub(crate) gen_deadline: SimTime,
    /// Whether the initial generation events have been scheduled.
    primed: bool,
    pub(crate) tracer: Option<Tracer>,
    /// Trace-driven injections (replaces the synthetic generators).
    script: Option<&'a TrafficScript>,
    /// Resolved link-fault schedule (empty without armed faults).
    faults: Vec<ResolvedFault>,
    /// What repairs reachability after a fault.
    recovery: RecoveryPolicy,
    /// Modelled duration of one SM re-sweep (fault event → recovery
    /// tables live), in nanoseconds.
    resweep_latency_ns: u64,
    /// Number of faults (links *or* switches) currently down. Every
    /// shard executes every fault event, so the count is globally
    /// consistent across shards.
    pub(crate) active_faults: usize,
    /// Which switches are currently dead (switch-fault windows).
    dead_switches: Vec<bool>,
    /// Per-link bit-error probability folded to a per-packet CRC-failure
    /// probability at the receiving input port; 0.0 (the default) keeps
    /// the hot-path hook a single float compare.
    pub(crate) corrupt_prob: f64,
    /// Dedicated substream for corruption draws, so armed corruption
    /// never perturbs arbitration tie-breaks or generator schedules.
    corrupt_rng: StreamRng,
    /// Parallel mode: one corruption stream per switch. Empty in serial.
    switch_corrupt_rngs: Vec<StreamRng>,
    /// Whether the APM alternate escape tables have been certified
    /// acyclic (lazily at the first migration in serial mode; eagerly at
    /// prime in parallel mode).
    apm_certified: bool,
    /// Recovery tables installed by the last completed re-sweep; `None`
    /// while the primary tables are live.
    pub(crate) recovery_routing: Option<FaRouting<E>>,
    /// Telemetry probe state; `None` (the default) keeps every hook a
    /// single pointer-null check and schedules no sampling events.
    pub(crate) telemetry: Option<Box<TelemetryState>>,
    /// Flight-recorder state; `None` (the default, and always in
    /// parallel mode) keeps every hook a single pointer-null check.
    pub(crate) recorder: Option<Box<FlightRecorder>>,
    /// Hot-entry FIB cache over the forwarding path; `None` (the
    /// default) keeps the routing hook a single pointer-null check.
    /// Purely observational — cached entries are `Arc`-shared decodes
    /// of the live tables, so results never depend on it.
    pub(crate) fib: Option<Box<FibCache>>,
    /// Candidate-option verdicts of the most recent arbitration grant.
    /// Scratch reused across grants so `Decision` stays small — the
    /// ~100-byte option set is only written (and read back by
    /// `start_forward`) while the recorder is capturing; with it off or
    /// frozen the field is never touched on the hot path.
    decision_options: OptionOutcomes,
    /// Per-entity schedule counters backing the canonical event keys
    /// (switches, then hosts, then the coordinator pseudo-entity).
    /// Only the owning shard advances an entity's counter, except the
    /// coordinator's, which every shard advances in lockstep.
    key_counters: Vec<u64>,
    /// Parallel mode: `(switch, port)` flags set while a credit-resync
    /// snapshot is on the wire; credit returns arriving at a pending
    /// port are stale (their space is already counted in the snapshot)
    /// and discarded. Empty in serial mode.
    resync_pending: Vec<bool>,
    /// Cross-shard events produced by the current window, drained into
    /// the per-shard mailboxes at the window boundary.
    outbox: Vec<OutMsg>,
    /// Events this shard popped that every shard replicates (fault and
    /// telemetry ticks); subtracted from the aggregate event count on
    /// all shards but shard 0 so totals are shard-count-invariant.
    replicated: u64,
}

impl<'a, E: EscapeEngine> Shard<'a, E> {
    /// Assemble one shard. `part == None` builds the serial engine
    /// (shard 0 owns everything, plain FIFO keys); otherwise the shard
    /// owns the switches and hosts `part` assigns to `id`, while state
    /// vectors stay full-size (fault masks are applied globally).
    pub(crate) fn new(
        topo: &'a Topology,
        routing: &'a FaRouting<E>,
        spec: WorkloadSpec,
        config: SimConfig,
        id: usize,
        part: Option<Arc<Partition>>,
    ) -> Result<Shard<'a, E>, IbaError> {
        spec.validate()?;
        config.validate(spec.packet_bytes)?;
        if routing.lid_map().num_hosts() as usize != topo.num_hosts() {
            return Err(IbaError::InvalidConfig(
                "routing tables built for a different topology".into(),
            ));
        }
        if spec.adaptive_fraction > 0.0 && routing.config().table_options < 2 {
            return Err(IbaError::InvalidConfig(
                "adaptive traffic requires at least 2 routing options (LMC >= 1)".into(),
            ));
        }

        let root = StreamRng::from_seed(config.seed);
        let vls = config.data_vls as usize;
        let cap = config.vl_buffer_credits;
        let parallel = part.is_some();

        let switches = topo
            .switch_ids()
            .map(|s| {
                let ports = topo.ports_per_switch() as usize;
                let inputs = (0..ports)
                    .map(|_| InputPort {
                        vls: (0..vls).map(|_| VlBuffer::new(cap)).collect(),
                        read_busy_until: SimTime::ZERO,
                        vl_cursor: 0,
                    })
                    .collect();
                let outputs = (0..ports)
                    .map(|p| {
                        let to_switch = topo
                            .endpoint(s, PortIndex(p as u8))
                            .is_some_and(|ep| ep.node.is_switch());
                        OutputPort {
                            busy_until: SimTime::ZERO,
                            credits: to_switch.then(|| vec![cap; vls]),
                            busy_ns_total: 0,
                        }
                    })
                    .collect();
                Ok(SwitchState {
                    inputs,
                    outputs,
                    sl2vl: SlToVlTable::identity(topo.ports_per_switch(), config.data_vls)?,
                    arb_pending: false,
                    rr_cursor: 0,
                    link_up: vec![true; ports],
                    down_depth: vec![0; ports],
                    switch_down_depth: vec![0; ports],
                })
            })
            .collect::<Result<Vec<_>, IbaError>>()?;

        // Hosts are numbered consecutively per switch by the topology
        // builders; permutation patterns act on the switch index. Every
        // shard builds every host's generator (each host draws from its
        // own derived substream, so a generator's schedule is
        // independent of which shard advances it); only owned hosts'
        // generators ever advance.
        let hosts_per_switch = if topo.num_hosts().is_multiple_of(topo.num_switches()) {
            topo.num_hosts() / topo.num_switches()
        } else {
            1
        };
        let hosts = topo
            .host_ids()
            .map(|h| {
                Ok(HostState {
                    gen: Some(HostGenerator::with_groups(
                        h,
                        topo.num_hosts(),
                        hosts_per_switch,
                        spec,
                        &root,
                    )?),
                    queue: VecDeque::new(),
                    tx_busy_until: SimTime::ZERO,
                    credits: vec![cap; vls],
                    attached_switch: topo.host_switch(h),
                    next_seq: 0,
                    mp_cursor: h.0 % routing.config().table_options,
                })
            })
            .collect::<Result<Vec<_>, IbaError>>()?;

        // Pre-size the event queue from the topology: pending events are
        // bounded by buffered packets (each VL buffer holds at most its
        // credit count, each buffered packet has at most one pending
        // RouteDone/TxDone/CreditReturn) plus a few per host — so the
        // steady state never reallocates the queue.
        let ports = topo.ports_per_switch() as usize;
        let est_events = (topo.num_switches() * ports * vls * cap.count() as usize / 4
            + topo.num_hosts() * 4)
            .max(1024);

        let nsw = topo.num_switches();
        let nh = topo.num_hosts();
        let horizon = config.horizon();
        Ok(Shard {
            id,
            topo,
            routing,
            spec,
            config,
            part,
            queue: DesQueue::with_capacity(config.queue_backend, est_events),
            switches,
            hosts,
            stats: StatsCollector::new(
                config.warmup,
                horizon,
                topo.num_hosts(),
                routing.lid_map().table_len(),
            ),
            next_packet_id: 0,
            arb_rng: root.derive(StreamKind::Arbiter),
            switch_arb_rngs: if parallel {
                (0..nsw)
                    .map(|s| root.derive_indexed(StreamKind::Arbiter, s as u64))
                    .collect()
            } else {
                Vec::new()
            },
            gen_deadline: horizon,
            primed: false,
            tracer: None,
            script: None,
            faults: Vec::new(),
            recovery: RecoveryPolicy::None,
            resweep_latency_ns: 0,
            active_faults: 0,
            dead_switches: vec![false; nsw],
            corrupt_prob: 0.0,
            corrupt_rng: root.derive(StreamKind::Custom(0xC0DE)),
            switch_corrupt_rngs: if parallel {
                (0..nsw)
                    .map(|s| root.derive_indexed(StreamKind::Custom(0xC0DE), s as u64))
                    .collect()
            } else {
                Vec::new()
            },
            apm_certified: false,
            recovery_routing: None,
            telemetry: None,
            recorder: None,
            fib: None,
            decision_options: OptionOutcomes::new(),
            key_counters: vec![0; nsw + nh + 1],
            resync_pending: if parallel {
                vec![false; nsw * ports]
            } else {
                Vec::new()
            },
            outbox: Vec::new(),
            replicated: 0,
        })
    }

    /// Switch trace-driven mode on: clear the synthetic generators and
    /// install the script (validated by the caller).
    pub(crate) fn set_script(&mut self, script: &'a TrafficScript) {
        for h in &mut self.hosts {
            h.gen = None;
        }
        self.script = Some(script);
    }

    /// Arm a link-fault schedule and the recovery policy answering it.
    ///
    /// Fails when a schedule entry names a link the topology does not
    /// have, or when `ApmMigrate` is requested without APM tables.
    pub(crate) fn arm_faults(
        &mut self,
        schedule: &FaultSchedule,
        policy: RecoveryPolicy,
        resweep_latency_ns: u64,
    ) -> Result<(), IbaError> {
        if self.primed {
            return Err(IbaError::InvalidConfig(
                "fault schedule must be armed before the simulation starts".into(),
            ));
        }
        if policy == RecoveryPolicy::ApmMigrate && !self.routing.has_apm() {
            return Err(IbaError::InvalidConfig(
                "ApmMigrate recovery requires APM tables (FaRouting::build_with_apm)".into(),
            ));
        }
        self.faults.clear();
        for (i, e) in schedule.events().iter().enumerate() {
            let n = self.topo.num_switches();
            if e.a.index() >= n || e.b.index() >= n {
                return Err(IbaError::InvalidConfig(format!(
                    "fault entry {i}: switch out of range (topology has {n} switches)"
                )));
            }
            let (pa, pb) = match e.kind {
                // A switch fault names no link; the affected ports are
                // enumerated from the topology when the fault fires.
                FaultKind::SwitchDown | FaultKind::SwitchUp => (PortIndex(0), PortIndex(0)),
                FaultKind::LinkDown | FaultKind::LinkUp => {
                    let (Some(pa), Some(pb)) = (
                        self.topo.port_towards(e.a, e.b),
                        self.topo.port_towards(e.b, e.a),
                    ) else {
                        return Err(IbaError::InvalidConfig(format!(
                            "fault entry {i}: no link {}–{} in the topology",
                            e.a, e.b
                        )));
                    };
                    (pa, pb)
                }
            };
            self.faults.push(ResolvedFault {
                at: e.at,
                kind: e.kind,
                a: e.a,
                pa,
                b: e.b,
                pb,
            });
        }
        self.recovery = policy;
        self.resweep_latency_ns = resweep_latency_ns;
        Ok(())
    }

    /// Entity id of a switch in the key space.
    #[inline]
    fn ent_switch(&self, s: SwitchId) -> u64 {
        s.index() as u64
    }

    /// Entity id of a host in the key space (after all switches).
    #[inline]
    fn ent_host(&self, h: HostId) -> u64 {
        (self.topo.num_switches() + h.index()) as u64
    }

    /// The coordinator pseudo-entity: schedules every shard replicates
    /// identically (fault priming, the telemetry tick chain). Never use
    /// it for an ownership-gated schedule — per-shard counters would
    /// diverge.
    #[inline]
    fn ent_coord(&self) -> u64 {
        (self.topo.num_switches() + self.topo.num_hosts()) as u64
    }

    /// Whether this shard executes switch `s`'s events (always, serially).
    #[inline]
    fn owns_switch(&self, s: SwitchId) -> bool {
        self.part
            .as_deref()
            .is_none_or(|p| p.shard_of_switch(s) == self.id)
    }

    /// Whether this shard executes host `h`'s events (always, serially).
    #[inline]
    fn owns_host(&self, h: HostId) -> bool {
        self.part
            .as_deref()
            .is_none_or(|p| p.shard_of_host(h) == self.id)
    }

    /// The shard that must execute `ev`. Parallel mode only.
    fn dst_shard(&self, ev: &Event) -> usize {
        let p = self.part.as_deref().expect("parallel mode");
        match ev {
            Event::Generate { host } | Event::TryInject { host } | Event::Deliver { host, .. } => {
                p.shard_of_host(*host)
            }
            Event::HeaderArrive { sw, .. }
            | Event::RouteDone { sw, .. }
            | Event::Arbitrate { sw }
            | Event::TxDone { sw, .. }
            | Event::CreditResync { sw, .. } => p.shard_of_switch(*sw),
            Event::CreditReturn { target, .. } => match target {
                NodeRef::Switch(s) => p.shard_of_switch(*s),
                NodeRef::Host(h) => p.shard_of_host(*h),
            },
            // Replicated or serial-only events stay local.
            Event::Fault { .. }
            | Event::ResweepDone
            | Event::TelemetrySample
            | Event::WatchdogCheck
            | Event::GenerateScripted { .. } => self.id,
        }
    }

    /// The one schedule point. Serial mode: plain FIFO scheduling,
    /// byte-identical to the pre-shard engine. Parallel mode: stamp the
    /// canonical `(class, entity, counter)` key and route the event to
    /// its owning shard — locally into the queue, or into the outbox
    /// when it crosses the partition (which the conservative lookahead
    /// guarantees is at least one propagation delay in the future).
    fn sched(&mut self, at: SimTime, class: u8, entity: u64, ev: Event) {
        if self.part.is_none() {
            self.queue.schedule(at, ev);
            return;
        }
        let c = self.key_counters[entity as usize];
        self.key_counters[entity as usize] = c + 1;
        let key = event_key(class, entity, c);
        let dst = self.dst_shard(&ev);
        if dst == self.id {
            self.queue.schedule_keyed(at, key, ev);
        } else {
            debug_assert!(
                at.as_ns() >= self.queue.now().as_ns() + self.config.phys.propagation_ns,
                "cross-shard event inside the conservative lookahead window"
            );
            self.outbox.push(OutMsg { dst, at, key, ev });
        }
    }

    /// The routing tables currently programmed into the fabric: the
    /// recovery tables once an SM re-sweep has installed them, the
    /// primary tables otherwise.
    #[inline]
    fn cur_routing(&self) -> &FaRouting<E> {
        self.recovery_routing.as_ref().unwrap_or(self.routing)
    }

    #[inline]
    fn trace(&mut self, id: PacketId, at: SimTime, step: TraceStep) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(id, at, step);
        }
    }

    /// Seed the event queue: every owned host's first synthetic
    /// generation, or the script's first entry in trace-driven mode.
    /// Fault and telemetry events are replicated into every shard.
    /// Idempotent.
    pub(crate) fn prime(&mut self) {
        if self.primed {
            return;
        }
        self.primed = true;
        // Parallel APM migration certifies the alternate escape set up
        // front: the serial engine does it lazily at the first
        // migration, but that point is owner-local, and the verdict must
        // land in exactly one shard's stats. Every shard flips the flag
        // (so the lazy branch never fires); shard 0 records the verdict.
        if self.part.is_some()
            && self.recovery == RecoveryPolicy::ApmMigrate
            && !self.faults.is_empty()
            && !self.apm_certified
        {
            self.apm_certified = true;
            if self.id == 0 {
                self.certify_escape(true);
            }
        }
        // Faults are plain events in the queue, so their application is
        // serialized with packet events at deterministic points — a
        // fault-driven run stays bit-identical across queue backends. In
        // parallel mode every shard schedules (and executes) every fault
        // so the port masks stay globally consistent.
        for idx in 0..self.faults.len() {
            let (at, ent) = (self.faults[idx].at, self.ent_coord());
            self.sched(at, CLASS_FAULT, ent, Event::Fault { idx });
        }
        // The telemetry probe rides the event queue like everything else,
        // so sampling points are serialized deterministically across
        // backends. Disabled runs schedule nothing.
        if let Some(t) = self.telemetry.as_deref() {
            let at = SimTime::from_ns(t.cadence_ns());
            if at <= self.config.horizon() {
                let ent = self.ent_coord();
                self.sched(at, CLASS_TELEMETRY, ent, Event::TelemetrySample);
            }
        }
        // Likewise the stall watchdog: its checks are ordinary events at
        // deterministic times, so recorded runs stay bit-identical across
        // queue backends. (Serial-only: the builder rejects the recorder
        // in parallel mode.)
        if let Some(wd) = self.recorder.as_deref().and_then(|r| r.opts().watchdog) {
            let at = SimTime::from_ns(wd.check_every_ns);
            if at <= self.config.horizon() {
                self.queue.schedule(at, Event::WatchdogCheck);
            }
        }
        if let Some(script) = self.script {
            // Serial-only: the builder rejects scripts in parallel mode.
            if let Some(first) = script.packets().first() {
                if first.at < self.gen_deadline {
                    self.queue
                        .schedule(first.at, Event::GenerateScripted { idx: 0 });
                }
            }
            return;
        }
        for h in 0..self.hosts.len() {
            let host = HostId(h as u16);
            if !self.owns_host(host) {
                continue;
            }
            let dt = self.hosts[h]
                .gen
                .as_mut()
                .expect("synthetic mode")
                .next_interarrival_ns();
            let at = SimTime::from_ns(dt);
            if at < self.gen_deadline {
                let ent = self.ent_host(host);
                self.sched(at, CLASS_GENERATE, ent, Event::Generate { host });
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Generate { host } => self.on_generate(now, host),
            Event::GenerateScripted { idx } => self.on_generate_scripted(now, idx),
            Event::TryInject { host } => self.try_inject(now, host),
            Event::HeaderArrive {
                sw,
                port,
                vl,
                packet,
            } => self.on_header_arrive(now, sw, port, vl, packet),
            Event::RouteDone {
                sw,
                port,
                vl,
                handle,
            } => self.on_route_done(now, sw, port, vl, handle),
            Event::Arbitrate { sw } => {
                self.switches[sw.index()].arb_pending = false;
                self.arbitrate(now, sw);
            }
            Event::TxDone {
                sw,
                port,
                vl,
                handle,
            } => self.on_tx_done(now, sw, port, vl, handle),
            Event::CreditReturn {
                target,
                port,
                vl,
                credits,
            } => self.on_credit_return(now, target, port, vl, credits),
            Event::CreditResync { sw, port, free } => self.on_credit_resync(now, sw, port, &free),
            Event::Deliver { host, packet } => {
                self.trace(packet.id, now, TraceStep::Delivered { host });
                if let Some(r) = self.recorder.as_deref_mut() {
                    let latency_ns = now.since(packet.generated_at);
                    r.record(
                        None,
                        now,
                        FlightEvent::Delivered {
                            packet: packet.id,
                            host,
                            latency_ns,
                        },
                    );
                    if r.wants_latency_trigger(latency_ns) {
                        r.trigger(now, TriggerCause::LatencyThreshold, None, Some(packet.id));
                    }
                }
                self.stats.on_delivered(&packet, now);
            }
            Event::Fault { idx } => {
                if self.part.is_some() {
                    self.replicated += 1;
                }
                self.on_fault(now, idx)
            }
            Event::ResweepDone => self.on_resweep_done(now),
            Event::TelemetrySample => {
                if self.part.is_some() {
                    self.replicated += 1;
                }
                self.on_telemetry_sample(now)
            }
            Event::WatchdogCheck => self.on_watchdog_check(now),
        }
    }

    /// Pop and dispatch one event at or before `limit`. Returns whether
    /// an event was executed — the serial engine's stepping primitive.
    pub(crate) fn step_until(&mut self, limit: SimTime) -> bool {
        let Some((now, ev)) = self.queue.pop_until(limit) else {
            return false;
        };
        self.dispatch(now, ev);
        true
    }

    /// Drain every event at or before `limit` — one conservative
    /// execution window of the parallel engine.
    pub(crate) fn run_window(&mut self, limit: SimTime) {
        while let Some((now, ev)) = self.queue.pop_until(limit) {
            self.dispatch(now, ev);
        }
    }

    /// Move this window's cross-shard events into the per-shard
    /// mailboxes (threaded execution).
    pub(crate) fn flush_outbox(&mut self, mailboxes: &[Mailbox]) {
        for m in self.outbox.drain(..) {
            mailboxes[m.dst]
                .lock()
                .expect("mailbox poisoned")
                .push((m.at, m.key, m.ev));
        }
    }

    /// Take this window's cross-shard events (inline execution).
    pub(crate) fn take_outbox(&mut self) -> Vec<OutMsg> {
        std::mem::take(&mut self.outbox)
    }

    /// Ingest cross-shard events delivered by other shards. The
    /// canonical keys make the queue order independent of ingest order.
    pub(crate) fn ingest(&mut self, msgs: Vec<(SimTime, u64, Event)>) {
        for (at, key, ev) in msgs {
            self.queue.schedule_keyed(at, key, ev);
        }
    }

    /// Ingest one cross-shard event (inline execution).
    pub(crate) fn enqueue_remote(&mut self, at: SimTime, key: u64, ev: Event) {
        self.queue.schedule_keyed(at, key, ev);
    }

    /// Timestamp of this shard's next pending event in ns (`u64::MAX`
    /// when empty) — the input to the conservative window computation.
    pub(crate) fn next_time_ns(&self) -> u64 {
        self.queue.peek_time().map_or(u64::MAX, |t| t.as_ns())
    }

    /// Events processed, with replicated fault/telemetry pops counted
    /// exactly once fabric-wide (on shard 0) — so the aggregate over
    /// shards is invariant in the shard count.
    pub(crate) fn counted_events(&self) -> u64 {
        let n = self.queue.events_processed();
        if self.id == 0 {
            n
        } else {
            n - self.replicated
        }
    }

    /// Take one telemetry sample, hand it to the sink, and reschedule
    /// the probe one cadence later (while the horizon allows). Serial
    /// mode samples every switch; parallel mode samples only owned
    /// switches (the merge concatenates the shards' slices).
    fn on_telemetry_sample(&mut self, now: SimTime) {
        let nvls = self.config.data_vls as usize;
        let nports = self.topo.ports_per_switch() as usize;
        let nsw = self.switches.len();
        let part = self.part.clone();
        let id = self.id;
        let horizon = self.config.horizon();
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        let switches = &self.switches;
        t.record_sample_filtered(
            now,
            nvls,
            |s, p, v| &switches[s].inputs[p].vls[v],
            nsw,
            nports,
            |s| {
                part.as_deref()
                    .is_none_or(|p| p.shard_of_switch(SwitchId(s as u16)) == id)
            },
        );
        let next = now.plus_ns(t.cadence_ns());
        if next <= horizon {
            let ent = self.ent_coord();
            self.sched(next, CLASS_TELEMETRY, ent, Event::TelemetrySample);
        }
    }

    /// One stall-watchdog pass: check every (switch, input port, VL)
    /// buffer for forward progress, classify stalled buffers by the
    /// liveness of their escape path, and reschedule one cadence later
    /// (while the horizon allows). Serial-only (the builder rejects the
    /// recorder in parallel mode).
    fn on_watchdog_check(&mut self, now: SimTime) {
        let Some(wd) = self.recorder.as_deref().and_then(|r| r.opts().watchdog) else {
            return;
        };
        if !self.recorder.as_deref().is_some_and(|r| r.frozen()) {
            let nports = self.topo.ports_per_switch() as usize;
            let nvls = self.config.data_vls as usize;
            for si in 0..self.switches.len() {
                for ip in 0..nports {
                    for vl in 0..nvls {
                        self.watchdog_check_buffer(
                            now,
                            SwitchId(si as u16),
                            ip,
                            vl,
                            wd.stall_after_ns,
                        );
                    }
                }
            }
        }
        let next = now.plus_ns(wd.check_every_ns);
        if next <= self.config.horizon() {
            self.queue.schedule(next, Event::WatchdogCheck);
        }
    }

    /// Check one buffer: stalled means occupied, not mid-transmission,
    /// head routed, and no forward progress for `stall_after_ns`. A
    /// stalled buffer is classified by its head packet's *escape* path
    /// (the deadlock-freedom invariant guarantees escape queues drain,
    /// so a lively escape path means the stall resolves); a suspected
    /// wedge logs a [`FlightEvent::Stall`] and fires the freeze trigger.
    fn watchdog_check_buffer(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        ip: usize,
        vl: usize,
        stall_after_ns: u64,
    ) {
        let st = &self.switches[sw.index()];
        let buf = &st.inputs[ip].vls[vl];
        if buf.is_empty() || buf.has_in_flight() {
            return;
        }
        let head = buf.get(0);
        let Some(route) = head.route.as_ref() else {
            return; // still in the routing pipeline: not stall-eligible
        };
        let waited = self
            .recorder
            .as_deref()
            .map_or(0, |r| r.stalled_for(sw, ip, vl, now));
        if waited < stall_after_ns {
            return;
        }
        let op = route.escape;
        let escape_link_up = st.link_up[op.index()];
        let out = &st.outputs[op.index()];
        let escape_streaming = out.busy_until > now;
        let out_vl = st.sl2vl.vl_for(PortIndex(ip as u8), op, head.packet.sl);
        let escape_credits_ok = match out.credits.as_ref() {
            None => true,
            Some(cs) => cs[out_vl.index()] >= head.packet.credits(),
        };
        let packet_id = head.packet.id;
        let since_return = self
            .recorder
            .as_deref()
            .and_then(|r| r.last_credit_return_at(sw, op))
            .map(|t| now.since(t));
        let class = classify_stall(
            escape_link_up,
            escape_streaming,
            escape_credits_ok,
            since_return,
            stall_after_ns,
        );
        let Some(r) = self.recorder.as_deref_mut() else {
            return;
        };
        if r.should_log_stall(sw, ip, vl, class) {
            r.record(
                Some(sw),
                now,
                FlightEvent::Stall {
                    port: PortIndex(ip as u8),
                    vl: VirtualLane(vl as u8),
                    packet: packet_id,
                    waited_ns: waited,
                    class,
                },
            );
            if class == StallClass::SuspectedWedge {
                r.trigger(now, TriggerCause::SuspectedWedge, Some(sw), Some(packet_id));
            }
        }
    }

    /// Raise the fault-mask depth of one port. Returns `true` when the
    /// port transitioned from live to masked. Masks are global state:
    /// every shard applies every fault's masks, so hot-path `link_up`
    /// reads never cross the partition.
    fn mask_port(&mut self, s: SwitchId, p: PortIndex, by_switch: bool) -> bool {
        let st = &mut self.switches[s.index()];
        st.down_depth[p.index()] += 1;
        if by_switch {
            st.switch_down_depth[p.index()] += 1;
        }
        let transitioned = st.down_depth[p.index()] == 1;
        if transitioned {
            st.link_up[p.index()] = false;
        }
        transitioned
    }

    /// Lower the fault-mask depth of one port. Returns `true` when the
    /// port transitioned from masked back to live (overlapping faults
    /// keep it masked until the last one clears).
    fn unmask_port(&mut self, s: SwitchId, p: PortIndex, by_switch: bool) -> bool {
        let st = &mut self.switches[s.index()];
        let was = st.down_depth[p.index()];
        st.down_depth[p.index()] = was.saturating_sub(1);
        if by_switch {
            st.switch_down_depth[p.index()] = st.switch_down_depth[p.index()].saturating_sub(1);
        }
        let live = was == 1;
        if live {
            st.link_up[p.index()] = true;
        }
        live
    }

    /// Re-synchronize the `s → peer` sender-side credit counters after
    /// link retraining (flow-control reset); space held by residencies
    /// still draining comes back through their normal CreditReturns.
    ///
    /// Serial mode snapshots the receiver's free space instantly.
    /// Parallel mode may have `s` and `peer` in different shards, so it
    /// runs a two-phase protocol: the receiver's owner snapshots free
    /// space and sends it with the link propagation delay; the sender's
    /// owner zeroes the counters and discards credit returns until the
    /// snapshot lands (their space is already counted in it). Class
    /// order Fault < CreditResync < CreditReturn makes the handoff
    /// exact at every timestamp.
    fn resync_link_credits(
        &mut self,
        now: SimTime,
        s: SwitchId,
        p: PortIndex,
        peer: SwitchId,
        pp: PortIndex,
    ) {
        if self.part.is_some() {
            if self.owns_switch(peer) {
                let free: Box<InlineVec<Credits, 16>> = Box::new(
                    self.switches[peer.index()].inputs[pp.index()]
                        .vls
                        .iter()
                        .map(|b| b.free())
                        .collect(),
                );
                let at = now.plus_ns(self.config.phys.propagation_ns);
                let ent = self.ent_switch(peer);
                self.sched(
                    at,
                    CLASS_CREDIT_RESYNC,
                    ent,
                    Event::CreditResync {
                        sw: s,
                        port: p,
                        free,
                    },
                );
            }
            if self.owns_switch(s) {
                if let Some(cs) = self.switches[s.index()].outputs[p.index()].credits.as_mut() {
                    for c in cs.iter_mut() {
                        *c = Credits::ZERO;
                    }
                }
                let ports = self.topo.ports_per_switch() as usize;
                self.resync_pending[s.index() * ports + p.index()] = true;
            }
            return;
        }
        let free: InlineVec<Credits, 16> = self.switches[peer.index()].inputs[pp.index()]
            .vls
            .iter()
            .map(|b| b.free())
            .collect();
        if let Some(cs) = self.switches[s.index()].outputs[p.index()].credits.as_mut() {
            for (c, f) in cs.iter_mut().zip(free.iter()) {
                *c = *f;
            }
        }
        self.schedule_arbitrate(now, s);
    }

    /// The receiver's credit snapshot lands at the sender (parallel
    /// engine only): install it, lift the stale-return discard, and give
    /// the revived output a chance to arbitrate. Applying a snapshot to
    /// a port that died again while it was on the wire is harmless —
    /// arbitration re-checks `link_up`, and the next link-up restarts
    /// the protocol.
    fn on_credit_resync(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        port: PortIndex,
        free: &InlineVec<Credits, 16>,
    ) {
        let ports = self.topo.ports_per_switch() as usize;
        self.resync_pending[sw.index() * ports + port.index()] = false;
        if let Some(cs) = self.switches[sw.index()].outputs[port.index()]
            .credits
            .as_mut()
        {
            for (c, f) in cs.iter_mut().zip(free.iter()) {
                *c = *f;
            }
        }
        self.schedule_arbitrate(now, sw);
    }

    /// Apply one fault-schedule entry. Downing a link masks both port
    /// directions; downing a switch atomically masks every wired port of
    /// the switch in both directions (in-flight packets toward it are
    /// lost, its own buffered packets are stranded until it returns — a
    /// power-cycled switch that kept its buffer RAM, chosen so pending
    /// buffer residencies stay valid). The matching up event restores the
    /// ports and re-synchronizes sender-side credit counters from the
    /// receiver buffers. Redundant events (downing a dead link, upping a
    /// live one) are ignored. In parallel mode every shard executes every
    /// fault (masks are global); the stats count is taken by the shard
    /// owning the first-named switch.
    fn on_fault(&mut self, now: SimTime, idx: usize) {
        let f = self.faults[idx];
        match f.kind {
            FaultKind::LinkDown => {
                if !self.switches[f.a.index()].link_up[f.pa.index()] {
                    return;
                }
                self.mask_port(f.a, f.pa, false);
                self.mask_port(f.b, f.pb, false);
                self.active_faults += 1;
                if self.owns_switch(f.a) {
                    self.stats.on_fault(now);
                }
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.record(Some(f.a), now, FlightEvent::LinkDown { port: f.pa });
                    r.record(Some(f.b), now, FlightEvent::LinkDown { port: f.pb });
                }
            }
            FaultKind::LinkUp => {
                if self.switches[f.a.index()].link_up[f.pa.index()] {
                    return;
                }
                self.unmask_port(f.a, f.pa, false);
                self.unmask_port(f.b, f.pb, false);
                self.active_faults -= 1;
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.record(Some(f.a), now, FlightEvent::LinkUp { port: f.pa });
                    r.record(Some(f.b), now, FlightEvent::LinkUp { port: f.pb });
                }
                for (s, p, peer, pp) in [(f.a, f.pa, f.b, f.pb), (f.b, f.pb, f.a, f.pa)] {
                    self.resync_link_credits(now, s, p, peer, pp);
                }
            }
            FaultKind::SwitchDown => self.apply_switch_fault(now, f.a, true),
            FaultKind::SwitchUp => self.apply_switch_fault(now, f.a, false),
        }
        if self.recovery == RecoveryPolicy::SmResweep {
            // Serial-only: the builder rejects SmResweep in parallel mode
            // (a re-sweep rebuilds global routing mid-run).
            self.queue
                .schedule(now.plus_ns(self.resweep_latency_ns), Event::ResweepDone);
        }
    }

    /// Down or up a whole switch: every inter-switch link is masked or
    /// unmasked in both directions, every host-facing port on the switch
    /// side. At switch-up, each link whose two sides both came back live
    /// gets its sender credits re-synchronized; attached hosts get their
    /// credit counters rebuilt from the receiver's free space — credits
    /// they spent on packets that died at the masked port never return,
    /// and without the resync they would be leaked forever. (Hosts are
    /// co-located with their switch, so the host rebuild stays instant
    /// in both modes.)
    fn apply_switch_fault(&mut self, now: SimTime, s: SwitchId, down: bool) {
        if self.dead_switches[s.index()] == down {
            return; // redundant (already in the requested state)
        }
        self.dead_switches[s.index()] = down;
        if down {
            self.active_faults += 1;
            if self.owns_switch(s) {
                self.stats.on_fault(now);
            }
        } else {
            self.active_faults -= 1;
        }
        if let Some(r) = self.recorder.as_deref_mut() {
            let ev = if down {
                FlightEvent::SwitchDown { sw: s }
            } else {
                FlightEvent::SwitchUp { sw: s }
            };
            r.record(Some(s), now, ev);
        }
        let neighbors: InlineVec<(PortIndex, SwitchId, PortIndex), MAX_PORTS> =
            self.topo.switch_neighbors(s).collect();
        for &(p, peer, pp) in neighbors.iter() {
            if down {
                self.mask_port(s, p, true);
                if self.mask_port(peer, pp, true) {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.record(Some(peer), now, FlightEvent::LinkDown { port: pp });
                    }
                }
            } else {
                let live_s = self.unmask_port(s, p, true);
                let live_peer = self.unmask_port(peer, pp, true);
                if live_peer {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.record(Some(peer), now, FlightEvent::LinkUp { port: pp });
                    }
                }
                if live_s && live_peer {
                    self.resync_link_credits(now, s, p, peer, pp);
                    self.resync_link_credits(now, peer, pp, s, p);
                }
            }
        }
        let attached: InlineVec<(PortIndex, HostId), MAX_PORTS> =
            self.topo.attached_hosts(s).collect();
        for &(p, h) in attached.iter() {
            if down {
                self.mask_port(s, p, true);
            } else if self.unmask_port(s, p, true) && self.owns_switch(s) {
                let free: InlineVec<Credits, 16> = self.switches[s.index()].inputs[p.index()]
                    .vls
                    .iter()
                    .map(|b| b.free())
                    .collect();
                for (c, f) in self.hosts[h.index()].credits.iter_mut().zip(free.iter()) {
                    *c = *f;
                }
                self.try_inject(now, h);
            }
        }
        if !down && self.owns_switch(s) {
            self.schedule_arbitrate(now, s);
        }
    }

    /// The SM re-sweep completes: install routing rebuilt on the
    /// *current* degraded topology and re-route already-buffered packets
    /// against it. If every link is back up the primary tables are
    /// reinstated; if the degraded fabric is disconnected the sweep
    /// fails and the old tables stay live. Serial-only.
    fn on_resweep_done(&mut self, now: SimTime) {
        if self.active_faults == 0 {
            self.recovery_routing = None;
            self.stats.on_recovery_installed(now);
        } else {
            match self.rebuild_degraded_routing() {
                Ok(r) => {
                    self.recovery_routing = Some(r);
                    self.stats.on_recovery_installed(now);
                }
                Err(_) => {
                    self.stats.on_resweep_failed();
                    return;
                }
            }
        }
        // The table swap invalidates every cached FIB entry.
        if let Some(fib) = self.fib.as_deref_mut() {
            fib.flush();
        }
        // Every freshly installed table set — degraded recovery tables or
        // the reinstated primaries — is certified deadlock-free before
        // traffic resumes on it.
        self.certify_escape(false);
        self.reroute_buffered();
        for s in 0..self.switches.len() {
            self.schedule_arbitrate(now, SwitchId(s as u16));
        }
    }

    /// Certify the currently live tables' escape paths acyclic with
    /// [`check_escape_routes`] (the up\*/down\* deadlock-freedom
    /// invariant), feeding the verdict into the run statistics. With
    /// `alternate` set the APM alternate path set is walked instead of
    /// the primary one. Purely observational: no RNG, no control flow —
    /// certified runs stay bit-identical across queue backends.
    fn certify_escape(&mut self, alternate: bool) {
        let ok = {
            let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
            check_escape_routes(self.topo, |s, h| {
                let dlid = if alternate {
                    routing.apm_dlid(h, false).ok()?
                } else {
                    routing.dlid(h, false).ok()?
                };
                routing.route_shared(s, dlid).ok().map(|r| r.escape)
            })
            .is_ok()
        };
        self.stats.on_escape_certification(ok);
    }

    /// Test hook: run an escape certification against an arbitrary
    /// next-hop function through the production stats path, so the
    /// failure-counting plumbing can be exercised with a deliberately
    /// cyclic table.
    pub(crate) fn debug_certify_with(
        &mut self,
        next_hop: impl Fn(SwitchId, HostId) -> Option<PortIndex>,
    ) {
        let ok = check_escape_routes(self.topo, next_hop).is_ok();
        self.stats.on_escape_certification(ok);
    }

    /// Rebuild routing on the degraded topology, in *physical* id order
    /// so the LID space is unchanged and DLIDs of in-flight packets stay
    /// valid (the SMP-level SM pipeline discovers in BFS order and
    /// correlates by GUID; the in-sim re-sweep models its outcome, not
    /// its numbering).
    fn rebuild_degraded_routing(&self) -> Result<FaRouting<E>, IbaError> {
        let mut b = TopologyBuilder::new(self.topo.num_switches(), self.topo.ports_per_switch());
        for s in self.topo.switch_ids() {
            for (p, peer, pp) in self.topo.switch_neighbors(s) {
                if peer.0 > s.0 && self.switches[s.index()].link_up[p.index()] {
                    b.connect_ports(s, p, peer, pp)?;
                }
            }
        }
        for h in self.topo.host_ids() {
            let (sw, port) = self.topo.host_attachment(h);
            b.attach_host_at(sw, port)?;
        }
        let degraded = b.build()?; // errors when the dead link disconnected the fabric
        let cfg = *self.routing.config();
        if self.routing.has_apm() {
            FaRouting::build_apm_with_engine(&degraded, cfg)
        } else if self.routing.source_multipath().is_some() {
            FaRouting::build_source_multipath_with_engine(&degraded, cfg)
        } else {
            let caps: Vec<bool> = self
                .topo
                .switch_ids()
                .map(|s| self.routing.switch_adaptive(s))
                .collect();
            FaRouting::build_mixed_with_engine(&degraded, cfg, &caps)
        }
    }

    /// Point every routed, not-in-flight buffered packet at the freshly
    /// installed tables (packets routed before the sweep may hold
    /// options through a dead link and would stall forever).
    fn reroute_buffered(&mut self) {
        let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
        for (si, st) in self.switches.iter_mut().enumerate() {
            let sw = SwitchId(si as u16);
            for input in st.inputs.iter_mut() {
                for buf in input.vls.iter_mut() {
                    buf.reroute_with(|p| routing.route_shared(sw, p.dlid).ok());
                }
            }
        }
    }

    fn on_generate(&mut self, now: SimTime, host: HostId) {
        // APM migration: while any link is down, new packets address the
        // alternate path set, steering them off the primary tree without
        // waiting for the SM.
        let migrate = self.recovery == RecoveryPolicy::ApmMigrate && self.active_faults > 0;
        if migrate && !self.apm_certified {
            // First migration onto the alternate path set: certify its
            // escape chains acyclic before any packet addresses them
            // (once per run — the APM tables never change). Parallel
            // runs certify eagerly at prime instead, so this branch is
            // serial-only.
            self.apm_certified = true;
            self.certify_escape(true);
        }
        let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
        let h = &mut self.hosts[host.index()];
        let gp = h.gen.as_mut().expect("synthetic mode").generate();
        let dlid = match routing.source_multipath() {
            // Source-selected multipath: rotate over the destination's
            // whole address range; each address is a distinct fixed path.
            Some(x) => {
                let offset = h.mp_cursor % x;
                h.mp_cursor = (h.mp_cursor + 1) % x;
                routing
                    .lid_map()
                    .lid_for(gp.dst, offset)
                    .expect("offset within the LMC range")
            }
            None if migrate => routing
                .apm_dlid(gp.dst, gp.adaptive)
                .expect("APM tables checked when faults were armed"),
            None => routing
                .dlid(gp.dst, gp.adaptive)
                .expect("validated at construction"),
        };
        self.enqueue_generated(now, host, gp.dst, dlid, gp.sl, gp.size_bytes);

        let dt = self.hosts[host.index()]
            .gen
            .as_mut()
            .expect("synthetic mode")
            .next_interarrival_ns();
        if now.plus_ns(dt) < self.gen_deadline {
            let ent = self.ent_host(host);
            self.sched(
                now.plus_ns(dt),
                CLASS_GENERATE,
                ent,
                Event::Generate { host },
            );
        }
        self.try_inject(now, host);
    }

    /// Serial-only (the builder rejects scripts in parallel mode).
    fn on_generate_scripted(&mut self, now: SimTime, idx: usize) {
        let script = self.script.expect("scripted mode");
        let entry = script.packets()[idx];
        // Scripted path sets are explicit traces and are honoured as
        // written even under ApmMigrate; only the tables may be swapped
        // by an SM re-sweep.
        let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
        let dlid = match (routing.source_multipath(), entry.path_set) {
            (Some(x), _) => {
                let h = &mut self.hosts[entry.src.index()];
                let offset = h.mp_cursor % x;
                h.mp_cursor = (h.mp_cursor + 1) % x;
                routing
                    .lid_map()
                    .lid_for(entry.dst, offset)
                    .expect("offset within the LMC range")
            }
            (None, PathSet::Primary) => routing
                .dlid(entry.dst, entry.adaptive)
                .expect("validated at construction"),
            (None, PathSet::Alternate) => routing
                .apm_dlid(entry.dst, entry.adaptive)
                .expect("validated at construction"),
        };
        self.enqueue_generated(now, entry.src, entry.dst, dlid, entry.sl, entry.size_bytes);
        if let Some(next) = script.packets().get(idx + 1) {
            if next.at < self.gen_deadline {
                self.queue
                    .schedule(next.at, Event::GenerateScripted { idx: idx + 1 });
            }
        }
        self.try_inject(now, entry.src);
    }

    /// Create the packet and place it in the source queue (or drop it at
    /// a full finite queue). Serial mode numbers packets from a single
    /// global counter (generation order); parallel mode packs
    /// `(source host, per-host sequence)` so ids are independent of the
    /// interleaving of other hosts' generators across shards.
    fn enqueue_generated(
        &mut self,
        now: SimTime,
        host: HostId,
        dst: HostId,
        dlid: iba_core::Lid,
        sl: iba_core::ServiceLevel,
        size_bytes: u32,
    ) {
        let id = if self.part.is_some() {
            PacketId(((host.0 as u64) << 40) | self.hosts[host.index()].next_seq)
        } else {
            let id = PacketId(self.next_packet_id);
            self.next_packet_id += 1;
            id
        };
        let h = &mut self.hosts[host.index()];
        let packet = Packet {
            id,
            src: host,
            dst,
            dlid,
            sl,
            size_bytes,
            generated_at: now,
            seq: h.next_seq,
            hops: 0,
            escape_uses: 0,
        };
        h.next_seq += 1;
        let attached = h.attached_switch;
        let queue_full = self
            .config
            .host_queue_capacity
            .is_some_and(|cap| h.queue.len() >= cap);
        if !queue_full {
            h.queue.push_back(packet);
        }
        self.stats.on_generated(now);
        if queue_full {
            // Finite CA send queue: the new packet is discarded.
            self.stats.on_source_drop();
            self.trace(
                id,
                now,
                TraceStep::Dropped {
                    sw: attached,
                    cause: DropCause::SourceQueueFull,
                },
            );
            if let Some(r) = self.recorder.as_deref_mut() {
                r.record(
                    None,
                    now,
                    FlightEvent::Dropped {
                        packet: id,
                        cause: DropCause::SourceQueueFull,
                    },
                );
                if r.wants_drop_trigger() {
                    r.trigger(now, TriggerCause::Drop, None, Some(id));
                }
            }
        } else {
            self.trace(id, now, TraceStep::Generated { host });
        }
    }

    fn try_inject(&mut self, now: SimTime, host: HostId) {
        let h = &mut self.hosts[host.index()];
        if h.tx_busy_until > now {
            return; // a TryInject is already scheduled at tx_busy_until
        }
        let Some(front) = h.queue.front() else {
            return;
        };
        let vl = VirtualLane(front.sl.0 % self.config.data_vls);
        let need = front.credits();
        if h.credits[vl.index()] < need {
            return; // woken again by CreditReturn
        }
        let packet = h.queue.pop_front().expect("checked above");
        let traced_id = packet.id;
        h.credits[vl.index()] -= need;
        let ser = self.config.phys.serialization_ns(packet.size_bytes);
        h.tx_busy_until = now.plus_ns(ser);
        let queue_len = h.queue.len();
        let sw = h.attached_switch;
        let (_, port) = self.topo.host_attachment(host);
        self.stats.on_injected(queue_len);
        self.trace(traced_id, now, TraceStep::Injected);
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(
                None,
                now,
                FlightEvent::Injected {
                    packet: traced_id,
                    host,
                },
            );
        }
        let ent = self.ent_host(host);
        self.sched(
            now.plus_ns(self.config.phys.propagation_ns),
            CLASS_HEADER_ARRIVE,
            ent,
            Event::HeaderArrive {
                sw,
                port,
                vl,
                packet,
            },
        );
        self.sched(
            now.plus_ns(ser),
            CLASS_TRY_INJECT,
            ent,
            Event::TryInject { host },
        );
    }

    /// Account one in-transit loss at `sw`: stats (per cause), journey
    /// trace, flight-recorder event and (when configured) the drop
    /// trigger.
    fn drop_in_transit(&mut self, now: SimTime, sw: SwitchId, id: PacketId, cause: DropCause) {
        self.stats.on_transit_drop(now, cause);
        self.trace(id, now, TraceStep::Dropped { sw, cause });
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(Some(sw), now, FlightEvent::Dropped { packet: id, cause });
            if r.wants_drop_trigger() {
                r.trigger(now, TriggerCause::Drop, Some(sw), Some(id));
            }
        }
    }

    fn on_header_arrive(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        packet: Packet,
    ) {
        if !self.switches[sw.index()].link_up[port.index()] {
            // The link (or the whole receiving switch) died while the
            // packet was on the wire: with no receiver it is lost —
            // virtual cut-through has no retransmission below the
            // transport layer. The sender's stale credit counter is
            // re-synchronized at link-up.
            let cause = if self.switches[sw.index()].switch_down_depth[port.index()] > 0 {
                DropCause::SwitchDown
            } else {
                DropCause::LinkDown
            };
            self.drop_in_transit(now, sw, packet.id, cause);
            return;
        }
        let corrupted = self.corrupt_prob > 0.0
            && if self.part.is_some() {
                self.switch_corrupt_rngs[sw.index()].chance(self.corrupt_prob)
            } else {
                self.corrupt_rng.chance(self.corrupt_prob)
            };
        if corrupted {
            // CRC failure at the receiver. The link is healthy, so the
            // space the packet would have occupied must still be
            // advertised back to the sender — dropping without the
            // return would leak credits from the upstream counter.
            self.drop_in_transit(now, sw, packet.id, DropCause::Corrupted);
            let upstream = self.topo.endpoint(sw, port).expect("input port is wired");
            let ent = self.ent_switch(sw);
            self.sched(
                now.plus_ns(self.config.phys.propagation_ns),
                CLASS_CREDIT_RETURN,
                ent,
                Event::CreditReturn {
                    target: upstream.node,
                    port: upstream.port,
                    vl,
                    credits: packet.credits(),
                },
            );
            return;
        }
        let id = packet.id;
        let ready_at = now.plus_ns(self.config.phys.routing_delay_ns);
        self.trace(id, now, TraceStep::ArrivedAt { sw, port, vl });
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(
                Some(sw),
                now,
                FlightEvent::Arrived {
                    packet: id,
                    port,
                    vl,
                },
            );
            // A packet landing in an empty buffer starts a fresh
            // forward-progress clock for the watchdog.
            if self.switches[sw.index()].inputs[port.index()].vls[vl.index()].is_empty() {
                r.note_progress(sw, port.index(), vl.index(), now);
            }
        }
        let handle =
            self.switches[sw.index()].inputs[port.index()].vls[vl.index()].push(packet, ready_at);
        let ent = self.ent_switch(sw);
        self.sched(
            ready_at,
            CLASS_ROUTE_DONE,
            ent,
            Event::RouteDone {
                sw,
                port,
                vl,
                handle,
            },
        );
    }

    fn on_route_done(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    ) {
        let dlid = {
            let buf = &self.switches[sw.index()].inputs[port.index()].vls[vl.index()];
            buf.get_slot(handle).map(|p| p.packet.dlid)
        };
        let Some(dlid) = dlid else {
            return; // residency already gone (cannot happen before ready_at)
        };
        let route = if let Some(fib) = self.fib.as_deref_mut() {
            // Field-disjoint borrows: the cache is held mutably, so the
            // live tables are resolved inline instead of via
            // `cur_routing`.
            let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
            match fib.lookup(sw, dlid) {
                Some(route) => {
                    self.stats.fib_hits += 1;
                    route
                }
                None => {
                    self.stats.fib_misses += 1;
                    let route = routing
                        .route_shared(sw, dlid)
                        .expect("forwarding tables are fully programmed");
                    fib.insert(sw, dlid, route.clone());
                    route
                }
            }
        } else {
            self.cur_routing()
                .route_shared(sw, dlid)
                .expect("forwarding tables are fully programmed")
        };
        self.switches[sw.index()].inputs[port.index()].vls[vl.index()].set_route_at(handle, route);
        self.schedule_arbitrate(now, sw);
    }

    fn on_tx_done(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    ) {
        let removed = self.switches[sw.index()].inputs[port.index()].vls[vl.index()]
            .remove_at(handle)
            .expect("tx-done packet still buffered");
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(
                Some(sw),
                now,
                FlightEvent::TailLeft {
                    packet: removed.packet.id,
                    port,
                    vl,
                },
            );
            // A freed slot is forward progress for this buffer.
            r.note_progress(sw, port.index(), vl.index(), now);
        }
        // Return the freed credits to whoever feeds this input port.
        let upstream = self.topo.endpoint(sw, port).expect("input port is wired");
        let ent = self.ent_switch(sw);
        self.sched(
            now.plus_ns(self.config.phys.propagation_ns),
            CLASS_CREDIT_RETURN,
            ent,
            Event::CreditReturn {
                target: upstream.node,
                port: upstream.port,
                vl,
                credits: removed.packet.credits(),
            },
        );
        self.schedule_arbitrate(now, sw);
    }

    fn on_credit_return(
        &mut self,
        now: SimTime,
        target: NodeRef,
        port: PortIndex,
        vl: VirtualLane,
        credits: Credits,
    ) {
        match target {
            NodeRef::Switch(s) => {
                if !self.switches[s.index()].link_up[port.index()] {
                    return; // the return was on the wire of a dead link
                }
                if self.part.is_some() {
                    // A credit-resync snapshot is on the wire: this
                    // return's space is already counted in it, so
                    // applying both would double-count.
                    let ports = self.topo.ports_per_switch() as usize;
                    if self.resync_pending[s.index() * ports + port.index()] {
                        return;
                    }
                }
                let st = &mut self.switches[s.index()];
                let cap = self.config.vl_buffer_credits;
                if let Some(cs) = st.outputs[port.index()].credits.as_mut() {
                    // Clamp at capacity: after a link-up credit reset, a
                    // return already in flight before the fault could
                    // otherwise overshoot. A no-op in fault-free runs.
                    cs[vl.index()] = (cs[vl.index()] + credits).min(cap);
                }
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.record(
                        Some(s),
                        now,
                        FlightEvent::CreditReturned {
                            port,
                            vl,
                            credits: credits.count(),
                        },
                    );
                    r.note_credit_return(s, port, now);
                }
                self.schedule_arbitrate(now, s);
            }
            NodeRef::Host(h) => {
                // Clamp at capacity for the same reason as the switch
                // path: a switch-up resync rebuilds the host counter from
                // free space, and a return already on the wire would
                // otherwise overshoot. A no-op in fault-free runs.
                let cap = self.config.vl_buffer_credits;
                let c = &mut self.hosts[h.index()].credits[vl.index()];
                *c = (*c + credits).min(cap);
                self.try_inject(now, h);
            }
        }
    }

    fn schedule_arbitrate(&mut self, now: SimTime, sw: SwitchId) {
        if !self.switches[sw.index()].arb_pending {
            self.switches[sw.index()].arb_pending = true;
            let ent = self.ent_switch(sw);
            self.sched(now, CLASS_ARBITRATE, ent, Event::Arbitrate { sw });
        }
    }

    /// One §4.3 arbitration sweep over every owned switch at the current
    /// simulated time, returning the total number of grants. The
    /// microbenchmark probe for the arbitration hot path; grants made
    /// here reserve resources and schedule downstream events exactly as
    /// in-loop arbitration does.
    pub(crate) fn arbitrate_pass(&mut self) -> usize {
        let now = self.queue.now();
        let mut grants = 0;
        for s in 0..self.switches.len() {
            let sw = SwitchId(s as u16);
            if !self.owns_switch(sw) {
                continue;
            }
            grants += self.arbitrate(now, sw);
        }
        grants
    }

    /// One arbitration pass: repeatedly grant feasible (input, output)
    /// matches until no further progress, with a round-robin cursor over
    /// input ports for fairness. Returns the number of grants made.
    fn arbitrate(&mut self, now: SimTime, sw: SwitchId) -> usize {
        let nports = self.topo.ports_per_switch() as usize;
        let mut grants = 0;
        loop {
            let mut progress = false;
            for k in 0..nports {
                let ip = (self.switches[sw.index()].rr_cursor + k) % nports;
                if self.switches[sw.index()].inputs[ip].read_busy_until > now {
                    continue;
                }
                if let Some(d) = self.pick_for_input(now, sw, ip) {
                    self.start_forward(now, sw, d);
                    progress = true;
                    grants += 1;
                }
            }
            let st = &mut self.switches[sw.index()];
            st.rr_cursor = (st.rr_cursor + 1) % nports;
            if !progress {
                break;
            }
        }
        grants
    }

    /// Find one forwardable candidate in input port `ip`'s buffers.
    fn pick_for_input(&mut self, now: SimTime, sw: SwitchId, ip: usize) -> Option<Decision> {
        let nvls = self.config.data_vls as usize;
        let start = self.switches[sw.index()].inputs[ip].vl_cursor;
        for k in 0..nvls {
            let vl = (start + k) % nvls;
            let cands = {
                let buf = &self.switches[sw.index()].inputs[ip].vls[vl];
                if buf.has_in_flight() {
                    continue;
                }
                let mut cands = buf.candidates(now, self.config.escape_order);
                if !self.routing.switch_adaptive(sw) {
                    // A plain deterministic IBA switch (§4.2 mixed
                    // fabrics) has a single FIFO read point: no escape
                    // head, no pointer redirection.
                    cands.retain(|&(idx, _)| idx == 0);
                }
                cands
            };
            let record = self.recorder.as_deref().is_some_and(|r| !r.frozen());
            for &(idx, read_point) in &cands {
                let mut scratch = OptionOutcomes::new();
                if let Some(d) = self.pick_option(
                    now,
                    sw,
                    ip,
                    vl,
                    idx,
                    read_point,
                    record.then_some(&mut scratch),
                ) {
                    if record {
                        // Park the granted candidate's option verdicts for
                        // `start_forward` to attach to the RouteDecision
                        // event; keeping them out of `Decision` spares the
                        // recorder-off path the ~100-byte copy per grant.
                        self.decision_options = scratch;
                    }
                    // Advance the VL cursor past the served lane.
                    self.switches[sw.index()].inputs[ip].vl_cursor = (vl + 1) % nvls;
                    return Some(d);
                }
                if record && !scratch.is_empty() {
                    // Every candidate option was rejected: log the full
                    // reason set (deduplicated per buffer).
                    let packet = self.switches[sw.index()].inputs[ip].vls[vl]
                        .get(idx)
                        .packet
                        .id;
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.record_blocked(sw, now, ip, vl, packet, &scratch);
                    }
                }
            }
        }
        None
    }

    /// §4.3/§4.4 output selection for one candidate packet: adaptive
    /// options first (minimal paths — the livelock-avoidance preference),
    /// gated by adaptive-queue credits; the escape option as fallback,
    /// gated by total credits.
    ///
    /// With the flight recorder armed, `rec` collects one
    /// [`OptionOutcome`] per candidate — including, when an adaptive
    /// option wins, the *observed* fate the escape option would have had
    /// — so recorded routing decisions carry their full alternative set.
    /// The observation never touches the RNG or any control flow, so
    /// recorded runs stay bit-identical to unrecorded ones.
    #[allow(clippy::too_many_arguments)]
    fn pick_option(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        ip: usize,
        vl: usize,
        idx: usize,
        read_point: ReadPoint,
        mut rec: Option<&mut OptionOutcomes>,
    ) -> Option<Decision> {
        let cap = self.config.vl_buffer_credits;
        let parallel = self.part.is_some();
        let st = &self.switches[sw.index()];
        let bp = st.inputs[ip].vls[vl].get(idx);
        let need = bp.packet.credits();
        let sl = bp.packet.sl;
        let route = bp.route.as_ref().expect("candidate is routed");

        let adaptive_allowed =
            read_point == ReadPoint::AdaptiveHead || self.config.adaptive_from_escape_head;
        if !adaptive_allowed {
            if let Some(o) = rec.as_deref_mut() {
                for &op in &route.adaptive {
                    o.push(OptionOutcome {
                        port: op,
                        escape: false,
                        verdict: OptionVerdict::AdaptiveRestricted,
                    });
                }
            }
        }

        // Collect feasible adaptive options with their free adaptive-queue
        // credits (host ports are infinite sinks). At most one option per
        // switch port, so the list lives on the stack — arbitration runs
        // once per event and must not allocate.
        let mut feasible: InlineVec<(PortIndex, VirtualLane, u32), MAX_PORTS> = InlineVec::new();
        if adaptive_allowed {
            for &op in &route.adaptive {
                if !st.link_up[op.index()] {
                    // Dead port: graceful degradation (§4.3).
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.note_stall(sw, op, StallCause::DeadPort);
                    }
                    if let Some(o) = rec.as_deref_mut() {
                        o.push(OptionOutcome {
                            port: op,
                            escape: false,
                            verdict: OptionVerdict::DeadPort,
                        });
                    }
                    continue;
                }
                let out = &st.outputs[op.index()];
                if out.busy_until > now {
                    if let Some(o) = rec.as_deref_mut() {
                        o.push(OptionOutcome {
                            port: op,
                            escape: false,
                            verdict: OptionVerdict::LinkBusy,
                        });
                    }
                    continue;
                }
                let out_vl = st.sl2vl.vl_for(PortIndex(ip as u8), op, sl);
                match out.credits.as_ref() {
                    None => feasible.push((op, out_vl, u32::MAX)),
                    Some(cs) => {
                        let avail = cs[out_vl.index()].adaptive_share(cap);
                        if avail >= need {
                            feasible.push((op, out_vl, avail.count()));
                        } else {
                            if let Some(t) = self.telemetry.as_deref_mut() {
                                t.note_stall(sw, op, StallCause::NoAdaptiveCredit);
                            }
                            if let Some(o) = rec.as_deref_mut() {
                                o.push(OptionOutcome {
                                    port: op,
                                    escape: false,
                                    verdict: OptionVerdict::NoAdaptiveCredit,
                                });
                            }
                        }
                    }
                }
            }
        }

        let adaptive_pick: Option<(PortIndex, VirtualLane, u32)> = match self.config.selection {
            SelectionPolicy::CreditWeighted => {
                // Most free adaptive-queue space wins; random tie-break
                // among equals keeps the load balanced.
                feasible.iter().map(|f| f.2).max().map(|best| {
                    let ties: InlineVec<_, MAX_PORTS> =
                        feasible.iter().filter(|f| f.2 == best).copied().collect();
                    let k = if parallel {
                        self.switch_arb_rngs[sw.index()].below(ties.len())
                    } else {
                        self.arb_rng.below(ties.len())
                    };
                    ties[k]
                })
            }
            SelectionPolicy::RandomAdaptive => (!feasible.is_empty()).then(|| {
                let k = if parallel {
                    self.switch_arb_rngs[sw.index()].below(feasible.len())
                } else {
                    self.arb_rng.below(feasible.len())
                };
                feasible[k]
            }),
            SelectionPolicy::FirstFeasible => feasible.iter().min_by_key(|f| f.0).copied(),
        };

        if let Some(o) = rec.as_deref_mut() {
            for f in feasible.iter() {
                o.push(OptionOutcome {
                    port: f.0,
                    escape: false,
                    verdict: if adaptive_pick.map(|p| p.0) == Some(f.0) {
                        OptionVerdict::Selected
                    } else {
                        OptionVerdict::LostArbitration
                    },
                });
            }
        }

        if let Some((op, out_vl, _)) = adaptive_pick {
            if let Some(o) = rec.as_deref_mut() {
                // The escape option was never consulted (an adaptive
                // option won); observe the fate it *would* have had so
                // the recorded candidate set is complete. Observation
                // only — no RNG, no control flow.
                let ep = route.escape;
                let verdict = if !st.link_up[ep.index()] {
                    OptionVerdict::DeadPort
                } else if st.outputs[ep.index()].busy_until > now {
                    OptionVerdict::LinkBusy
                } else {
                    let evl = st.sl2vl.vl_for(PortIndex(ip as u8), ep, sl);
                    let fits = match st.outputs[ep.index()].credits.as_ref() {
                        None => true,
                        Some(cs) => cs[evl.index()] >= need,
                    };
                    if fits {
                        OptionVerdict::LostArbitration
                    } else {
                        OptionVerdict::NoEscapeCredit
                    }
                };
                o.push(OptionOutcome {
                    port: ep,
                    escape: true,
                    verdict,
                });
            }
            return Some(Decision {
                input: ip,
                vl,
                idx,
                handle: st.inputs[ip].vls[vl].handle_at(idx),
                packet_id: bp.packet.id,
                out_port: op,
                out_vl,
                via_escape: false,
                read_point,
            });
        }

        // Escape fallback: usable whenever the *total* credit count fits
        // the packet — it lands in the adaptive or escape region of the
        // downstream buffer depending on occupancy (§4.4).
        let op = route.escape;
        if !st.link_up[op.index()] {
            // Escape path severed: the packet waits for recovery (an SM
            // re-sweep re-routes it; under other policies it stays until
            // the link returns).
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_stall(sw, op, StallCause::DeadPort);
            }
            if let Some(o) = rec.as_deref_mut() {
                o.push(OptionOutcome {
                    port: op,
                    escape: true,
                    verdict: OptionVerdict::DeadPort,
                });
            }
            return None;
        }
        let out = &st.outputs[op.index()];
        if out.busy_until > now {
            if let Some(o) = rec.as_deref_mut() {
                o.push(OptionOutcome {
                    port: op,
                    escape: true,
                    verdict: OptionVerdict::LinkBusy,
                });
            }
            return None;
        }
        let out_vl = st.sl2vl.vl_for(PortIndex(ip as u8), op, sl);
        let ok = match out.credits.as_ref() {
            None => true,
            Some(cs) => cs[out_vl.index()] >= need,
        };
        if !ok {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_stall(sw, op, StallCause::NoEscapeCredit);
            }
            if let Some(o) = rec.as_deref_mut() {
                o.push(OptionOutcome {
                    port: op,
                    escape: true,
                    verdict: OptionVerdict::NoEscapeCredit,
                });
            }
            return None;
        }
        if let Some(o) = rec {
            o.push(OptionOutcome {
                port: op,
                escape: true,
                verdict: OptionVerdict::Selected,
            });
        }
        Some(Decision {
            input: ip,
            vl,
            idx,
            handle: st.inputs[ip].vls[vl].handle_at(idx),
            packet_id: bp.packet.id,
            out_port: op,
            out_vl,
            via_escape: true,
            read_point,
        })
    }

    /// Commit a forwarding decision: reserve the resources, update the
    /// packet, and schedule the downstream events.
    fn start_forward(&mut self, now: SimTime, sw: SwitchId, d: Decision) {
        if self.telemetry.is_some() || self.recorder.is_some() {
            // Arbitration-pass latency: how long the packet sat routed in
            // the input buffer before the crossbar granted it.
            let ready_at = self.switches[sw.index()].inputs[d.input].vls[d.vl]
                .get(d.idx)
                .ready_at;
            let wait = now.since(ready_at);
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_forward(sw, d.via_escape, wait);
            }
            if self.recorder.is_some() {
                // `decision_options` holds the verdict set `pick_for_input`
                // parked for this grant (stale contents are possible only
                // when frozen, where `record` discards the event anyway).
                // Taken, not cloned: the scratch is dead until the next
                // grant parks a fresh set.
                let options = std::mem::replace(&mut self.decision_options, OptionOutcomes::new());
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.record(
                        Some(sw),
                        now,
                        FlightEvent::RouteDecision {
                            packet: d.packet_id,
                            in_port: PortIndex(d.input as u8),
                            vl: VirtualLane(d.vl as u8),
                            out_port: d.out_port,
                            via_escape: d.via_escape,
                            from_escape_head: d.read_point == ReadPoint::EscapeHead,
                            waited_ns: wait,
                            options,
                        },
                    );
                    // Winning arbitration is forward progress.
                    r.note_progress(sw, d.input, d.vl, now);
                }
            }
        }
        let st = &mut self.switches[sw.index()];
        let buf = &mut st.inputs[d.input].vls[d.vl];

        // Copy the packet for the downstream hop, updating its counters
        // (the buffered original keeps its residency until TxDone).
        let (packet, ser) = {
            let bp = buf.get(d.idx);
            debug_assert_eq!(bp.packet.id, d.packet_id);
            let mut p = bp.packet;
            p.hops += 1;
            p.escape_uses += u32::from(d.via_escape);
            let ser = self.config.phys.serialization_ns(p.size_bytes);
            (p, ser)
        };
        buf.mark_in_flight(d.idx);
        st.inputs[d.input].read_busy_until = now.plus_ns(ser);
        let out = &mut st.outputs[d.out_port.index()];
        out.busy_until = now.plus_ns(ser);
        out.busy_ns_total += ser;
        if let Some(cs) = out.credits.as_mut() {
            cs[d.out_vl.index()] -= packet.credits();
        }

        if d.via_escape {
            self.stats.on_escape_forward();
        } else {
            self.stats.on_adaptive_forward();
        }
        self.trace(
            d.packet_id,
            now,
            TraceStep::Forwarded {
                sw,
                out_port: d.out_port,
                via_escape: d.via_escape,
                from_escape_head: d.read_point == ReadPoint::EscapeHead,
            },
        );

        let prop = self.config.phys.propagation_ns;
        let ep = self
            .topo
            .endpoint(sw, d.out_port)
            .expect("output port is wired");
        let ent = self.ent_switch(sw);
        match ep.node {
            NodeRef::Switch(n) => {
                self.sched(
                    now.plus_ns(prop),
                    CLASS_HEADER_ARRIVE,
                    ent,
                    Event::HeaderArrive {
                        sw: n,
                        port: ep.port,
                        vl: d.out_vl,
                        packet,
                    },
                );
            }
            NodeRef::Host(h) => {
                self.sched(
                    now.plus_ns(ser + prop),
                    CLASS_DELIVER,
                    ent,
                    Event::Deliver { host: h, packet },
                );
            }
        }
        self.sched(
            now.plus_ns(ser),
            CLASS_TX_DONE,
            ent,
            Event::TxDone {
                sw,
                port: PortIndex(d.input as u8),
                vl: VirtualLane(d.vl as u8),
                handle: d.handle,
            },
        );
    }

    /// Quiescence of one switch: every buffer empty with zero occupancy
    /// and every live sender-side counter back at capacity. Only
    /// meaningful on the owning shard.
    pub(crate) fn switch_quiescent(&self, si: usize) -> bool {
        let cap = self.config.vl_buffer_credits;
        let sw = &self.switches[si];
        sw.inputs.iter().all(|ip| {
            ip.vls
                .iter()
                .all(|b| b.is_empty() && b.occupied() == Credits::ZERO)
        }) && sw.outputs.iter().all(|op| {
            op.credits
                .as_ref()
                .is_none_or(|cs| cs.iter().all(|&c| c == cap))
        })
    }

    /// Quiescence of one host: empty source queue, counters at capacity.
    pub(crate) fn host_quiescent(&self, hi: usize) -> bool {
        let cap = self.config.vl_buffer_credits;
        let h = &self.hosts[hi];
        h.queue.is_empty() && h.credits.iter().all(|&c| c == cap)
    }

    /// Packets resident in one switch's VL buffers.
    pub(crate) fn switch_residual(&self, si: usize) -> usize {
        self.switches[si]
            .inputs
            .iter()
            .flat_map(|ip| ip.vls.iter())
            .map(|b| b.len())
            .sum()
    }

    /// Packets waiting in one host's source queue.
    pub(crate) fn host_residual(&self, hi: usize) -> usize {
        self.hosts[hi].queue.len()
    }

    /// Credit-audit lines for one switch (see `Network::credit_audit`);
    /// ports masked by an open fault window are skipped.
    pub(crate) fn audit_switch_into(&self, si: usize, out: &mut Vec<String>) {
        let cap = self.config.vl_buffer_credits;
        let sw = &self.switches[si];
        for (p, op) in sw.outputs.iter().enumerate() {
            if !sw.link_up[p] {
                continue;
            }
            let Some(cs) = op.credits.as_ref() else {
                continue;
            };
            for (v, &c) in cs.iter().enumerate() {
                if c != cap {
                    out.push(format!(
                        "switch {si} port {p} vl {v}: {}/{} credits",
                        c.count(),
                        cap.count()
                    ));
                }
            }
        }
    }

    /// Credit-audit lines for one host; a host behind a masked
    /// attachment port is skipped.
    pub(crate) fn audit_host_into(&self, hi: usize, out: &mut Vec<String>) {
        let cap = self.config.vl_buffer_credits;
        let h = &self.hosts[hi];
        let (sw, port) = self.topo.host_attachment(HostId(hi as u16));
        if !self.switches[sw.index()].link_up[port.index()] {
            return;
        }
        for (v, &c) in h.credits.iter().enumerate() {
            if c != cap {
                out.push(format!(
                    "host {hi} vl {v}: {}/{} credits",
                    c.count(),
                    cap.count()
                ));
            }
        }
    }

    /// Cumulative transmission time per output port of one switch
    /// (utilization probe numerator).
    pub(crate) fn port_busy_row(&self, si: usize) -> Vec<u64> {
        self.switches[si]
            .outputs
            .iter()
            .map(|op| op.busy_ns_total)
            .collect()
    }

    /// Test hook: zero the sender-side credit counters of one output
    /// port without marking the link down. Nothing can be forwarded
    /// through the port (and, with nothing in flight, no credits ever
    /// return), which wedges any buffer whose packets have no other
    /// feasible option — the credit-withholding flavour of a fabric
    /// wedge, as opposed to the dead-escape-link flavour.
    pub(crate) fn debug_block_output(&mut self, sw: SwitchId, port: PortIndex) {
        if let Some(cs) = self.switches[sw.index()].outputs[port.index()]
            .credits
            .as_mut()
        {
            for c in cs.iter_mut() {
                *c = Credits::ZERO;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_stays_one_cache_line() {
        // Every queue entry carries an Event by value, and the binary
        // heap moves entries during sift — a fat variant taxes the whole
        // hot path. Rare bulky payloads (CreditResync's credit snapshot)
        // must be boxed.
        assert!(
            std::mem::size_of::<Event>() <= 64,
            "Event grew to {} bytes; box the new payload",
            std::mem::size_of::<Event>()
        );
    }
}
