//! Chrome trace-event / Perfetto export of flight-recorder dumps.
//!
//! [`perfetto_trace`] converts a [`FlightDump`] into the JSON object
//! format consumed by `chrome://tracing` and [ui.perfetto.dev]: a
//! top-level `{"traceEvents": [...]}` array of events with `ph` phase
//! codes. The mapping:
//!
//! * **pid** = switch id; one extra pseudo-process (pid = number of
//!   switches) collects host-side events. `"M"` metadata events name
//!   them `sw0`, `sw1`, …, `hosts`.
//! * **tid** = input port × VLs + VL, so every (port, VL) buffer is its
//!   own timeline row, named `p2/VL0` etc. Host events use the host id
//!   as tid.
//! * A packet's residency in a buffer — `Arrived` to `TailLeft` — is a
//!   `"X"` complete event (a span). A packet that never left (wedged,
//!   dropped, or still buffered at freeze) gets a span stretched to the
//!   last timestamp in the dump, which makes stuck packets leap out of
//!   the timeline.
//! * Route decisions, blocks, stalls, drops, faults and triggers are
//!   `"i"` instants carrying their full payload (candidate options,
//!   verdicts, wait times) in `args`.
//! * Credit returns are `"C"` counter events, one counter per
//!   (port, VL), so downstream credit starvation is visible as a flat
//!   line.
//!
//! Timestamps are microseconds (the trace-event unit); simulated
//! nanoseconds divide by 1000 exactly into the format's fractional
//! microseconds.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::recorder::FlightDump;
use iba_core::{FlightEvent, Json, PortIndex, SwitchId, VirtualLane};
use std::collections::HashMap;

/// Microseconds with fractional nanoseconds, the trace-event unit.
fn us(at_ns: u64) -> f64 {
    at_ns as f64 / 1000.0
}

fn tid(port: PortIndex, vl: VirtualLane, vls: usize) -> u64 {
    port.index() as u64 * vls as u64 + vl.index() as u64
}

fn meta(pid: u64, tid: Option<u64>, what: &str, name: String) -> Json {
    let mut o = Json::obj([
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
        ("name", Json::from(what)),
        ("args", Json::obj([("name", name)])),
    ]);
    if let Some(t) = tid {
        o.push("tid", t);
    }
    o
}

fn instant(name: String, at_ns: u64, pid: u64, tid: u64, scope: &str, args: Json) -> Json {
    Json::obj([
        ("ph", Json::from("i")),
        ("name", Json::from(name)),
        ("ts", Json::from(us(at_ns))),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
        ("s", Json::from(scope)),
        ("args", args),
    ])
}

fn options_args(options: &iba_core::OptionOutcomes) -> Json {
    options
        .iter()
        .map(|o| {
            Json::from(format!(
                "p{}{}: {}",
                o.port.index(),
                if o.escape { " (escape)" } else { "" },
                o.verdict.name()
            ))
        })
        .collect()
}

/// Render `dump` as a complete Chrome trace-event JSON document.
pub fn perfetto_trace(dump: &FlightDump) -> Json {
    let hosts_pid = dump.switches as u64;
    let last_ns = dump.events.iter().map(|e| e.at_ns).max().unwrap_or(0);
    let mut events: Vec<Json> = Vec::new();

    // Process / thread naming metadata.
    let mut switches_seen: Vec<bool> = vec![false; dump.switches];
    let mut tids_seen: HashMap<(u64, u64), String> = HashMap::new();
    let mut host_events = false;
    for e in &dump.events {
        match e.sw {
            Some(s) => {
                if let Some(flag) = switches_seen.get_mut(s.index()) {
                    *flag = true;
                }
                if let (Some(p), Some(v)) = (e.ev.port(), e.ev.vl()) {
                    tids_seen
                        .entry((u64::from(s.0), tid(p, v, dump.vls)))
                        .or_insert_with(|| format!("p{}/VL{}", p.index(), v.index()));
                }
            }
            None => host_events = true,
        }
    }
    for (i, seen) in switches_seen.iter().enumerate() {
        if *seen {
            events.push(meta(i as u64, None, "process_name", format!("sw{i}")));
        }
    }
    if host_events || !dump.triggers.is_empty() {
        events.push(meta(hosts_pid, None, "process_name", "hosts".to_string()));
    }
    let mut named: Vec<_> = tids_seen.into_iter().collect();
    named.sort();
    for ((pid, t), name) in named {
        events.push(meta(pid, Some(t), "thread_name", name));
    }

    // Buffer-residency spans: Arrived opens, TailLeft closes.
    let mut open: HashMap<(u16, u64), (u64, PortIndex, VirtualLane)> = HashMap::new();
    let span = |sw: SwitchId,
                packet: u64,
                start_ns: u64,
                end_ns: u64,
                port: PortIndex,
                vl: VirtualLane,
                stuck: bool| {
        Json::obj([
            ("ph", Json::from("X")),
            (
                "name",
                Json::from(if stuck {
                    format!("pkt#{packet} (stuck)")
                } else {
                    format!("pkt#{packet}")
                }),
            ),
            ("ts", Json::from(us(start_ns))),
            ("dur", Json::from(us(end_ns.saturating_sub(start_ns)))),
            ("pid", Json::from(u64::from(sw.0))),
            ("tid", Json::from(tid(port, vl, dump.vls))),
            ("args", Json::obj([("packet", Json::from(packet))])),
        ])
    };

    for e in &dump.events {
        match (&e.ev, e.sw) {
            (FlightEvent::Arrived { packet, port, vl }, Some(sw)) => {
                open.insert((sw.0, packet.0), (e.at_ns, *port, *vl));
            }
            (FlightEvent::TailLeft { packet, .. }, Some(sw)) => {
                if let Some((start, port, vl)) = open.remove(&(sw.0, packet.0)) {
                    events.push(span(sw, packet.0, start, e.at_ns, port, vl, false));
                }
            }
            (
                FlightEvent::RouteDecision {
                    packet,
                    in_port,
                    vl,
                    out_port,
                    via_escape,
                    waited_ns,
                    options,
                    ..
                },
                Some(sw),
            ) => {
                events.push(instant(
                    format!(
                        "route pkt#{} -> p{}{}",
                        packet.0,
                        out_port.index(),
                        if *via_escape { " (escape)" } else { "" }
                    ),
                    e.at_ns,
                    u64::from(sw.0),
                    tid(*in_port, *vl, dump.vls),
                    "t",
                    Json::obj([
                        ("waited_ns", Json::from(*waited_ns)),
                        ("options", options_args(options)),
                    ]),
                ));
            }
            (
                FlightEvent::Blocked {
                    packet,
                    in_port,
                    vl,
                    options,
                },
                Some(sw),
            ) => {
                events.push(instant(
                    format!("blocked pkt#{}", packet.0),
                    e.at_ns,
                    u64::from(sw.0),
                    tid(*in_port, *vl, dump.vls),
                    "t",
                    Json::obj([("options", options_args(options))]),
                ));
            }
            (FlightEvent::CreditReturned { port, vl, credits }, Some(sw)) => {
                events.push(Json::obj([
                    ("ph", Json::from("C")),
                    (
                        "name",
                        Json::from(format!("credits p{}/VL{}", port.index(), vl.index())),
                    ),
                    ("ts", Json::from(us(e.at_ns))),
                    ("pid", Json::from(u64::from(sw.0))),
                    ("tid", Json::from(tid(*port, *vl, dump.vls))),
                    ("args", Json::obj([("credits", Json::from(*credits))])),
                ]));
            }
            (FlightEvent::Dropped { packet, cause }, sw) => {
                let pid = sw.map_or(hosts_pid, |s| u64::from(s.0));
                events.push(instant(
                    format!("DROP {} pkt#{}", cause.name(), packet.0),
                    e.at_ns,
                    pid,
                    0,
                    "p",
                    Json::obj([("cause", Json::from(cause.name()))]),
                ));
            }
            (
                FlightEvent::Stall {
                    port,
                    vl,
                    packet,
                    waited_ns,
                    class,
                },
                Some(sw),
            ) => {
                events.push(instant(
                    format!("STALL {} pkt#{}", class.name(), packet.0),
                    e.at_ns,
                    u64::from(sw.0),
                    tid(*port, *vl, dump.vls),
                    "t",
                    Json::obj([("waited_ns", Json::from(*waited_ns))]),
                ));
            }
            (FlightEvent::LinkDown { port }, Some(sw)) => {
                events.push(instant(
                    format!("LINK DOWN p{}", port.index()),
                    e.at_ns,
                    u64::from(sw.0),
                    0,
                    "p",
                    Json::object(),
                ));
            }
            (FlightEvent::LinkUp { port }, Some(sw)) => {
                events.push(instant(
                    format!("LINK UP p{}", port.index()),
                    e.at_ns,
                    u64::from(sw.0),
                    0,
                    "p",
                    Json::object(),
                ));
            }
            (FlightEvent::Injected { packet, host }, _) => {
                events.push(instant(
                    format!("inject pkt#{}", packet.0),
                    e.at_ns,
                    hosts_pid,
                    u64::from(host.0),
                    "t",
                    Json::object(),
                ));
            }
            (
                FlightEvent::Delivered {
                    packet,
                    host,
                    latency_ns,
                },
                _,
            ) => {
                events.push(instant(
                    format!("deliver pkt#{}", packet.0),
                    e.at_ns,
                    hosts_pid,
                    u64::from(host.0),
                    "t",
                    Json::obj([("latency_ns", Json::from(*latency_ns))]),
                ));
            }
            _ => {}
        }
    }

    // Packets still resident when the dump froze: stretch their spans to
    // the end of the dump so wedged buffers are visually obvious.
    let mut stuck: Vec<_> = open.into_iter().collect();
    stuck.sort();
    for ((sw, packet), (start, port, vl)) in stuck {
        events.push(span(SwitchId(sw), packet, start, last_ns, port, vl, true));
    }

    // Triggers, as global instants.
    for t in &dump.triggers {
        let pid = t.sw.map_or(hosts_pid, |s| u64::from(s.0));
        let mut args = Json::object();
        if let Some(p) = t.packet {
            args.push("packet", p.0);
        }
        events.push(instant(
            format!("TRIGGER {}", t.cause.name()),
            t.at_ns,
            pid,
            0,
            "g",
            args,
        ));
    }

    Json::obj([
        ("traceEvents", Json::Arr(events)),
        (
            "otherData",
            Json::obj([
                ("flight_schema_version", Json::from(dump.schema_version)),
                ("frozen", Json::from(dump.frozen)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, RecorderOpts, TriggerCause};
    use iba_core::{DropCause, HostId, PacketId, SimTime};

    fn sample_dump() -> FlightDump {
        let mut rec = FlightRecorder::new(RecorderOpts::default(), 2, 4, 2);
        rec.record(
            None,
            SimTime::from_ns(100),
            FlightEvent::Injected {
                packet: PacketId(1),
                host: HostId(0),
            },
        );
        rec.record(
            Some(SwitchId(0)),
            SimTime::from_ns(500),
            FlightEvent::Arrived {
                packet: PacketId(1),
                port: PortIndex(2),
                vl: VirtualLane(1),
            },
        );
        rec.record(
            Some(SwitchId(0)),
            SimTime::from_ns(900),
            FlightEvent::TailLeft {
                packet: PacketId(1),
                port: PortIndex(2),
                vl: VirtualLane(1),
            },
        );
        rec.record(
            Some(SwitchId(1)),
            SimTime::from_ns(1_000),
            FlightEvent::Arrived {
                packet: PacketId(2),
                port: PortIndex(0),
                vl: VirtualLane(0),
            },
        );
        rec.record(
            Some(SwitchId(1)),
            SimTime::from_ns(2_000),
            FlightEvent::Dropped {
                packet: PacketId(2),
                cause: DropCause::LinkDown,
            },
        );
        rec.trigger(
            SimTime::from_ns(2_000),
            TriggerCause::Drop,
            Some(SwitchId(1)),
            Some(PacketId(2)),
        );
        rec.dump(2, 4, 2)
    }

    #[test]
    fn trace_has_required_shape() {
        let doc = perfetto_trace(&sample_dump());
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!evs.is_empty());
        for e in evs {
            let ph = e.get("ph").and_then(Json::as_str).expect("ph");
            assert!(["M", "X", "i", "C"].contains(&ph), "unexpected phase {ph}");
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            assert!(e.get("name").and_then(Json::as_str).is_some());
            if ph != "M" {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
            }
            if ph == "X" {
                assert!(e.get("dur").and_then(Json::as_f64).is_some());
            }
        }
        // And the document survives a text round trip.
        let reparsed = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(
            reparsed
                .get("traceEvents")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            evs.len()
        );
    }

    #[test]
    fn matched_residency_becomes_a_span_and_unmatched_is_stuck() {
        let doc = perfetto_trace(&sample_dump());
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let spans: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let names: Vec<&str> = spans
            .iter()
            .map(|s| s.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert!(names.contains(&"pkt#1"));
        assert!(names.contains(&"pkt#2 (stuck)"), "names: {names:?}");
        // pkt#1's span: 0.5 µs to 0.9 µs on sw0, tid = 2*2+1.
        let p1 = spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some("pkt#1"))
            .unwrap();
        assert_eq!(p1.get("ts").and_then(Json::as_f64), Some(0.5));
        assert_eq!(p1.get("dur").and_then(Json::as_f64), Some(0.4));
        assert_eq!(p1.get("pid").and_then(Json::as_u64), Some(0));
        assert_eq!(p1.get("tid").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn trigger_and_drop_become_instants() {
        let doc = perfetto_trace(&sample_dump());
        let evs = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.iter().any(|n| n.starts_with("DROP link_down")));
        assert!(names.contains(&"TRIGGER drop"));
        let labels: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(labels.contains(&"sw0") && labels.contains(&"hosts"));
    }
}
