//! The simulator's side of the metrics plane.
//!
//! Two pieces live here:
//!
//! * [`EngineProfile`] / [`WorkerProfile`] — wall-clock profiling of
//!   the parallel engine: where each worker's time goes (running
//!   windows, waiting at the two barriers, ingesting mailboxes), how
//!   wide the conservative windows are, and how many events each
//!   window carries. Collected only when the builder armed
//!   `.metrics()`, and exported exclusively under the
//!   `profiling_` namespace — wall-clock numbers are *not* part of the
//!   deterministic outcome and are excluded from
//!   [`MetricsRegistry::digest`] by construction.
//! * `Network::metrics_registry` (in the coordinator) — the post-run
//!   fill of a [`MetricsRegistry`] from the deterministic run result,
//!   the per-class latency histograms, and the last telemetry
//!   occupancy snapshot; [`fill_run_metrics`] is the shared helper.
//!
//! ## The determinism boundary, concretely
//!
//! Everything recorded from simulated time (delivery counts, drop
//! causes, latency histograms, VL occupancy) is bit-identical across
//! queue backends and — for the parallel engine — across shard counts
//! above 1. Everything recorded from host time (barrier waits, run
//! times) and from the engine's *execution shape* (window widths,
//! events per window, mailbox traffic — which legitimately change with
//! the shard count) goes under [`iba_stats::PROFILING_PREFIX`].

use crate::stats::{latency_class_label, RunResult, StatsCollector};
use iba_core::Json;
use iba_stats::{LogHistogram, MetricsRegistry};

/// Wall-clock breakdown of one parallel worker thread (one chunk of
/// shards) across the whole run. All fields are host-time nanoseconds
/// or plain tallies; none participates in determinism digests.
#[derive(Clone, Debug, Default)]
pub struct WorkerProfile {
    /// Worker index (chunk index in shard order).
    pub worker: usize,
    /// Shards this worker drives.
    pub shards: usize,
    /// Nanoseconds spent executing windows (`run_window` + outbox
    /// flush).
    pub run_ns: u64,
    /// Nanoseconds spent waiting at barrier A (outboxes flushed).
    pub barrier_a_wait_ns: u64,
    /// Nanoseconds spent waiting at barrier B (ingests published).
    pub barrier_b_wait_ns: u64,
    /// Nanoseconds spent ingesting cross-shard mailboxes.
    pub ingest_ns: u64,
    /// Cross-shard messages this worker's shards ingested.
    pub mailbox_msgs: u64,
}

impl WorkerProfile {
    /// Total barrier-wait nanoseconds (both phases).
    pub fn barrier_wait_ns(&self) -> u64 {
        self.barrier_a_wait_ns + self.barrier_b_wait_ns
    }

    fn absorb(&mut self, other: &WorkerProfile) {
        self.shards = self.shards.max(other.shards);
        self.run_ns += other.run_ns;
        self.barrier_a_wait_ns += other.barrier_a_wait_ns;
        self.barrier_b_wait_ns += other.barrier_b_wait_ns;
        self.ingest_ns += other.ingest_ns;
        self.mailbox_msgs += other.mailbox_msgs;
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("worker", Json::from(self.worker)),
            ("shards", Json::from(self.shards)),
            ("run_ns", Json::from(self.run_ns)),
            ("barrier_a_wait_ns", Json::from(self.barrier_a_wait_ns)),
            ("barrier_b_wait_ns", Json::from(self.barrier_b_wait_ns)),
            ("ingest_ns", Json::from(self.ingest_ns)),
            ("mailbox_msgs", Json::from(self.mailbox_msgs)),
        ])
    }
}

/// Wall-clock and execution-shape profile of an engine run, collected
/// when the builder armed `.metrics()`.
///
/// For the serial engine this degenerates to a single worker with zero
/// windows and zero barrier time (there are no windows or barriers to
/// profile); the parallel engine fills every field. Successive runs on
/// the same network accumulate.
#[derive(Clone, Debug, Default)]
pub struct EngineProfile {
    /// Shard count of the run.
    pub shards: usize,
    /// Worker threads actually spawned (1 = inline/serial).
    pub workers: usize,
    /// Conservative windows executed.
    pub windows: u64,
    /// Wall-clock nanoseconds of the whole engine loop.
    pub wall_ns: u64,
    /// Distribution of conservative-window widths (simulated ns per
    /// window — a *shape* observable: it changes with the shard count).
    pub window_width_ns: LogHistogram,
    /// Distribution of fabric-wide events retired per window.
    pub events_per_window: LogHistogram,
    /// Total cross-shard mailbox messages exchanged.
    pub mailbox_msgs: u64,
    /// Per-worker wall-clock breakdown.
    pub worker_profiles: Vec<WorkerProfile>,
}

impl EngineProfile {
    /// Fraction of total worker wall-time spent waiting at barriers —
    /// the headline "where does parallel time go" number. 0.0 when
    /// nothing was profiled.
    pub fn barrier_wait_share(&self) -> f64 {
        let waited: u64 = self
            .worker_profiles
            .iter()
            .map(|w| w.barrier_wait_ns())
            .sum();
        let denom = self.wall_ns.saturating_mul(self.workers.max(1) as u64);
        if denom == 0 {
            0.0
        } else {
            waited as f64 / denom as f64
        }
    }

    /// Fold another profile fragment (e.g. a later `advance` call) into
    /// this one.
    pub(crate) fn absorb(&mut self, other: &EngineProfile) {
        self.shards = self.shards.max(other.shards);
        self.workers = self.workers.max(other.workers);
        self.windows += other.windows;
        self.wall_ns += other.wall_ns;
        self.window_width_ns.merge(&other.window_width_ns);
        self.events_per_window.merge(&other.events_per_window);
        self.mailbox_msgs += other.mailbox_msgs;
        for w in &other.worker_profiles {
            if let Some(mine) = self
                .worker_profiles
                .iter_mut()
                .find(|m| m.worker == w.worker)
            {
                mine.absorb(w);
            } else {
                self.worker_profiles.push(w.clone());
            }
        }
        self.worker_profiles.sort_by_key(|w| w.worker);
    }

    /// Record the whole profile into `reg`, every series under the
    /// `profiling_` namespace (excluded from determinism digests).
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.add("profiling_engine_shards", &[], self.shards as u64);
        reg.add("profiling_engine_workers", &[], self.workers as u64);
        reg.add("profiling_engine_windows_total", &[], self.windows);
        reg.add("profiling_engine_wall_ns_total", &[], self.wall_ns);
        reg.add(
            "profiling_engine_mailbox_msgs_total",
            &[],
            self.mailbox_msgs,
        );
        reg.merge_histogram(
            "profiling_engine_window_width_ns",
            &[],
            &self.window_width_ns,
        );
        reg.merge_histogram(
            "profiling_engine_events_per_window",
            &[],
            &self.events_per_window,
        );
        reg.set_gauge(
            "profiling_engine_barrier_wait_share",
            &[],
            self.barrier_wait_share(),
        );
        for w in &self.worker_profiles {
            let wl = w.worker.to_string();
            let labels: [(&str, &str); 1] = [("worker", wl.as_str())];
            reg.add("profiling_engine_worker_run_ns_total", &labels, w.run_ns);
            reg.add(
                "profiling_engine_worker_barrier_a_wait_ns_total",
                &labels,
                w.barrier_a_wait_ns,
            );
            reg.add(
                "profiling_engine_worker_barrier_b_wait_ns_total",
                &labels,
                w.barrier_b_wait_ns,
            );
            reg.add(
                "profiling_engine_worker_ingest_ns_total",
                &labels,
                w.ingest_ns,
            );
            reg.add(
                "profiling_engine_worker_mailbox_msgs_total",
                &labels,
                w.mailbox_msgs,
            );
        }
    }

    /// The shard-scaling JSON row the `metrics` experiment bin embeds
    /// in `results/metrics.json`: the headline shares plus compact
    /// distribution summaries.
    pub fn to_json(&self) -> Json {
        let hist_summary = |h: &LogHistogram| {
            if h.is_empty() {
                Json::obj([("count", Json::from(0u64))])
            } else {
                Json::obj([
                    ("count", Json::from(h.count())),
                    ("min", Json::from(h.min())),
                    ("p50", Json::from(h.quantile(0.5))),
                    ("p90", Json::from(h.quantile(0.9))),
                    ("p99", Json::from(h.quantile(0.99))),
                    ("max", Json::from(h.max())),
                ])
            }
        };
        Json::obj([
            ("shards", Json::from(self.shards)),
            ("workers", Json::from(self.workers)),
            ("windows", Json::from(self.windows)),
            ("wall_ns", Json::from(self.wall_ns)),
            ("barrier_wait_share", Json::from(self.barrier_wait_share())),
            ("mailbox_msgs", Json::from(self.mailbox_msgs)),
            ("window_width_ns", hist_summary(&self.window_width_ns)),
            ("events_per_window", hist_summary(&self.events_per_window)),
            (
                "worker_profiles",
                Json::arr(self.worker_profiles.iter().map(|w| w.to_json())),
            ),
        ])
    }
}

/// Fill `reg` with the deterministic (sim-time-domain) metrics of a
/// finished run: outcome counters from `result` and the latency
/// histograms (overall + per workload class) from the merged collector.
/// Everything recorded here must be bit-identical across queue backends
/// and shard counts — that is what the metrics determinism suite pins.
pub(crate) fn fill_run_metrics(
    reg: &mut MetricsRegistry,
    result: &RunResult,
    stats: &StatsCollector,
) {
    reg.add("iba_sim_generated_total", &[], result.generated);
    reg.add("iba_sim_injected_total", &[], result.injected);
    reg.add("iba_sim_delivered_total", &[], result.delivered);
    reg.add("iba_sim_source_drops_total", &[], result.source_drops);
    for (cause, n) in [
        ("link_down", result.drops_link_down),
        ("switch_down", result.drops_switch_down),
        ("corrupted", result.drops_corrupted),
    ] {
        reg.add("iba_sim_transit_drops_total", &[("cause", cause)], n);
    }
    reg.add(
        "iba_sim_forwards_total",
        &[("kind", "adaptive")],
        result.adaptive_forwards,
    );
    reg.add(
        "iba_sim_forwards_total",
        &[("kind", "escape")],
        result.escape_forwards,
    );
    reg.add(
        "iba_sim_order_violations_total",
        &[],
        result.order_violations,
    );
    reg.add("iba_sim_faults_total", &[], result.faults_injected);
    reg.add("iba_sim_resweeps_total", &[], result.resweeps);
    reg.add("iba_sim_fib_hits_total", &[], result.fib_hits);
    reg.add("iba_sim_fib_misses_total", &[], result.fib_misses);
    reg.add("iba_sim_events_total", &[], result.events);
    reg.set_gauge("iba_sim_delivered_ratio", &[], result.delivered_ratio);

    reg.merge_histogram("iba_sim_latency_ns", &[], stats.latency_histogram());
    for (idx, h) in stats.class_histograms().iter().enumerate() {
        if h.is_empty() {
            continue; // don't mint empty series for unused classes
        }
        let (mode, group) = latency_class_label(idx);
        reg.merge_histogram(
            "iba_sim_class_latency_ns",
            &[("mode", mode), ("group", group)],
            h,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::SimTime;
    use std::time::Duration;

    #[test]
    fn engine_profile_records_only_profiling_metrics() {
        let mut p = EngineProfile {
            shards: 4,
            workers: 2,
            windows: 10,
            wall_ns: 1_000,
            mailbox_msgs: 55,
            ..EngineProfile::default()
        };
        p.window_width_ns.record(200);
        p.events_per_window.record(64);
        p.worker_profiles.push(WorkerProfile {
            worker: 0,
            shards: 2,
            run_ns: 600,
            barrier_a_wait_ns: 100,
            barrier_b_wait_ns: 50,
            ingest_ns: 40,
            mailbox_msgs: 30,
        });
        let mut reg = MetricsRegistry::new();
        p.record_metrics(&mut reg);
        assert!(!reg.is_empty());
        // Every series the profile mints is profiling-namespace, so an
        // empty registry and one holding a full profile digest equal.
        assert_eq!(reg.digest(), MetricsRegistry::new().digest());
        assert!(reg.iter().all(|(name, _, _)| iba_stats::is_profiling(name)));
        // barrier share: (100+50) / (1000 * 2 workers)
        assert!((p.barrier_wait_share() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn engine_profile_absorb_accumulates() {
        let mut a = EngineProfile {
            shards: 2,
            workers: 1,
            windows: 3,
            wall_ns: 100,
            ..EngineProfile::default()
        };
        let mut b = EngineProfile {
            shards: 2,
            workers: 1,
            windows: 2,
            wall_ns: 50,
            ..EngineProfile::default()
        };
        b.worker_profiles.push(WorkerProfile {
            worker: 0,
            shards: 2,
            run_ns: 40,
            ..WorkerProfile::default()
        });
        a.absorb(&b);
        assert_eq!(a.windows, 5);
        assert_eq!(a.wall_ns, 150);
        assert_eq!(a.worker_profiles.len(), 1);
        assert_eq!(a.worker_profiles[0].run_ns, 40);
    }

    #[test]
    fn run_metrics_fill_is_deterministic_data_only() {
        let mut stats = StatsCollector::new(SimTime::from_ns(0), SimTime::from_ns(10_000), 4, 16);
        stats.on_generated(SimTime::from_ns(100));
        let result = stats.finish(4, 42, Duration::from_millis(1));
        let mut a = MetricsRegistry::new();
        fill_run_metrics(&mut a, &result, &stats);
        let mut b = MetricsRegistry::new();
        fill_run_metrics(&mut b, &result, &stats);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.counter("iba_sim_generated_total", &[]), Some(1));
        assert_eq!(a.counter("iba_sim_events_total", &[]), Some(42));
        // Nothing the fill records is profiling-namespace.
        assert!(a.iter().all(|(name, _, _)| !iba_stats::is_profiling(name)));
    }
}
