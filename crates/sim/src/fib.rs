//! Hot-entry FIB cache for the switch forwarding path.
//!
//! §4.1's interleaved forwarding table answers a full lookup in one
//! memory access; real switch pipelines still front it with a small
//! direct-mapped cache of recently routed destinations. This module
//! models that cache purely observationally: the routed options are
//! identical with and without it (entries are `Arc`-shared decodes of
//! the same table), so enabling it never changes simulation results —
//! it only produces the hit/miss telemetry
//! ([`crate::RunResult::fib_hits`] / [`crate::RunResult::fib_misses`])
//! that sizes how much routing-table bandwidth a hot-entry cache would
//! absorb. Disabled (the default) it is a single pointer-null check on
//! the hot path, like the flight recorder.

use iba_core::{Lid, SwitchId};
use iba_routing::RouteOptions;
use std::sync::Arc;

/// A direct-mapped per-switch route cache: `ways` slots per switch,
/// indexed by `dlid % ways`, tagged with the full DLID.
#[derive(Debug)]
pub(crate) struct FibCache {
    ways: usize,
    /// `num_switches * ways` slots; `None` = invalid.
    slots: Vec<Option<(Lid, Arc<RouteOptions>)>>,
}

impl FibCache {
    /// A cache with `ways` slots per switch (at least 1).
    pub(crate) fn new(num_switches: usize, ways: usize) -> FibCache {
        let ways = ways.max(1);
        FibCache {
            ways,
            slots: vec![None; num_switches * ways],
        }
    }

    #[inline]
    fn slot(&self, sw: SwitchId, dlid: Lid) -> usize {
        sw.index() * self.ways + dlid.raw() as usize % self.ways
    }

    /// The cached route of `(sw, dlid)`, if resident.
    #[inline]
    pub(crate) fn lookup(&self, sw: SwitchId, dlid: Lid) -> Option<Arc<RouteOptions>> {
        match &self.slots[self.slot(sw, dlid)] {
            Some((tag, route)) if *tag == dlid => Some(route.clone()),
            _ => None,
        }
    }

    /// Fill the slot of `(sw, dlid)`, evicting whatever mapped there.
    #[inline]
    pub(crate) fn insert(&mut self, sw: SwitchId, dlid: Lid, route: Arc<RouteOptions>) {
        let i = self.slot(sw, dlid);
        self.slots[i] = Some((dlid, route));
    }

    /// Invalidate everything — called whenever a table swap (re-sweep
    /// installation or primary reinstatement) makes cached decodes
    /// stale.
    pub(crate) fn flush(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::PortIndex;
    use iba_routing::AdaptiveOptions;

    fn route(escape: u8) -> Arc<RouteOptions> {
        Arc::new(RouteOptions {
            adaptive: AdaptiveOptions::new(),
            escape: PortIndex(escape),
        })
    }

    #[test]
    fn direct_mapped_lookup_insert_and_conflict_eviction() {
        let mut fib = FibCache::new(2, 4);
        assert!(fib.lookup(SwitchId(0), Lid(5)).is_none());
        fib.insert(SwitchId(0), Lid(5), route(1));
        assert_eq!(
            fib.lookup(SwitchId(0), Lid(5)).unwrap().escape,
            PortIndex(1)
        );
        // Same slot on another switch is independent.
        assert!(fib.lookup(SwitchId(1), Lid(5)).is_none());
        // Lid 9 maps to the same slot (9 % 4 == 5 % 4): conflict evicts.
        fib.insert(SwitchId(0), Lid(9), route(2));
        assert!(fib.lookup(SwitchId(0), Lid(5)).is_none());
        assert_eq!(
            fib.lookup(SwitchId(0), Lid(9)).unwrap().escape,
            PortIndex(2)
        );
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut fib = FibCache::new(1, 2);
        fib.insert(SwitchId(0), Lid(0), route(1));
        fib.insert(SwitchId(0), Lid(1), route(2));
        fib.flush();
        assert!(fib.lookup(SwitchId(0), Lid(0)).is_none());
        assert!(fib.lookup(SwitchId(0), Lid(1)).is_none());
    }
}
