//! The fabric flight recorder.
//!
//! A [`FlightRecorder`] keeps a bounded ring of structured
//! [`FlightEvent`]s per switch (plus one host-side ring), cheap enough
//! to leave on: recording is a couple of array writes, events are
//! fixed-size values ([`iba_core::events`]), and the rings are
//! preallocated and overwrite their oldest entries. The payoff is a
//! debuggable fabric — when a run wedges or a packet stalls, the last
//! few thousand decisions around the anomaly are right there, with the
//! full candidate-option set of every routing decision and why each
//! candidate was rejected.
//!
//! **Triggers** freeze the recorder on anomaly — a packet drop, an
//! end-to-end latency above a configured threshold, or the stall
//! watchdog's `SuspectedWedge` verdict — so the window *around* the
//! anomaly survives instead of being overwritten by post-mortem
//! traffic. The frozen state is then exported as a versioned JSON-lines
//! [`FlightDump`] or a Perfetto timeline ([`crate::perfetto`]).
//!
//! **The stall watchdog** makes the paper's deadlock-freedom invariant
//! observable. It rides the ordinary event queue (like the telemetry
//! probe, so instrumented runs stay bit-identical across `DesQueue`
//! backends) and periodically checks every (switch, input port, VL)
//! buffer for forward progress. A buffer that has held packets for
//! longer than `stall_after_ns` is *stalled*; the watchdog then looks
//! at the stalled head packet's escape path and distinguishes:
//!
//! * [`StallClass::EscapeDraining`] — the escape port is alive and
//!   shows activity (streaming right now, credits available, or a
//!   credit return within the stall window). The invariant says this
//!   resolves; the event is informational.
//! * [`StallClass::SuspectedWedge`] — the escape path itself shows no
//!   sign of life (dead link, or no credits and none returned for a
//!   whole stall window). This should be impossible in a healthy
//!   fabric, so it fires a trigger and freezes the recorder.
//!
//! Clean saturated runs produce no false positives because every
//! forward and every buffer drain refreshes the progress clock.

use crate::trace::Tracer;
use iba_core::{
    FlightEvent, Json, OptionOutcomes, PacketId, PortIndex, SimTime, StallClass, StampedEvent,
    SwitchId, VirtualLane, FLIGHT_SCHEMA_VERSION,
};

/// Stall-watchdog configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogOpts {
    /// Cadence of the forward-progress check, nanoseconds.
    pub check_every_ns: u64,
    /// A buffer is *stalled* once it has made no forward progress for
    /// this long, nanoseconds. Must comfortably exceed the routing
    /// pipeline delay and one serialization time; the default (25 µs)
    /// is thousands of times both.
    pub stall_after_ns: u64,
}

impl Default for WatchdogOpts {
    fn default() -> WatchdogOpts {
        WatchdogOpts {
            check_every_ns: 5_000,
            stall_after_ns: 25_000,
        }
    }
}

/// Flight-recorder configuration, as accepted by
/// `NetworkBuilder::recorder`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderOpts {
    /// Ring capacity per switch, in events. The host-side ring (inject,
    /// deliver, source drops) gets four times this.
    pub capacity_per_switch: usize,
    /// Freeze the recorder when a packet is dropped.
    pub trigger_on_drop: bool,
    /// Freeze the recorder when a delivered packet's end-to-end latency
    /// reaches this many nanoseconds.
    pub latency_threshold_ns: Option<u64>,
    /// Arm the stall watchdog (`None` disables it — no check events are
    /// scheduled).
    pub watchdog: Option<WatchdogOpts>,
}

impl Default for RecorderOpts {
    /// 1024 events per switch, drop trigger on, no latency trigger,
    /// watchdog on with default thresholds.
    fn default() -> RecorderOpts {
        RecorderOpts {
            capacity_per_switch: 1024,
            trigger_on_drop: true,
            latency_threshold_ns: None,
            watchdog: Some(WatchdogOpts::default()),
        }
    }
}

/// What froze the recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerCause {
    /// A packet died.
    Drop,
    /// A delivered packet's latency reached the configured threshold.
    LatencyThreshold,
    /// The stall watchdog suspects the deadlock-freedom invariant is
    /// violated.
    SuspectedWedge,
}

impl TriggerCause {
    /// Stable lower-snake name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            TriggerCause::Drop => "drop",
            TriggerCause::LatencyThreshold => "latency_threshold",
            TriggerCause::SuspectedWedge => "suspected_wedge",
        }
    }

    /// Inverse of [`TriggerCause::name`].
    pub fn from_name(name: &str) -> Option<TriggerCause> {
        [
            TriggerCause::Drop,
            TriggerCause::LatencyThreshold,
            TriggerCause::SuspectedWedge,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// One fired trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// When it fired, nanoseconds.
    pub at_ns: u64,
    /// Why.
    pub cause: TriggerCause,
    /// The switch involved, if any.
    pub sw: Option<SwitchId>,
    /// The packet involved, if any.
    pub packet: Option<PacketId>,
}

/// A bounded overwrite-oldest event ring.
struct Ring {
    buf: Vec<(u64, u64, FlightEvent)>, // (seq, at_ns, event)
    capacity: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    /// Events overwritten (lost) so far.
    overwritten: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            head: 0,
            overwritten: 0,
        }
    }

    fn push(&mut self, seq: u64, at_ns: u64, ev: FlightEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push((seq, at_ns, ev));
        } else {
            self.buf[self.head] = (seq, at_ns, ev);
            self.head = (self.head + 1) % self.capacity;
            self.overwritten += 1;
        }
    }

    /// Entries oldest-first.
    fn iter(&self) -> impl Iterator<Item = &(u64, u64, FlightEvent)> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// The per-run flight recorder. Owned by the `Network` (as
/// `Option<Box<FlightRecorder>>`, so disabled runs pay one null check
/// per hook); drained into a [`FlightDump`] after the run.
pub struct FlightRecorder {
    opts: RecorderOpts,
    rings: Vec<Ring>,
    host_ring: Ring,
    seq: u64,
    frozen: bool,
    triggers: Vec<Trigger>,
    /// Per (switch, input port, VL): last time the buffer made forward
    /// progress (forwarded a packet, drained empty, or went from empty
    /// to occupied — the head packet's wait clock starts there).
    last_progress: Vec<SimTime>,
    /// Per (switch, output port): last credit return seen.
    last_credit_return: Vec<Option<SimTime>>,
    /// Per (switch, input port, VL): dedup signature of the last
    /// `Blocked` event logged, so repeated identical arbitration
    /// failures log once per *reason change*, not once per pass.
    blocked_sig: Vec<u64>,
    /// Per (switch, input port, VL): the last stall class logged for the
    /// current stall episode (`None` between episodes).
    stall_logged: Vec<Option<StallClass>>,
    nports: usize,
    nvls: usize,
}

impl FlightRecorder {
    /// A recorder for a fabric of `switches` switches with `ports` ports
    /// and `vls` data VLs each.
    pub fn new(opts: RecorderOpts, switches: usize, ports: usize, vls: usize) -> FlightRecorder {
        FlightRecorder {
            opts,
            rings: (0..switches)
                .map(|_| Ring::new(opts.capacity_per_switch))
                .collect(),
            host_ring: Ring::new(opts.capacity_per_switch.saturating_mul(4)),
            seq: 0,
            frozen: false,
            triggers: Vec::new(),
            last_progress: vec![SimTime::ZERO; switches * ports * vls],
            last_credit_return: vec![None; switches * ports],
            blocked_sig: vec![0; switches * ports * vls],
            stall_logged: vec![None; switches * ports * vls],
            nports: ports,
            nvls: vls,
        }
    }

    /// The configuration the recorder was armed with.
    pub fn opts(&self) -> &RecorderOpts {
        &self.opts
    }

    /// Whether a trigger has frozen the recorder.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Triggers fired so far (recording freezes at the first).
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    #[inline]
    fn pv(&self, sw: SwitchId, port: usize, vl: usize) -> usize {
        (sw.index() * self.nports + port) * self.nvls + vl
    }

    /// Log one event against `sw`'s ring (`None` → the host ring).
    /// No-op once frozen.
    pub fn record(&mut self, sw: Option<SwitchId>, at: SimTime, ev: FlightEvent) {
        if self.frozen {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        let ring = match sw {
            Some(s) => &mut self.rings[s.index()],
            None => &mut self.host_ring,
        };
        ring.push(seq, at.as_ns(), ev);
    }

    /// Fire a trigger: log it and freeze the rings so the window around
    /// the anomaly survives. Later triggers are still listed (bounded)
    /// but record nothing further.
    pub fn trigger(
        &mut self,
        at: SimTime,
        cause: TriggerCause,
        sw: Option<SwitchId>,
        packet: Option<PacketId>,
    ) {
        if self.triggers.len() < 64 {
            self.triggers.push(Trigger {
                at_ns: at.as_ns(),
                cause,
                sw,
                packet,
            });
        }
        self.frozen = true;
    }

    /// Whether the drop trigger is armed (and the recorder still live).
    #[inline]
    pub fn wants_drop_trigger(&self) -> bool {
        self.opts.trigger_on_drop && !self.frozen
    }

    /// Whether `latency_ns` trips the latency trigger.
    #[inline]
    pub fn wants_latency_trigger(&self, latency_ns: u64) -> bool {
        !self.frozen
            && self
                .opts
                .latency_threshold_ns
                .is_some_and(|t| latency_ns >= t)
    }

    /// Note forward progress on (switch, input port, VL): a packet was
    /// forwarded out of the buffer, the buffer drained empty, or a
    /// packet arrived into an empty buffer (starting a new wait clock).
    #[inline]
    pub fn note_progress(&mut self, sw: SwitchId, port: usize, vl: usize, now: SimTime) {
        let i = self.pv(sw, port, vl);
        self.last_progress[i] = now;
        self.blocked_sig[i] = 0;
        self.stall_logged[i] = None;
    }

    /// Note a credit return arriving at (switch, output port).
    #[inline]
    pub fn note_credit_return(&mut self, sw: SwitchId, port: PortIndex, now: SimTime) {
        self.last_credit_return[sw.index() * self.nports + port.index()] = Some(now);
    }

    /// Nanoseconds the (switch, input port, VL) buffer has gone without
    /// forward progress.
    #[inline]
    pub fn stalled_for(&self, sw: SwitchId, port: usize, vl: usize, now: SimTime) -> u64 {
        now.since(self.last_progress[self.pv(sw, port, vl)])
    }

    /// Last credit return seen at (switch, output port), if any.
    #[inline]
    pub fn last_credit_return_at(&self, sw: SwitchId, port: PortIndex) -> Option<SimTime> {
        self.last_credit_return[sw.index() * self.nports + port.index()]
    }

    /// Log a `Blocked` event unless an identical one (same packet, same
    /// verdict multiset) was the last thing logged for this buffer.
    pub fn record_blocked(
        &mut self,
        sw: SwitchId,
        at: SimTime,
        in_port: usize,
        vl: usize,
        packet: PacketId,
        options: &OptionOutcomes,
    ) {
        if self.frozen {
            return;
        }
        // Cheap order-independent signature of (packet, outcomes).
        let mut sig = PacketId(packet.0).stable_hash() | 1;
        for o in options.iter() {
            sig = sig
                .wrapping_add(PacketId(((o.port.0 as u64) << 8) | o.verdict as u64).stable_hash());
        }
        let i = self.pv(sw, in_port, vl);
        if self.blocked_sig[i] == sig {
            return;
        }
        self.blocked_sig[i] = sig;
        self.record(
            Some(sw),
            at,
            FlightEvent::Blocked {
                packet,
                in_port: PortIndex(in_port as u8),
                vl: VirtualLane(vl as u8),
                options: options.clone(),
            },
        );
    }

    /// Whether a `Stall` event with `class` should be logged for this
    /// buffer now (once per class per stall episode), and mark it
    /// logged.
    pub fn should_log_stall(
        &mut self,
        sw: SwitchId,
        port: usize,
        vl: usize,
        class: StallClass,
    ) -> bool {
        let i = self.pv(sw, port, vl);
        if self.stall_logged[i] == Some(class) {
            return false;
        }
        self.stall_logged[i] = Some(class);
        true
    }

    /// Drain the rings into an exportable dump. Events come out in
    /// global sequence order (recording order), which is also
    /// deterministic across `DesQueue` backends.
    pub fn dump(&self, switches: usize, ports: usize, vls: usize) -> FlightDump {
        let mut events: Vec<StampedEvent> = Vec::new();
        for (si, ring) in self.rings.iter().enumerate() {
            events.extend(ring.iter().map(|(seq, at_ns, ev)| StampedEvent {
                seq: *seq,
                at_ns: *at_ns,
                sw: Some(SwitchId(si as u16)),
                ev: ev.clone(),
            }));
        }
        events.extend(self.host_ring.iter().map(|(seq, at_ns, ev)| StampedEvent {
            seq: *seq,
            at_ns: *at_ns,
            sw: None,
            ev: ev.clone(),
        }));
        events.sort_by_key(|e| e.seq);
        let overwritten =
            self.rings.iter().map(|r| r.overwritten).sum::<u64>() + self.host_ring.overwritten;
        FlightDump {
            schema_version: FLIGHT_SCHEMA_VERSION,
            switches,
            ports,
            vls,
            frozen: self.frozen,
            overwritten_events: overwritten,
            triggers: self.triggers.clone(),
            events,
        }
    }
}

/// A complete, self-describing flight-recorder export.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightDump {
    /// [`FLIGHT_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Fabric shape: number of switches…
    pub switches: usize,
    /// …ports per switch…
    pub ports: usize,
    /// …and data VLs per port.
    pub vls: usize,
    /// Whether a trigger froze the recorder before the run ended.
    pub frozen: bool,
    /// Ring-overwritten (lost) events across all rings.
    pub overwritten_events: u64,
    /// Every fired trigger.
    pub triggers: Vec<Trigger>,
    /// Surviving events, in global sequence order.
    pub events: Vec<StampedEvent>,
}

impl FlightDump {
    /// Serialize as JSON lines: one `header` line, one `trigger` line
    /// per trigger, one `event` line per event. Every line is a
    /// self-describing object with a `"kind"` member, so consumers can
    /// skip kinds they don't know.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Json::obj([
            ("kind", Json::from("header")),
            ("flight_schema_version", Json::from(self.schema_version)),
            ("switches", Json::from(self.switches)),
            ("ports", Json::from(self.ports)),
            ("vls", Json::from(self.vls)),
            ("frozen", Json::from(self.frozen)),
            ("overwritten_events", Json::from(self.overwritten_events)),
        ]);
        out.push_str(&header.to_string_compact());
        out.push('\n');
        for t in &self.triggers {
            let line = Json::obj([
                ("kind", Json::from("trigger")),
                ("at_ns", Json::from(t.at_ns)),
                ("cause", Json::from(t.cause.name())),
                ("sw", Json::from(t.sw.map(|s| u64::from(s.0)))),
                ("packet", Json::from(t.packet.map(|p| p.0))),
            ]);
            out.push_str(&line.to_string_compact());
            out.push('\n');
        }
        for e in &self.events {
            let mut line = Json::obj([("kind", "event")]);
            if let (Json::Obj(out_members), Json::Obj(ev_members)) = (&mut line, e.to_json()) {
                out_members.extend(ev_members);
            }
            out.push_str(&line.to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Inverse of [`FlightDump::to_jsonl`]. Fails with a line-numbered
    /// message on malformed input or an unknown schema version; unknown
    /// line kinds are skipped (forward compatibility).
    pub fn from_jsonl(text: &str) -> Result<FlightDump, String> {
        let mut dump: Option<FlightDump> = None;
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing \"kind\"", ln + 1))?;
            match kind {
                "header" => {
                    let version = v
                        .get("flight_schema_version")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("line {}: header without version", ln + 1))?;
                    if version != u64::from(FLIGHT_SCHEMA_VERSION) {
                        return Err(format!(
                            "unsupported flight schema version {version} (this tool reads \
                             {FLIGHT_SCHEMA_VERSION})"
                        ));
                    }
                    let field = |k: &str| {
                        v.get(k)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("line {}: header missing \"{k}\"", ln + 1))
                    };
                    dump = Some(FlightDump {
                        schema_version: version as u32,
                        switches: field("switches")? as usize,
                        ports: field("ports")? as usize,
                        vls: field("vls")? as usize,
                        frozen: v
                            .get("frozen")
                            .and_then(Json::as_bool)
                            .ok_or_else(|| format!("line {}: header missing \"frozen\"", ln + 1))?,
                        overwritten_events: field("overwritten_events")?,
                        triggers: Vec::new(),
                        events: Vec::new(),
                    });
                }
                "trigger" => {
                    let d = dump
                        .as_mut()
                        .ok_or_else(|| format!("line {}: trigger before header", ln + 1))?;
                    let cause = v
                        .get("cause")
                        .and_then(Json::as_str)
                        .and_then(TriggerCause::from_name)
                        .ok_or_else(|| format!("line {}: bad trigger cause", ln + 1))?;
                    d.triggers.push(Trigger {
                        at_ns: v
                            .get("at_ns")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("line {}: trigger missing at_ns", ln + 1))?,
                        cause,
                        sw: match v.get("sw") {
                            Some(Json::Null) | None => None,
                            Some(s) => {
                                Some(SwitchId(
                                    u16::try_from(s.as_u64().ok_or_else(|| {
                                        format!("line {}: bad trigger sw", ln + 1)
                                    })?)
                                    .map_err(|_| format!("line {}: bad trigger sw", ln + 1))?,
                                ))
                            }
                        },
                        packet: match v.get("packet") {
                            Some(Json::Null) | None => None,
                            Some(p) => {
                                Some(PacketId(p.as_u64().ok_or_else(|| {
                                    format!("line {}: bad trigger packet", ln + 1)
                                })?))
                            }
                        },
                    });
                }
                "event" => {
                    let d = dump
                        .as_mut()
                        .ok_or_else(|| format!("line {}: event before header", ln + 1))?;
                    d.events.push(
                        StampedEvent::from_json(&v)
                            .ok_or_else(|| format!("line {}: malformed event", ln + 1))?,
                    );
                }
                _ => {} // unknown kinds are skipped
            }
        }
        dump.ok_or_else(|| "no header line found".into())
    }

    /// Journeys reconstructed per packet are a concern of the query
    /// layer (`iba-trace`); here we only expose the raw event list plus
    /// the convenience filter the tests use.
    pub fn events_for_packet(&self, id: PacketId) -> Vec<&StampedEvent> {
        self.events
            .iter()
            .filter(|e| e.ev.packet() == Some(id))
            .collect()
    }
}

/// The watchdog's stall classification, factored out for unit testing.
///
/// Inputs describe the stalled head packet's *escape* path: the paper's
/// invariant is that escape queues always drain, so a stall is benign
/// exactly when the escape path still shows signs of life.
pub fn classify_stall(
    escape_link_up: bool,
    escape_streaming: bool,
    escape_credits_ok: bool,
    ns_since_escape_credit_return: Option<u64>,
    stall_after_ns: u64,
) -> StallClass {
    if !escape_link_up {
        // The escape path is severed: nothing guarantees draining.
        return StallClass::SuspectedWedge;
    }
    if escape_streaming || escape_credits_ok {
        // The escape output is moving bytes right now, or could accept
        // the packet at the next arbitration pass.
        return StallClass::EscapeDraining;
    }
    match ns_since_escape_credit_return {
        // Credits trickled back recently: the downstream escape buffer
        // is draining, just slower than the offered load.
        Some(ns) if ns < stall_after_ns => StallClass::EscapeDraining,
        // No credits, none returned for a whole stall window, link idle:
        // the escape path shows no sign of life.
        _ => StallClass::SuspectedWedge,
    }
}

/// Bundles the references a `Network` hands back after a recorded run.
pub struct RecorderHandles<'a> {
    /// The recorder itself.
    pub recorder: &'a FlightRecorder,
    /// The journey tracer, if also armed.
    pub tracer: Option<&'a Tracer>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{DropCause, HostId};

    fn ev(n: u64) -> FlightEvent {
        FlightEvent::TailLeft {
            packet: PacketId(n),
            port: PortIndex(0),
            vl: VirtualLane(0),
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut rec = FlightRecorder::new(
            RecorderOpts {
                capacity_per_switch: 4,
                ..RecorderOpts::default()
            },
            1,
            2,
            1,
        );
        for i in 0..10 {
            rec.record(Some(SwitchId(0)), SimTime::from_ns(i), ev(i));
        }
        let dump = rec.dump(1, 2, 1);
        assert_eq!(dump.events.len(), 4);
        assert_eq!(dump.overwritten_events, 6);
        // Oldest-first, and the oldest surviving entry is seq 6.
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn trigger_freezes_recording() {
        let mut rec = FlightRecorder::new(RecorderOpts::default(), 1, 2, 1);
        rec.record(Some(SwitchId(0)), SimTime::from_ns(1), ev(1));
        rec.trigger(
            SimTime::from_ns(2),
            TriggerCause::Drop,
            Some(SwitchId(0)),
            Some(PacketId(1)),
        );
        rec.record(Some(SwitchId(0)), SimTime::from_ns(3), ev(2));
        let dump = rec.dump(1, 2, 1);
        assert!(dump.frozen);
        assert_eq!(dump.events.len(), 1, "post-trigger events must not record");
        assert_eq!(dump.triggers.len(), 1);
        assert_eq!(dump.triggers[0].cause, TriggerCause::Drop);
    }

    #[test]
    fn blocked_events_dedup_by_reason_set() {
        let mut rec = FlightRecorder::new(RecorderOpts::default(), 1, 2, 1);
        let mut opts = OptionOutcomes::new();
        opts.push(iba_core::OptionOutcome {
            port: PortIndex(1),
            escape: true,
            verdict: iba_core::OptionVerdict::NoEscapeCredit,
        });
        for _ in 0..5 {
            rec.record_blocked(SwitchId(0), SimTime::from_ns(10), 0, 0, PacketId(7), &opts);
        }
        assert_eq!(rec.dump(1, 2, 1).events.len(), 1, "identical blocks dedup");
        // A different reason set logs again.
        opts[0].verdict = iba_core::OptionVerdict::LinkBusy;
        rec.record_blocked(SwitchId(0), SimTime::from_ns(11), 0, 0, PacketId(7), &opts);
        assert_eq!(rec.dump(1, 2, 1).events.len(), 2);
        // Progress resets the dedup signature: the same reason logs anew.
        opts[0].verdict = iba_core::OptionVerdict::NoEscapeCredit;
        rec.note_progress(SwitchId(0), 0, 0, SimTime::from_ns(12));
        rec.record_blocked(SwitchId(0), SimTime::from_ns(13), 0, 0, PacketId(7), &opts);
        assert_eq!(rec.dump(1, 2, 1).events.len(), 3);
    }

    #[test]
    fn stall_classifier_matrix() {
        use StallClass::*;
        // Dead escape link: always a suspected wedge.
        assert_eq!(
            classify_stall(false, false, true, None, 1000),
            SuspectedWedge
        );
        // Streaming or credit-feasible escape: draining.
        assert_eq!(
            classify_stall(true, true, false, None, 1000),
            EscapeDraining
        );
        assert_eq!(
            classify_stall(true, false, true, None, 1000),
            EscapeDraining
        );
        // Idle, no credits, but a recent return: draining.
        assert_eq!(
            classify_stall(true, false, false, Some(999), 1000),
            EscapeDraining
        );
        // Idle, no credits, return too old or never seen: wedge.
        assert_eq!(
            classify_stall(true, false, false, Some(1000), 1000),
            SuspectedWedge
        );
        assert_eq!(
            classify_stall(true, false, false, None, 1000),
            SuspectedWedge
        );
    }

    #[test]
    fn stall_logging_is_once_per_class_per_episode() {
        let mut rec = FlightRecorder::new(RecorderOpts::default(), 1, 2, 1);
        assert!(rec.should_log_stall(SwitchId(0), 0, 0, StallClass::EscapeDraining));
        assert!(!rec.should_log_stall(SwitchId(0), 0, 0, StallClass::EscapeDraining));
        // Escalation to a new class logs again.
        assert!(rec.should_log_stall(SwitchId(0), 0, 0, StallClass::SuspectedWedge));
        assert!(!rec.should_log_stall(SwitchId(0), 0, 0, StallClass::SuspectedWedge));
        // Progress ends the episode.
        rec.note_progress(SwitchId(0), 0, 0, SimTime::from_ns(5));
        assert!(rec.should_log_stall(SwitchId(0), 0, 0, StallClass::SuspectedWedge));
    }

    #[test]
    fn dump_round_trips_through_jsonl() {
        let mut rec = FlightRecorder::new(RecorderOpts::default(), 2, 3, 2);
        rec.record(
            None,
            SimTime::from_ns(5),
            FlightEvent::Injected {
                packet: PacketId(1),
                host: HostId(0),
            },
        );
        rec.record(
            Some(SwitchId(1)),
            SimTime::from_ns(9),
            FlightEvent::Arrived {
                packet: PacketId(1),
                port: PortIndex(2),
                vl: VirtualLane(0),
            },
        );
        rec.record(
            Some(SwitchId(1)),
            SimTime::from_ns(40),
            FlightEvent::Dropped {
                packet: PacketId(1),
                cause: DropCause::LinkDown,
            },
        );
        rec.trigger(
            SimTime::from_ns(40),
            TriggerCause::Drop,
            Some(SwitchId(1)),
            Some(PacketId(1)),
        );
        let dump = rec.dump(2, 3, 2);
        let text = dump.to_jsonl();
        let back = FlightDump::from_jsonl(&text).expect("parse back");
        assert_eq!(back, dump);
        assert_eq!(back.events_for_packet(PacketId(1)).len(), 3);
    }

    #[test]
    fn jsonl_reader_rejects_garbage_and_wrong_versions() {
        assert!(FlightDump::from_jsonl("").is_err());
        assert!(FlightDump::from_jsonl("{\"kind\":\"event\"}").is_err());
        assert!(FlightDump::from_jsonl("not json").is_err());
        let wrong = r#"{"kind":"header","flight_schema_version":999,"switches":1,"ports":1,"vls":1,"frozen":false,"overwritten_events":0}"#;
        let err = FlightDump::from_jsonl(wrong).unwrap_err();
        assert!(err.contains("version"), "got: {err}");
    }
}
