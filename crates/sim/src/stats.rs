//! Measurement collection and the per-run result.
//!
//! The paper reports two quantities per simulation point (§5.1):
//!
//! * **average packet latency** — "the elapsed time between the
//!   generation of a packet at the source host until it is delivered at
//!   the destination end-node" (footnote 4), in nanoseconds;
//! * **accepted traffic** — "the amount of information delivered by the
//!   network per time unit", in bytes/ns/switch.
//!
//! Latency is averaged over packets *generated inside* the measurement
//! window (after warm-up) and delivered before the horizon; accepted
//! traffic counts all bytes delivered inside the window.

use iba_core::{
    DropCause, HostId, Json, Lid, Packet, Pow2Histogram, RoutingMode, ServiceLevel, SimTime,
};
use iba_stats::LogHistogram;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A latency histogram with power-of-two buckets: bucket `i` counts
/// samples in `[2^i, 2^(i+1))` nanoseconds (bucket 0 also holds 0 ns).
///
/// Since the primitives moved to `iba-core` (the telemetry layer shares
/// them), this is the shared [`Pow2Histogram`] under its historical
/// name.
pub type LatencyHistogram = Pow2Histogram;

/// Number of per-workload-class latency histograms a collector keeps:
/// 2 routing modes × [`SOURCE_GROUPS`] source groups.
pub const LATENCY_CLASSES: usize = 2 * SOURCE_GROUPS;

/// Number of equal host-index ranges the sources are grouped into for
/// per-class latency (a stand-in for per-tenant accounting: group
/// membership is a pure function of the host index, so it is identical
/// across shard layouts and queue backends).
pub const SOURCE_GROUPS: usize = 4;

/// The `(mode, source_group)` labels of latency class `idx`
/// (`idx < LATENCY_CLASSES`) — what the metrics registry stamps on each
/// class histogram.
pub fn latency_class_label(idx: usize) -> (&'static str, &'static str) {
    let mode = if idx < SOURCE_GROUPS {
        "adaptive"
    } else {
        "deterministic"
    };
    let group = ["g0", "g1", "g2", "g3"][idx % SOURCE_GROUPS];
    (mode, group)
}

/// Latency class of a delivered packet: routing mode (from the DLID's
/// low bit, as everywhere else) × the source's host-index group.
#[inline]
fn latency_class_of(packet: &Packet, num_hosts: usize) -> usize {
    let mode_off = if packet.mode() == RoutingMode::Adaptive {
        0
    } else {
        SOURCE_GROUPS
    };
    let group = (packet.src.index() * SOURCE_GROUPS / num_hosts).min(SOURCE_GROUPS - 1);
    mode_off + group
}

/// Live accumulator updated by the simulator.
#[derive(Debug)]
pub struct StatsCollector {
    window_start: SimTime,
    window_end: SimTime,
    /// Packets generated (all time / inside window).
    pub generated: u64,
    generated_window: u64,
    /// Packets injected into the fabric (left the source queue).
    pub injected: u64,
    /// Packets delivered (all time).
    pub delivered: u64,
    delivered_bytes_window: u64,
    latency_sum_ns: u128,
    latency_max_ns: u64,
    latency_count: u64,
    /// End-to-end latency of measured packets, log-linear buckets
    /// (bounded relative quantile error) — the source of the
    /// p50/p90/p99/p999 fields of [`RunResult`].
    latency_hist: LogHistogram,
    /// Per workload-class latency: indexed by
    /// `mode × source-group` (see [`latency_class_label`]).
    class_hists: Vec<LogHistogram>,
    /// Host count, for the source-group mapping of `class_hists`.
    num_hosts: usize,
    hops_sum: u64,
    escape_forwards: u64,
    adaptive_forwards: u64,
    max_host_queue: usize,
    /// Packets discarded at full source queues (finite-queue mode).
    pub source_drops: u64,
    /// Per (src, DLID, SL) flow order tracker.
    last_det_seq: OrderTracker,
    /// Number of deterministic packets delivered out of order.
    pub order_violations: u64,
    /// Number of deterministic packets delivered twice (the exact
    /// duplicate-of-latest case; an older duplicate is indistinguishable
    /// from an order violation and counts there).
    pub duplicate_deliveries: u64,
    /// Fault events (link or switch down) applied to the fabric.
    pub faults: u64,
    first_fault_at: Option<SimTime>,
    recovery_installed_at: Option<SimTime>,
    resweeps: u64,
    resweeps_failed: u64,
    transit_drops: u64,
    transit_drops_after_recovery: u64,
    drops_link_down: u64,
    drops_switch_down: u64,
    drops_corrupted: u64,
    escape_certifications: u64,
    escape_cert_failures: u64,
    recovery_ns: Option<u64>,
    /// Forwarding lookups answered by the hot-entry FIB cache.
    pub fib_hits: u64,
    /// Forwarding lookups that missed the FIB cache (0 when disabled).
    pub fib_misses: u64,
}

/// Per-flow in-order tracker: one past the highest sequence number
/// delivered by a deterministic packet of each `(src, DLID, SL)` flow
/// ("delivered through"). IBA orders
/// traffic per path and service level: the exact DLID names the path
/// (both under the paper's scheme — where the low bit selects
/// deterministic routing — and under source-selected multipath, where
/// each address is a distinct fixed path); different SLs may ride
/// different VLs and overtake freely.
///
/// The key space is small and dense — sources × the LID table length ×
/// 16 service levels — so the tracker is a flat array indexed by
/// `(src, dlid, sl)` rather than a hash map: the per-delivery update is
/// one multiply-add and one store, with no hashing in the event loop.
/// Storing `seq + 1` keeps `0` as an unambiguous "nothing delivered
/// yet" — a re-delivery of sequence 0 is detectable as a duplicate
/// instead of colliding with the empty sentinel.
#[derive(Debug)]
struct OrderTracker {
    /// `sources * lid_space * 16` entries, lazily grown if a flow outside
    /// the declared dimensions ever shows up.
    last: Vec<u64>,
    /// LIDs per source stripe (the routing table length).
    lid_space: usize,
}

impl OrderTracker {
    const SLS: usize = 16;

    fn new(num_hosts: usize, lid_space: usize) -> OrderTracker {
        let lid_space = lid_space.max(1);
        OrderTracker {
            last: vec![0; num_hosts * lid_space * Self::SLS],
            lid_space,
        }
    }

    #[inline]
    fn slot(&mut self, src: HostId, dlid: Lid, sl: ServiceLevel) -> &mut u64 {
        let idx = (src.index() * self.lid_space + dlid.0 as usize) * Self::SLS
            + (sl.0 as usize & (Self::SLS - 1));
        if idx >= self.last.len() {
            // A flow outside the declared dimensions (only reachable when
            // the collector was built with placeholder dims, e.g. unit
            // tests): grow instead of corrupting a neighbour's slot.
            self.last.resize(idx + 1, 0);
        }
        &mut self.last[idx]
    }
}

impl StatsCollector {
    /// Collector for a `[window_start, window_end)` measurement window.
    /// `num_hosts` and `lid_space` (the routing-table length) size the
    /// dense in-order tracker.
    pub fn new(
        window_start: SimTime,
        window_end: SimTime,
        num_hosts: usize,
        lid_space: usize,
    ) -> StatsCollector {
        StatsCollector {
            window_start,
            window_end,
            generated: 0,
            generated_window: 0,
            injected: 0,
            delivered: 0,
            delivered_bytes_window: 0,
            latency_sum_ns: 0,
            latency_max_ns: 0,
            latency_count: 0,
            latency_hist: LogHistogram::new(),
            class_hists: vec![LogHistogram::new(); LATENCY_CLASSES],
            num_hosts: num_hosts.max(1),
            hops_sum: 0,
            escape_forwards: 0,
            adaptive_forwards: 0,
            max_host_queue: 0,
            source_drops: 0,
            last_det_seq: OrderTracker::new(num_hosts, lid_space),
            order_violations: 0,
            duplicate_deliveries: 0,
            faults: 0,
            first_fault_at: None,
            recovery_installed_at: None,
            resweeps: 0,
            resweeps_failed: 0,
            transit_drops: 0,
            transit_drops_after_recovery: 0,
            drops_link_down: 0,
            drops_switch_down: 0,
            drops_corrupted: 0,
            escape_certifications: 0,
            escape_cert_failures: 0,
            recovery_ns: None,
            fib_hits: 0,
            fib_misses: 0,
        }
    }

    #[inline]
    fn in_window(&self, t: SimTime) -> bool {
        t >= self.window_start && t < self.window_end
    }

    /// A packet was generated at a source host.
    pub fn on_generated(&mut self, at: SimTime) {
        self.generated += 1;
        if self.in_window(at) {
            self.generated_window += 1;
        }
    }

    /// A packet was generated against a full source queue and dropped.
    pub fn on_source_drop(&mut self) {
        self.source_drops += 1;
    }

    /// A packet left its source queue into the fabric.
    pub fn on_injected(&mut self, queue_len: usize) {
        self.injected += 1;
        self.max_host_queue = self.max_host_queue.max(queue_len);
    }

    /// A switch forwarded a packet through an adaptive (minimal) option.
    pub fn on_adaptive_forward(&mut self) {
        self.adaptive_forwards += 1;
    }

    /// A switch forwarded a packet through its escape option.
    pub fn on_escape_forward(&mut self) {
        self.escape_forwards += 1;
    }

    /// A fault (link or switch down) took effect in the fabric.
    pub fn on_fault(&mut self, at: SimTime) {
        self.faults += 1;
        if self.first_fault_at.is_none() {
            self.first_fault_at = Some(at);
        }
    }

    /// The SM re-sweep installed recovery routing tables. This closes
    /// the recovery window: `recovery_time_ns` is the time from the
    /// first fault to the first successful LFT (re)programming, a pure
    /// control-plane quantity independent of whatever traffic happens
    /// to be in flight.
    pub fn on_recovery_installed(&mut self, at: SimTime) {
        self.resweeps += 1;
        if self.recovery_installed_at.is_none() {
            self.recovery_installed_at = Some(at);
            if let Some(fault) = self.first_fault_at {
                self.recovery_ns = Some(at.since(fault));
            }
        }
    }

    /// An SM re-sweep was abandoned (degraded fabric disconnected).
    pub fn on_resweep_failed(&mut self) {
        self.resweeps_failed += 1;
    }

    /// A packet was lost in transit (dead link, dead switch, or CRC
    /// failure), attributed per cause so conservation totals stay
    /// decomposable.
    pub fn on_transit_drop(&mut self, at: SimTime, cause: DropCause) {
        self.transit_drops += 1;
        match cause {
            DropCause::LinkDown => self.drops_link_down += 1,
            DropCause::SwitchDown => self.drops_switch_down += 1,
            DropCause::Corrupted => self.drops_corrupted += 1,
            // Source-queue drops go through `on_source_drop`; reaching
            // here with that cause is a caller bug.
            DropCause::SourceQueueFull => debug_assert!(false, "not an in-transit cause"),
        }
        if self.recovery_installed_at.is_some_and(|t| at >= t) {
            self.transit_drops_after_recovery += 1;
        }
    }

    /// An escape-route certification (`check_escape_routes` over freshly
    /// installed or first-migrated tables) completed.
    pub fn on_escape_certification(&mut self, ok: bool) {
        self.escape_certifications += 1;
        if !ok {
            self.escape_cert_failures += 1;
        }
    }

    /// A packet's tail reached its destination host.
    pub fn on_delivered(&mut self, packet: &Packet, at: SimTime) {
        self.delivered += 1;
        if self.in_window(at) {
            self.delivered_bytes_window += packet.size_bytes as u64;
        }
        if self.in_window(packet.generated_at) {
            let lat = at.since(packet.generated_at);
            self.latency_sum_ns += lat as u128;
            self.latency_max_ns = self.latency_max_ns.max(lat);
            self.latency_count += 1;
            self.latency_hist.record(lat);
            self.class_hists[latency_class_of(packet, self.num_hosts)].record(lat);
            self.hops_sum += packet.hops as u64;
        }
        if packet.mode() == RoutingMode::Deterministic {
            let last = self.last_det_seq.slot(packet.src, packet.dlid, packet.sl);
            let through = *last; // one past the highest delivered seq
            if packet.seq + 1 == through {
                self.duplicate_deliveries += 1;
            } else if packet.seq + 1 < through {
                self.order_violations += 1;
            } else {
                *last = packet.seq + 1;
            }
        }
    }

    /// Fold another collector (same window and tracker dimensions) into
    /// this one — how the parallel engine combines shard-local
    /// statistics. Counters sum; extrema take the max; first-occurrence
    /// times take the min; the order trackers merge elementwise (each
    /// flow's delivered-through watermark lives in exactly one shard, so
    /// elementwise max is exact).
    pub(crate) fn merge(&mut self, other: &StatsCollector) {
        debug_assert_eq!(self.window_start, other.window_start);
        debug_assert_eq!(self.window_end, other.window_end);
        self.generated += other.generated;
        self.generated_window += other.generated_window;
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.delivered_bytes_window += other.delivered_bytes_window;
        self.latency_sum_ns += other.latency_sum_ns;
        self.latency_max_ns = self.latency_max_ns.max(other.latency_max_ns);
        self.latency_count += other.latency_count;
        self.latency_hist.merge(&other.latency_hist);
        for (mine, theirs) in self.class_hists.iter_mut().zip(&other.class_hists) {
            mine.merge(theirs);
        }
        self.hops_sum += other.hops_sum;
        self.escape_forwards += other.escape_forwards;
        self.adaptive_forwards += other.adaptive_forwards;
        self.max_host_queue = self.max_host_queue.max(other.max_host_queue);
        self.source_drops += other.source_drops;
        if self.last_det_seq.last.len() < other.last_det_seq.last.len() {
            self.last_det_seq
                .last
                .resize(other.last_det_seq.last.len(), 0);
        }
        for (mine, theirs) in self
            .last_det_seq
            .last
            .iter_mut()
            .zip(other.last_det_seq.last.iter())
        {
            *mine = (*mine).max(*theirs);
        }
        self.order_violations += other.order_violations;
        self.duplicate_deliveries += other.duplicate_deliveries;
        self.faults += other.faults;
        self.first_fault_at = match (self.first_fault_at, other.first_fault_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.recovery_installed_at = match (self.recovery_installed_at, other.recovery_installed_at)
        {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.resweeps += other.resweeps;
        self.resweeps_failed += other.resweeps_failed;
        self.transit_drops += other.transit_drops;
        self.transit_drops_after_recovery += other.transit_drops_after_recovery;
        self.drops_link_down += other.drops_link_down;
        self.drops_switch_down += other.drops_switch_down;
        self.drops_corrupted += other.drops_corrupted;
        self.escape_certifications += other.escape_certifications;
        self.escape_cert_failures += other.escape_cert_failures;
        self.recovery_ns = match (self.recovery_ns, other.recovery_ns) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.fib_hits += other.fib_hits;
        self.fib_misses += other.fib_misses;
    }

    /// Finalize into a [`RunResult`], given the number of switches, the
    /// events processed, and the wall-clock time the event loop took.
    pub fn finish(&self, num_switches: usize, events: u64, wall: Duration) -> RunResult {
        let window_ns = self.window_end.since(self.window_start);
        let wall_time_s = wall.as_secs_f64();
        RunResult {
            schema_version: RUN_RESULT_SCHEMA_VERSION,
            generated: self.generated,
            injected: self.injected,
            delivered: self.delivered,
            avg_latency_ns: if self.latency_count == 0 {
                f64::NAN
            } else {
                self.latency_sum_ns as f64 / self.latency_count as f64
            },
            max_latency_ns: self.latency_max_ns,
            // All four percentiles come from the log-linear histogram:
            // bounded relative error, and None (never NaN/garbage) when
            // zero packets were measured.
            p50_latency_ns: self.latency_hist.quantile(0.5),
            p90_latency_ns: self.latency_hist.quantile(0.9),
            p99_latency_ns: self.latency_hist.quantile(0.99),
            p999_latency_ns: self.latency_hist.quantile(0.999),
            measured_packets: self.latency_count,
            accepted_bytes_per_ns_per_switch: if window_ns == 0 {
                0.0
            } else {
                self.delivered_bytes_window as f64 / window_ns as f64 / num_switches as f64
            },
            avg_hops: if self.latency_count == 0 {
                f64::NAN
            } else {
                self.hops_sum as f64 / self.latency_count as f64
            },
            escape_forwards: self.escape_forwards,
            adaptive_forwards: self.adaptive_forwards,
            order_violations: self.order_violations,
            duplicate_deliveries: self.duplicate_deliveries,
            max_host_queue: self.max_host_queue,
            source_drops: self.source_drops,
            faults_injected: self.faults,
            drops_in_transit: self.transit_drops,
            drops_after_recovery: self.transit_drops_after_recovery,
            drops_link_down: self.drops_link_down,
            drops_switch_down: self.drops_switch_down,
            drops_corrupted: self.drops_corrupted,
            escape_certifications: self.escape_certifications,
            escape_cert_failures: self.escape_cert_failures,
            delivered_ratio: {
                let entered = self.generated - self.source_drops;
                if entered == 0 {
                    1.0
                } else {
                    self.delivered as f64 / entered as f64
                }
            },
            recovery_time_ns: self.recovery_ns,
            resweeps: self.resweeps,
            resweeps_failed: self.resweeps_failed,
            fib_hits: self.fib_hits,
            fib_misses: self.fib_misses,
            events,
            wall_time_s,
            events_per_sec: if wall_time_s > 0.0 {
                events as f64 / wall_time_s
            } else {
                0.0
            },
        }
    }

    /// The overall end-to-end latency histogram (measured packets only).
    pub fn latency_histogram(&self) -> &LogHistogram {
        &self.latency_hist
    }

    /// The per-workload-class latency histograms, indexed as
    /// [`latency_class_label`] describes.
    pub fn class_histograms(&self) -> &[LogHistogram] {
        &self.class_hists
    }
}

/// Version stamp of the [`RunResult`] field set, carried in
/// [`RunResult::schema_version`] and into every JSON artifact derived
/// from it. Bump whenever a field is added, removed or re-interpreted.
///
/// History: 1 → 2 added `duplicate_deliveries`, the per-cause transit
/// drop counters (`drops_link_down` / `drops_switch_down` /
/// `drops_corrupted`) and the escape-certification counters. 2 → 3
/// added the FIB-cache counters (`fib_hits` / `fib_misses`) and
/// re-pinned `recovery_time_ns` to fault → last successful LFT
/// reprogramming (previously fault → first post-install delivery,
/// which made the value depend on the traffic pattern). 3 → 4 added
/// `p90_latency_ns` / `p999_latency_ns` and re-sourced all four
/// percentiles from the log-linear latency histogram
/// (`iba_stats::LogHistogram`, relative error ≤ 1/32 at the default
/// precision; previously power-of-two upper bucket bounds, i.e. up to
/// 2× overestimates). v3 files still parse via
/// [`RunResult::from_json`] — the fields v4 added read back as `None`.
pub const RUN_RESULT_SCHEMA_VERSION: u32 = 4;

/// The outcome of one simulation run.
///
/// Equality compares the *simulated* outcome only — [`Self::wall_time_s`]
/// and [`Self::events_per_sec`] are host-machine measurements and are
/// excluded, so two deterministic runs (e.g. on different event-queue
/// backends) compare equal exactly when they simulated the same thing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Field-set version ([`RUN_RESULT_SCHEMA_VERSION`]) — lets
    /// consumers of `results/*.json` detect layout changes.
    pub schema_version: u32,
    /// Packets generated at sources.
    pub generated: u64,
    /// Packets injected into the fabric.
    pub injected: u64,
    /// Packets delivered to destinations.
    pub delivered: u64,
    /// Mean latency (generation → delivery) of measured packets, ns.
    pub avg_latency_ns: f64,
    /// Maximum measured latency, ns.
    pub max_latency_ns: u64,
    /// Median latency (log-linear bucket bound, relative error ≤ 1/32),
    /// ns. `None` when zero packets were measured.
    pub p50_latency_ns: Option<u64>,
    /// 90th-percentile latency, same resolution/guard as p50.
    pub p90_latency_ns: Option<u64>,
    /// 99th-percentile latency, same resolution/guard as p50.
    pub p99_latency_ns: Option<u64>,
    /// 99.9th-percentile latency, same resolution/guard as p50.
    pub p999_latency_ns: Option<u64>,
    /// Number of packets in the latency average.
    pub measured_packets: u64,
    /// Accepted traffic in bytes/ns/switch — the paper's throughput
    /// metric.
    pub accepted_bytes_per_ns_per_switch: f64,
    /// Mean switch hops of measured packets.
    pub avg_hops: f64,
    /// Total escape-option forwards.
    pub escape_forwards: u64,
    /// Total adaptive-option forwards.
    pub adaptive_forwards: u64,
    /// Deterministic packets delivered out of order (must be 0).
    pub order_violations: u64,
    /// Deterministic packets delivered twice (must be 0; the simulator
    /// removes each buffer residency exactly once, so a nonzero value is
    /// a simulator bug, not a modelled fabric behaviour).
    pub duplicate_deliveries: u64,
    /// Largest source-queue length observed.
    pub max_host_queue: usize,
    /// Packets discarded at full source queues (0 in open-loop mode).
    pub source_drops: u64,
    /// Fault events (link or switch down) applied (0 without a fault
    /// schedule).
    pub faults_injected: u64,
    /// Packets lost in transit: on a link that went down under them, at
    /// a dead switch, or to a CRC failure.
    pub drops_in_transit: u64,
    /// Of [`Self::drops_in_transit`], those lost at or after the first
    /// recovery-routing installation (must be 0 for a single-fault
    /// SM-resweep run: nothing is routed onto a dead link once the
    /// recovery tables are live).
    pub drops_after_recovery: u64,
    /// Of [`Self::drops_in_transit`], those lost to a dead link.
    pub drops_link_down: u64,
    /// Of [`Self::drops_in_transit`], those lost at a dead switch.
    pub drops_switch_down: u64,
    /// Of [`Self::drops_in_transit`], those lost to packet corruption
    /// (CRC failure at the receiver).
    pub drops_corrupted: u64,
    /// Escape-route acyclicity certifications run (`check_escape_routes`
    /// after each re-sweep installation and at the first APM migration).
    pub escape_certifications: u64,
    /// Of [`Self::escape_certifications`], those that found a cyclic
    /// escape dependency (must be 0).
    pub escape_cert_failures: u64,
    /// Delivered packets over packets that entered the fabric
    /// (`delivered / (generated − source_drops)`; 1.0 for an empty run).
    /// Strictly below 1 even without faults — packets still in flight at
    /// the horizon are not delivered.
    pub delivered_ratio: f64,
    /// Nanoseconds from the first fault event to the moment the first
    /// re-sweep finished (re)programming the forwarding tables — i.e.
    /// to the *last successful LFT reprogram* of that sweep, when the
    /// recovery tables go live. `None` when no fault occurred or no
    /// recovery completed. Deliberately a control-plane measurement:
    /// it does not depend on when (or whether) traffic flows after the
    /// repair, so values are comparable across runs with different
    /// traffic patterns and between full and incremental re-sweeps.
    pub recovery_time_ns: Option<u64>,
    /// SM re-sweeps that installed recovery tables.
    pub resweeps: u64,
    /// SM re-sweeps abandoned because the degraded fabric was
    /// disconnected.
    pub resweeps_failed: u64,
    /// Forwarding lookups answered by the hot-entry FIB cache (0 when
    /// the cache is disabled).
    pub fib_hits: u64,
    /// Forwarding lookups that consulted the full table because the
    /// FIB cache missed (0 when the cache is disabled).
    pub fib_misses: u64,
    /// Discrete events processed.
    pub events: u64,
    /// Wall-clock seconds the event loop ran (host-machine measurement,
    /// excluded from equality).
    pub wall_time_s: f64,
    /// Events processed per wall-clock second (host-machine measurement,
    /// excluded from equality).
    pub events_per_sec: f64,
}

impl PartialEq for RunResult {
    fn eq(&self, other: &Self) -> bool {
        // Everything except the wall-clock fields; f64 semantics match
        // what the derive would do (NaN != NaN).
        self.schema_version == other.schema_version
            && self.generated == other.generated
            && self.injected == other.injected
            && self.delivered == other.delivered
            && self.avg_latency_ns == other.avg_latency_ns
            && self.max_latency_ns == other.max_latency_ns
            && self.p50_latency_ns == other.p50_latency_ns
            && self.p90_latency_ns == other.p90_latency_ns
            && self.p99_latency_ns == other.p99_latency_ns
            && self.p999_latency_ns == other.p999_latency_ns
            && self.measured_packets == other.measured_packets
            && self.accepted_bytes_per_ns_per_switch == other.accepted_bytes_per_ns_per_switch
            && self.avg_hops == other.avg_hops
            && self.escape_forwards == other.escape_forwards
            && self.adaptive_forwards == other.adaptive_forwards
            && self.order_violations == other.order_violations
            && self.duplicate_deliveries == other.duplicate_deliveries
            && self.max_host_queue == other.max_host_queue
            && self.source_drops == other.source_drops
            && self.faults_injected == other.faults_injected
            && self.drops_in_transit == other.drops_in_transit
            && self.drops_after_recovery == other.drops_after_recovery
            && self.drops_link_down == other.drops_link_down
            && self.drops_switch_down == other.drops_switch_down
            && self.drops_corrupted == other.drops_corrupted
            && self.escape_certifications == other.escape_certifications
            && self.escape_cert_failures == other.escape_cert_failures
            && self.delivered_ratio == other.delivered_ratio
            && self.recovery_time_ns == other.recovery_time_ns
            && self.resweeps == other.resweeps
            && self.resweeps_failed == other.resweeps_failed
            && self.fib_hits == other.fib_hits
            && self.fib_misses == other.fib_misses
            && self.events == other.events
    }
}

impl RunResult {
    /// Fraction of switch forwards that used an escape queue.
    pub fn escape_fraction(&self) -> f64 {
        let total = self.escape_forwards + self.adaptive_forwards;
        if total == 0 {
            0.0
        } else {
            self.escape_forwards as f64 / total as f64
        }
    }

    /// Render every field as a JSON object (field names as keys, NaN
    /// latencies as `null`) — what the experiment bins embed in their
    /// `results/*.json` artifacts instead of hand-assembling the
    /// layout.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::from(self.schema_version)),
            ("generated", Json::from(self.generated)),
            ("injected", Json::from(self.injected)),
            ("delivered", Json::from(self.delivered)),
            ("avg_latency_ns", Json::from(self.avg_latency_ns)),
            ("max_latency_ns", Json::from(self.max_latency_ns)),
            ("p50_latency_ns", Json::from(self.p50_latency_ns)),
            ("p90_latency_ns", Json::from(self.p90_latency_ns)),
            ("p99_latency_ns", Json::from(self.p99_latency_ns)),
            ("p999_latency_ns", Json::from(self.p999_latency_ns)),
            ("measured_packets", Json::from(self.measured_packets)),
            (
                "accepted_bytes_per_ns_per_switch",
                Json::from(self.accepted_bytes_per_ns_per_switch),
            ),
            ("avg_hops", Json::from(self.avg_hops)),
            ("escape_forwards", Json::from(self.escape_forwards)),
            ("adaptive_forwards", Json::from(self.adaptive_forwards)),
            ("order_violations", Json::from(self.order_violations)),
            (
                "duplicate_deliveries",
                Json::from(self.duplicate_deliveries),
            ),
            ("max_host_queue", Json::from(self.max_host_queue)),
            ("source_drops", Json::from(self.source_drops)),
            ("faults_injected", Json::from(self.faults_injected)),
            ("drops_in_transit", Json::from(self.drops_in_transit)),
            (
                "drops_after_recovery",
                Json::from(self.drops_after_recovery),
            ),
            ("drops_link_down", Json::from(self.drops_link_down)),
            ("drops_switch_down", Json::from(self.drops_switch_down)),
            ("drops_corrupted", Json::from(self.drops_corrupted)),
            (
                "escape_certifications",
                Json::from(self.escape_certifications),
            ),
            (
                "escape_cert_failures",
                Json::from(self.escape_cert_failures),
            ),
            ("delivered_ratio", Json::from(self.delivered_ratio)),
            ("recovery_time_ns", Json::from(self.recovery_time_ns)),
            ("resweeps", Json::from(self.resweeps)),
            ("resweeps_failed", Json::from(self.resweeps_failed)),
            ("fib_hits", Json::from(self.fib_hits)),
            ("fib_misses", Json::from(self.fib_misses)),
            ("events", Json::from(self.events)),
            ("wall_time_s", Json::from(self.wall_time_s)),
            ("events_per_sec", Json::from(self.events_per_sec)),
        ])
    }

    /// Parse a [`Self::to_json`] document back. Accepts schema v3 and
    /// v4: a v3 file simply lacks `p90_latency_ns`/`p999_latency_ns`,
    /// which read back as `None` (v3's p50/p99 were coarser power-of-two
    /// bounds, but the field meaning — "latency percentile in ns, `None`
    /// when nothing was measured" — is unchanged). `None` on any other
    /// version or a malformed document.
    pub fn from_json(j: &Json) -> Option<RunResult> {
        let schema_version = j.get("schema_version")?.as_u64()? as u32;
        if !(3..=RUN_RESULT_SCHEMA_VERSION).contains(&schema_version) {
            return None;
        }
        let req_u64 = |k: &str| j.get(k).and_then(Json::as_u64);
        let opt_u64 = |k: &str| j.get(k).and_then(Json::as_u64);
        // NaN renders as null; read null back as NaN.
        let f64_or_nan = |k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
        Some(RunResult {
            schema_version,
            generated: req_u64("generated")?,
            injected: req_u64("injected")?,
            delivered: req_u64("delivered")?,
            avg_latency_ns: f64_or_nan("avg_latency_ns"),
            max_latency_ns: req_u64("max_latency_ns")?,
            p50_latency_ns: opt_u64("p50_latency_ns"),
            p90_latency_ns: opt_u64("p90_latency_ns"),
            p99_latency_ns: opt_u64("p99_latency_ns"),
            p999_latency_ns: opt_u64("p999_latency_ns"),
            measured_packets: req_u64("measured_packets")?,
            accepted_bytes_per_ns_per_switch: f64_or_nan("accepted_bytes_per_ns_per_switch"),
            avg_hops: f64_or_nan("avg_hops"),
            escape_forwards: req_u64("escape_forwards")?,
            adaptive_forwards: req_u64("adaptive_forwards")?,
            order_violations: req_u64("order_violations")?,
            duplicate_deliveries: req_u64("duplicate_deliveries")?,
            max_host_queue: req_u64("max_host_queue")? as usize,
            source_drops: req_u64("source_drops")?,
            faults_injected: req_u64("faults_injected")?,
            drops_in_transit: req_u64("drops_in_transit")?,
            drops_after_recovery: req_u64("drops_after_recovery")?,
            drops_link_down: req_u64("drops_link_down")?,
            drops_switch_down: req_u64("drops_switch_down")?,
            drops_corrupted: req_u64("drops_corrupted")?,
            escape_certifications: req_u64("escape_certifications")?,
            escape_cert_failures: req_u64("escape_cert_failures")?,
            delivered_ratio: f64_or_nan("delivered_ratio"),
            recovery_time_ns: opt_u64("recovery_time_ns"),
            resweeps: req_u64("resweeps")?,
            resweeps_failed: req_u64("resweeps_failed")?,
            fib_hits: req_u64("fib_hits")?,
            fib_misses: req_u64("fib_misses")?,
            events: req_u64("events")?,
            wall_time_s: f64_or_nan("wall_time_s"),
            events_per_sec: f64_or_nan("events_per_sec"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{Lid, PacketId, ServiceLevel};

    fn packet(seq: u64, adaptive: bool, gen_at: u64) -> Packet {
        Packet {
            id: PacketId(seq),
            src: HostId(0),
            dst: HostId(1),
            dlid: Lid(if adaptive { 9 } else { 8 }),
            sl: ServiceLevel(0),
            size_bytes: 32,
            generated_at: SimTime::from_ns(gen_at),
            seq,
            hops: 2,
            escape_uses: 0,
        }
    }

    fn collector() -> StatsCollector {
        StatsCollector::new(SimTime::from_ns(1000), SimTime::from_ns(2000), 4, 16)
    }

    #[test]
    fn latency_counts_only_window_generated_packets() {
        let mut c = collector();
        // Generated before the window: delivery counts bytes (if inside
        // window) but not latency.
        c.on_generated(SimTime::from_ns(500));
        c.on_delivered(&packet(1, true, 500), SimTime::from_ns(1100));
        assert_eq!(c.latency_count, 0);
        // Generated inside the window: latency measured.
        c.on_generated(SimTime::from_ns(1200));
        c.on_delivered(&packet(2, true, 1200), SimTime::from_ns(1500));
        let r = c.finish(4, 0, Duration::ZERO);
        assert_eq!(r.measured_packets, 1);
        assert!((r.avg_latency_ns - 300.0).abs() < 1e-9);
        assert_eq!(r.max_latency_ns, 300);
        assert!((r.avg_hops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn accepted_traffic_counts_window_deliveries() {
        let mut c = collector();
        c.on_delivered(&packet(1, true, 0), SimTime::from_ns(999)); // before window
        c.on_delivered(&packet(2, true, 0), SimTime::from_ns(1000)); // inside
        c.on_delivered(&packet(3, true, 0), SimTime::from_ns(1999)); // inside
        c.on_delivered(&packet(4, true, 0), SimTime::from_ns(2000)); // after
        let r = c.finish(2, 0, Duration::ZERO);
        // 64 bytes over 1000 ns over 2 switches.
        assert!((r.accepted_bytes_per_ns_per_switch - 0.032).abs() < 1e-12);
        assert_eq!(r.delivered, 4);
    }

    #[test]
    fn order_violations_detected_for_deterministic_only() {
        let mut c = collector();
        c.on_delivered(&packet(2, false, 1100), SimTime::from_ns(1200));
        c.on_delivered(&packet(1, false, 1100), SimTime::from_ns(1300)); // overtaken!
        assert_eq!(c.order_violations, 1);
        let mut c2 = collector();
        c2.on_delivered(&packet(2, true, 1100), SimTime::from_ns(1200));
        c2.on_delivered(&packet(1, true, 1100), SimTime::from_ns(1300)); // adaptive: fine
        assert_eq!(c2.order_violations, 0);
    }

    #[test]
    fn empty_run_yields_nan_latency_and_zero_traffic() {
        let r = collector().finish(4, 7, Duration::ZERO);
        assert!(r.avg_latency_ns.is_nan());
        assert!(r.avg_hops.is_nan());
        assert_eq!(r.accepted_bytes_per_ns_per_switch, 0.0);
        assert_eq!(r.events, 7);
    }

    #[test]
    fn escape_fraction() {
        let mut c = collector();
        c.on_escape_forward();
        c.on_adaptive_forward();
        c.on_adaptive_forward();
        c.on_adaptive_forward();
        let r = c.finish(1, 0, Duration::ZERO);
        assert!((r.escape_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(
            collector().finish(1, 0, Duration::ZERO).escape_fraction(),
            0.0
        );
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert!(h.quantile(0.5).is_none());
        for lat in [100u64, 200, 400, 800, 100_000] {
            h.record(lat);
        }
        assert_eq!(h.count(), 5);
        // Median sample is 400 → bucket [256, 512) → upper bound 512.
        assert_eq!(h.quantile(0.5), Some(512));
        // Tail: 100_000 → bucket [65536, 131072) → upper bound 131072.
        assert_eq!(h.quantile(1.0), Some(131072));
        // Quantiles are monotone.
        assert!(h.quantile(0.2) <= h.quantile(0.9));
    }

    #[test]
    fn histogram_edge_samples() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.quantile(1.0), Some(2)); // both in bucket 0 → bound 2
        let mut big = LatencyHistogram::new();
        big.record(u64::MAX);
        assert_eq!(big.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn percentiles_flow_into_run_result() {
        let mut c = collector();
        c.on_delivered(&packet(1, true, 1100), SimTime::from_ns(1400));
        let r = c.finish(1, 0, Duration::ZERO);
        // A single 300 ns sample: the log-linear histogram clamps the
        // bucket bound to the exact observed maximum.
        assert_eq!(r.p50_latency_ns, Some(300));
        assert_eq!(r.p90_latency_ns, Some(300));
        assert_eq!(r.p99_latency_ns, Some(300));
        assert_eq!(r.p999_latency_ns, Some(300));
        assert_eq!(
            collector().finish(1, 0, Duration::ZERO).p50_latency_ns,
            None
        );
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let mut c = collector();
        // 100 samples spread 1000..=1990 ns (generated at 1000, offsets
        // into the window): exact p50 = 1000+2*... compare within 1/32.
        for i in 0..100u64 {
            c.on_generated(SimTime::from_ns(1100));
            c.on_delivered(
                &packet(i, true, 1100),
                SimTime::from_ns(1100 + 1000 + 10 * i),
            );
        }
        let r = c.finish(1, 0, Duration::ZERO);
        let exact_p50 = 1000 + 10 * 49; // rank 50 of 100 sorted samples
        let p50 = r.p50_latency_ns.unwrap();
        assert!(p50 >= exact_p50);
        assert!((p50 - exact_p50) as f64 <= exact_p50 as f64 / 32.0 + 1.0);
        // Percentiles are monotone.
        assert!(r.p50_latency_ns <= r.p90_latency_ns);
        assert!(r.p90_latency_ns <= r.p99_latency_ns);
        assert!(r.p99_latency_ns <= r.p999_latency_ns);
        assert!(r.p999_latency_ns.unwrap() <= r.max_latency_ns);
    }

    #[test]
    fn class_histograms_split_by_mode_and_source_group() {
        let mut c = StatsCollector::new(SimTime::from_ns(1000), SimTime::from_ns(2000), 8, 16);
        // src 0 → group 0; adaptive vs deterministic split on DLID bit.
        let mut adaptive = packet(1, true, 1100);
        adaptive.src = HostId(0);
        let mut det = packet(2, false, 1100);
        det.src = HostId(7); // → group 3 of 4 (hosts 0..8)
        c.on_delivered(&adaptive, SimTime::from_ns(1200));
        c.on_delivered(&det, SimTime::from_ns(1400));
        let hists = c.class_histograms();
        assert_eq!(hists.len(), LATENCY_CLASSES);
        assert_eq!(hists[0].count(), 1); // adaptive / g0
        assert_eq!(hists[SOURCE_GROUPS + 3].count(), 1); // deterministic / g3
        assert_eq!(hists.iter().map(|h| h.count()).sum::<u64>(), 2);
        assert_eq!(c.latency_histogram().count(), 2);
        assert_eq!(latency_class_label(0), ("adaptive", "g0"));
        assert_eq!(
            latency_class_label(SOURCE_GROUPS + 3),
            ("deterministic", "g3")
        );
    }

    #[test]
    fn run_result_v4_json_roundtrip() {
        let mut c = collector();
        c.on_generated(SimTime::from_ns(1200));
        c.on_delivered(&packet(1, true, 1200), SimTime::from_ns(1500));
        c.on_fault(SimTime::from_ns(1300));
        c.on_recovery_installed(SimTime::from_ns(1400));
        let r = c.finish(4, 10, Duration::from_millis(5));
        let parsed = Json::parse(&r.to_json().to_string_compact()).unwrap();
        let back = RunResult::from_json(&parsed).unwrap();
        // PartialEq ignores the wall-clock fields, exactly what a
        // round-trip should preserve bit-for-bit.
        assert_eq!(back, r);
        assert_eq!(back.schema_version, 4);
        assert_eq!(back.p90_latency_ns, r.p90_latency_ns);
        assert_eq!(back.p999_latency_ns, r.p999_latency_ns);
    }

    #[test]
    fn run_result_v3_files_still_parse() {
        // A v3 document as PR 7 wrote it: no p90/p999 fields, p50/p99
        // as power-of-two bounds.
        let v3 = r#"{"schema_version":3,"generated":10,"injected":9,"delivered":8,
            "avg_latency_ns":350.5,"max_latency_ns":800,"p50_latency_ns":512,
            "p99_latency_ns":1024,"measured_packets":8,
            "accepted_bytes_per_ns_per_switch":0.01,"avg_hops":2.5,
            "escape_forwards":1,"adaptive_forwards":20,"order_violations":0,
            "duplicate_deliveries":0,"max_host_queue":3,"source_drops":1,
            "faults_injected":0,"drops_in_transit":0,"drops_after_recovery":0,
            "drops_link_down":0,"drops_switch_down":0,"drops_corrupted":0,
            "escape_certifications":0,"escape_cert_failures":0,
            "delivered_ratio":0.888,"recovery_time_ns":null,"resweeps":0,
            "resweeps_failed":0,"fib_hits":0,"fib_misses":0,"events":123,
            "wall_time_s":0.5,"events_per_sec":246.0}"#;
        let parsed = Json::parse(v3).unwrap();
        let r = RunResult::from_json(&parsed).unwrap();
        assert_eq!(r.schema_version, 3);
        assert_eq!(r.p50_latency_ns, Some(512));
        // Fields v4 introduced read back as None from a v3 file.
        assert_eq!(r.p90_latency_ns, None);
        assert_eq!(r.p999_latency_ns, None);
        assert_eq!(r.events, 123);
        // Unknown future versions are rejected, not misread.
        let v9 = v3.replace(r#""schema_version":3"#, r#""schema_version":9"#);
        assert!(RunResult::from_json(&Json::parse(&v9).unwrap()).is_none());
    }

    #[test]
    fn zero_delivery_run_has_guarded_ratio_and_quantiles() {
        // The delivered_ratio NaN guard, extended to the quantile
        // fields: a run where nothing delivers must report None (which
        // renders as null), never NaN or a stale number.
        let mut c = collector();
        c.on_generated(SimTime::from_ns(1200));
        c.on_source_drop();
        let r = c.finish(4, 0, Duration::ZERO);
        assert_eq!(r.delivered_ratio, 1.0); // 0 entered ⇒ vacuously whole
        assert_eq!(r.p50_latency_ns, None);
        assert_eq!(r.p90_latency_ns, None);
        assert_eq!(r.p99_latency_ns, None);
        assert_eq!(r.p999_latency_ns, None);
        let json = r.to_json().to_string_compact();
        assert!(json.contains(r#""p90_latency_ns":null"#));
        assert!(json.contains(r#""p999_latency_ns":null"#));
        // And the round-trip preserves the guard.
        let back = RunResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.p999_latency_ns, None);
        assert_eq!(back.delivered_ratio, 1.0);
    }

    #[test]
    fn fault_accounting_and_recovery_time() {
        let mut c = collector();
        c.on_generated(SimTime::from_ns(100));
        c.on_generated(SimTime::from_ns(150));
        // Fault at t=1100; a packet on the dead wire is lost.
        c.on_fault(SimTime::from_ns(1100));
        c.on_transit_drop(SimTime::from_ns(1150), DropCause::LinkDown);
        // Deliveries never move the recovery clock...
        c.on_delivered(&packet(1, true, 1000), SimTime::from_ns(1200));
        // ...installing the recovery tables closes it: 1500 − 1100 =
        // 400 ns from the fault to the last successful LFT reprogram.
        c.on_recovery_installed(SimTime::from_ns(1500));
        c.on_delivered(&packet(2, true, 1000), SimTime::from_ns(1600));
        c.on_delivered(&packet(3, true, 1000), SimTime::from_ns(1900));
        let r = c.finish(4, 0, Duration::ZERO);
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.drops_in_transit, 1);
        assert_eq!(r.drops_after_recovery, 0);
        assert_eq!(r.drops_link_down, 1);
        assert_eq!(r.recovery_time_ns, Some(400));
        assert_eq!(r.resweeps, 1);
        assert!((r.delivered_ratio - 1.5).abs() < 1e-12); // 3 of 2 generated (toy numbers)
                                                          // Drops after installation are flagged separately.
        c.on_transit_drop(SimTime::from_ns(1700), DropCause::Corrupted);
        let r2 = c.finish(4, 0, Duration::ZERO);
        assert_eq!(r2.drops_after_recovery, 1);
        assert_eq!(r2.drops_corrupted, 1);
        assert_eq!(
            r2.drops_in_transit,
            r2.drops_link_down + r2.drops_switch_down + r2.drops_corrupted
        );
    }

    #[test]
    fn duplicate_deliveries_detected_including_seq_zero() {
        let mut c = collector();
        // Sequence 0 delivered twice: the old highest-seq sentinel could
        // not see this; the delivered-through encoding can.
        c.on_delivered(&packet(0, false, 1100), SimTime::from_ns(1200));
        c.on_delivered(&packet(0, false, 1100), SimTime::from_ns(1300));
        assert_eq!(c.duplicate_deliveries, 1);
        assert_eq!(c.order_violations, 0);
        // A duplicate of the current head counts as duplicate; an older
        // re-delivery is indistinguishable from overtaking and counts as
        // an order violation.
        c.on_delivered(&packet(1, false, 1100), SimTime::from_ns(1400));
        c.on_delivered(&packet(1, false, 1100), SimTime::from_ns(1500));
        c.on_delivered(&packet(0, false, 1100), SimTime::from_ns(1600));
        let r = c.finish(4, 0, Duration::ZERO);
        assert_eq!(r.duplicate_deliveries, 2);
        assert_eq!(r.order_violations, 1);
        // Adaptive packets may be reordered freely and are not tracked.
        let mut c2 = collector();
        c2.on_delivered(&packet(0, true, 1100), SimTime::from_ns(1200));
        c2.on_delivered(&packet(0, true, 1100), SimTime::from_ns(1300));
        assert_eq!(c2.duplicate_deliveries, 0);
    }

    #[test]
    fn escape_certifications_counted() {
        let mut c = collector();
        c.on_escape_certification(true);
        c.on_escape_certification(false);
        c.on_escape_certification(true);
        let r = c.finish(4, 0, Duration::ZERO);
        assert_eq!(r.escape_certifications, 3);
        assert_eq!(r.escape_cert_failures, 1);
    }

    #[test]
    fn recovery_time_is_traffic_independent() {
        // The pinned semantics: fault-event time → recovery-table
        // installation. Two runs whose control planes act at the same
        // instants must report the same recovery time no matter how
        // their traffic differs — that is what makes the metric
        // comparable across policies and loads.
        let control_plane = |c: &mut StatsCollector| {
            c.on_fault(SimTime::from_ns(1100));
            c.on_recovery_installed(SimTime::from_ns(1750));
        };
        let mut idle = collector();
        control_plane(&mut idle);
        // No traffic at all: the old delivery-based definition would
        // have reported None here.
        let mut busy = collector();
        control_plane(&mut busy);
        for seq in 0..20 {
            busy.on_delivered(&packet(seq, true, 1000), SimTime::from_ns(1800 + 10 * seq));
        }
        let (ri, rb) = (
            idle.finish(4, 0, Duration::ZERO),
            busy.finish(4, 0, Duration::ZERO),
        );
        assert_eq!(ri.recovery_time_ns, Some(650));
        assert_eq!(ri.recovery_time_ns, rb.recovery_time_ns);
        // Only the first installation counts; later re-sweeps don't
        // stretch the window.
        busy.on_recovery_installed(SimTime::from_ns(5000));
        assert_eq!(
            busy.finish(4, 0, Duration::ZERO).recovery_time_ns,
            Some(650)
        );
    }

    #[test]
    fn fib_counters_flow_into_run_result_and_merge() {
        let mut a = collector();
        a.fib_hits = 10;
        a.fib_misses = 3;
        let mut b = collector();
        b.fib_hits = 5;
        b.fib_misses = 1;
        a.merge(&b);
        let r = a.finish(4, 0, Duration::ZERO);
        assert_eq!(r.fib_hits, 15);
        assert_eq!(r.fib_misses, 4);
        let json = r.to_json().to_string_compact();
        assert!(json.contains(r#""fib_hits":15"#));
        assert!(json.contains(r#""fib_misses":4"#));
    }

    #[test]
    fn faultless_run_reports_no_recovery() {
        let r = collector().finish(4, 0, Duration::ZERO);
        assert_eq!(r.faults_injected, 0);
        assert_eq!(r.recovery_time_ns, None);
        assert_eq!(r.delivered_ratio, 1.0); // empty run: vacuously whole
    }

    #[test]
    fn run_result_is_versioned_and_renders_json() {
        let mut c = collector();
        c.on_generated(SimTime::from_ns(1200));
        c.on_delivered(&packet(1, true, 1200), SimTime::from_ns(1500));
        let r = c.finish(4, 10, Duration::ZERO);
        assert_eq!(r.schema_version, RUN_RESULT_SCHEMA_VERSION);
        let json = r.to_json().to_string_compact();
        assert!(json.starts_with(r#"{"schema_version":4,"#));
        assert!(json.contains(r#""delivered":1"#));
        assert!(json.contains(r#""events":10"#));
        // NaN-valued aggregates render as null, not as invalid JSON.
        let empty = collector().finish(4, 0, Duration::ZERO).to_json();
        assert!(empty
            .to_string_compact()
            .contains(r#""avg_latency_ns":null"#));
    }

    #[test]
    fn injected_tracks_queue_high_water_mark() {
        let mut c = collector();
        c.on_injected(3);
        c.on_injected(10);
        c.on_injected(5);
        let r = c.finish(1, 0, Duration::ZERO);
        assert_eq!(r.injected, 3);
        assert_eq!(r.max_host_queue, 10);
    }
}
