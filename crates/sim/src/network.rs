//! The event-driven network model.
//!
//! [`Network`] wires a [`Topology`] + [`FaRouting`] + [`WorkloadSpec`]
//! into a register-transfer-level simulation of an IBA subnet, following
//! §5.1 of the paper:
//!
//! * virtual cut-through switching: a packet is forwarded as soon as its
//!   header has been routed *and* the downstream VL buffer can hold the
//!   whole packet (credit check);
//! * credit-based flow control per VL, in 64-byte credits; the sender
//!   decrements its counter at transmission start, the receiver returns
//!   credits when the packet's tail leaves its buffer, and the return
//!   travels back with the link's propagation delay;
//! * the 100 ns switch routing time covers forwarding-table access,
//!   arbitration and crossbar setup — modelled as a pipeline delay
//!   between header arrival and arbitration eligibility;
//! * serialization at 4 ns/byte (1X link) and 100 ns propagation (20 m
//!   copper), both taken from [`iba_core::PhysParams`];
//! * the split adaptive/escape VL buffers, the per-VL credit split
//!   (`C_A`/`C_E`), and the §4.3 output selection at arbitration time.
//!
//! Hosts are open-loop sources with unbounded source queues and infinite
//! sink buffers (the paper measures fabric performance, not end-node
//! limits).

use crate::buffer::{ReadPoint, SlotHandle, VlBuffer};
use crate::config::{RecoveryPolicy, SelectionPolicy, SimConfig};
use crate::recorder::{classify_stall, FlightDump, FlightRecorder, RecorderOpts, TriggerCause};
use crate::stats::{RunResult, StatsCollector};
use crate::telemetry::{MemorySink, StallCause, TelemetryOpts, TelemetrySink, TelemetryState};
use crate::trace::{TraceOpts, TraceStep, Tracer};
use iba_core::{
    Credits, DropCause, FlightEvent, HostId, IbaError, InlineVec, NodeRef, OptionOutcome,
    OptionOutcomes, OptionVerdict, Packet, PacketId, PortIndex, SimTime, StallClass, SwitchId,
    VirtualLane, MAX_PORTS,
};
use iba_engine::rng::{StreamKind, StreamRng};
use iba_engine::DesQueue;
use iba_routing::{check_escape_routes, FaRouting, SlToVlTable};
use iba_topology::{Topology, TopologyBuilder};
use iba_workloads::{
    FaultKind, FaultSchedule, HostGenerator, PathSet, TrafficScript, WorkloadSpec,
};
use std::collections::VecDeque;

/// Discrete events of the network model.
#[derive(Debug)]
enum Event {
    /// A host's traffic generator fires.
    Generate { host: HostId },
    /// The next scripted injection (trace-driven mode) fires.
    GenerateScripted { idx: usize },
    /// A host retries sending the head of its source queue.
    TryInject { host: HostId },
    /// A packet's header reaches a switch input port.
    HeaderArrive {
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        packet: Packet,
    },
    /// The forwarding-table pipeline for a buffered packet completes.
    /// The handle addresses the exact residency `push` created, so no
    /// buffer scan is needed when the event fires.
    RouteDone {
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    },
    /// Coalesced arbitration pass at a switch.
    Arbitrate { sw: SwitchId },
    /// A forwarded packet's tail has left its input buffer.
    TxDone {
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    },
    /// Freed credits reach the upstream sender.
    CreditReturn {
        target: NodeRef,
        port: PortIndex,
        vl: VirtualLane,
        credits: Credits,
    },
    /// A packet's tail reaches its destination host.
    Deliver { host: HostId, packet: Packet },
    /// A scheduled link fault (down or up) takes effect.
    Fault { idx: usize },
    /// The subnet manager's re-sweep completes and recovery routing is
    /// installed (`RecoveryPolicy::SmResweep` only).
    ResweepDone,
    /// The telemetry probe samples buffer occupancy (instrumented runs
    /// only; reschedules itself at the configured cadence).
    TelemetrySample,
    /// The flight recorder's stall watchdog inspects every VL buffer for
    /// forward progress (recorded runs with a watchdog only; reschedules
    /// itself at the configured cadence).
    WatchdogCheck,
}

/// A schedule entry with its endpoints resolved to concrete ports, done
/// once at construction so fault application is O(1) and allocation-free
/// inside the event loop. For switch faults only `a` is meaningful; the
/// affected ports are enumerated from the topology at apply time.
#[derive(Clone, Copy, Debug)]
struct ResolvedFault {
    at: SimTime,
    kind: FaultKind,
    a: SwitchId,
    pa: PortIndex,
    b: SwitchId,
    pb: PortIndex,
}

/// One physical input port of a switch.
struct InputPort {
    /// Per-VL split buffers.
    vls: Vec<VlBuffer>,
    /// The buffer RAM's read path (the Figure 2 multiplexer) is busy
    /// streaming a packet out until this time.
    read_busy_until: SimTime,
    /// Round-robin cursor over VLs (a minimal stand-in for IBA's VL
    /// arbitration so no data VL starves behind VL0).
    vl_cursor: usize,
}

/// One physical output port of a switch.
struct OutputPort {
    /// The serial link transmits one packet at a time.
    busy_until: SimTime,
    /// Sender-side credit counters per VL of the downstream input buffer;
    /// `None` for host-facing ports (hosts are infinite sinks).
    credits: Option<Vec<Credits>>,
    /// Cumulative transmission time (utilization probe).
    busy_ns_total: u64,
}

struct SwitchState {
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    sl2vl: SlToVlTable,
    arb_pending: bool,
    rr_cursor: usize,
    /// Per-port link state; `false` masks the port out of every feasible
    /// option set at arbitration. Derived cache of `down_depth == 0` so
    /// the hot path stays a single bool load. A host-facing port goes
    /// down only when its own switch dies.
    link_up: Vec<bool>,
    /// How many active faults currently mask each port: a link fault
    /// contributes 1 to both endpoints, a switch fault contributes 1 to
    /// every wired port of the dead switch *and* the peer-side port of
    /// each of its inter-switch links — so two overlapping switch deaths
    /// on adjacent switches stack on the shared link and the port only
    /// revives when both have recovered.
    down_depth: Vec<u8>,
    /// The portion of `down_depth` owed to switch deaths; used to
    /// attribute wire drops at a masked port to [`DropCause::SwitchDown`]
    /// rather than [`DropCause::LinkDown`]. Schedule validation forbids
    /// link and switch windows overlapping on a shared endpoint, so a
    /// nonzero value is unambiguous.
    switch_down_depth: Vec<u8>,
}

struct HostState {
    /// Synthetic generator; `None` in trace-driven mode.
    gen: Option<HostGenerator>,
    /// Open-loop source queue.
    queue: VecDeque<Packet>,
    tx_busy_until: SimTime,
    /// Credits towards the attached switch's input buffer, per VL.
    credits: Vec<Credits>,
    attached_switch: SwitchId,
    /// Per-source sequence counter (order checking).
    next_seq: u64,
    /// Rotating DLID-offset cursor for source-selected multipath.
    mp_cursor: u16,
}

/// A forwarding decision produced by arbitration. Positions and handle
/// are taken while the buffer is inspected and stay valid until the
/// decision is committed (arbitration grants synchronously, and a grant
/// marks the packet in flight rather than removing it).
struct Decision {
    input: usize,
    vl: usize,
    /// FIFO position of the granted packet in its VL buffer.
    idx: usize,
    /// Stable residency handle, carried into the `TxDone` event.
    handle: SlotHandle,
    packet_id: PacketId,
    out_port: PortIndex,
    out_vl: VirtualLane,
    via_escape: bool,
    read_point: ReadPoint,
}

/// An IBA subnet simulation.
pub struct Network<'a> {
    topo: &'a Topology,
    routing: &'a FaRouting,
    spec: WorkloadSpec,
    config: SimConfig,
    queue: DesQueue<Event>,
    switches: Vec<SwitchState>,
    hosts: Vec<HostState>,
    stats: StatsCollector,
    next_packet_id: u64,
    arb_rng: StreamRng,
    /// No packets are generated at or after this time.
    gen_deadline: SimTime,
    /// Whether the initial generation events have been scheduled.
    primed: bool,
    tracer: Option<Tracer>,
    /// Trace-driven injections (replaces the synthetic generators).
    script: Option<&'a TrafficScript>,
    /// Resolved link-fault schedule (empty without [`Self::with_faults`]).
    faults: Vec<ResolvedFault>,
    /// What repairs reachability after a fault.
    recovery: RecoveryPolicy,
    /// Modelled duration of one SM re-sweep (fault event → recovery
    /// tables live), in nanoseconds.
    resweep_latency_ns: u64,
    /// Number of faults (links *or* switches) currently down.
    active_faults: usize,
    /// Which switches are currently dead (switch-fault windows).
    dead_switches: Vec<bool>,
    /// Per-link bit-error probability folded to a per-packet CRC-failure
    /// probability at the receiving input port; 0.0 (the default) keeps
    /// the hot-path hook a single float compare.
    corrupt_prob: f64,
    /// Dedicated substream for corruption draws, so armed corruption
    /// never perturbs arbitration tie-breaks or generator schedules.
    corrupt_rng: StreamRng,
    /// Whether the APM alternate escape tables have been certified
    /// acyclic (done lazily at the first migration activation).
    apm_certified: bool,
    /// Recovery tables installed by the last completed re-sweep; `None`
    /// while the primary tables are live.
    recovery_routing: Option<FaRouting>,
    /// Telemetry probe state; `None` (the default) keeps every hook a
    /// single pointer-null check and schedules no sampling events.
    telemetry: Option<Box<TelemetryState>>,
    /// Flight-recorder state; `None` (the default) keeps every hook a
    /// single pointer-null check and schedules no watchdog events.
    recorder: Option<Box<FlightRecorder>>,
    /// Candidate-option verdicts of the most recent arbitration grant.
    /// Scratch reused across grants so `Decision` stays small — the
    /// ~100-byte option set is only written (and read back by
    /// `start_forward`) while the recorder is capturing; with it off or
    /// frozen the field is never touched on the hot path.
    decision_options: OptionOutcomes,
}

/// The one construction path for [`Network`]: topology and routing up
/// front, then a traffic source (synthetic [`WorkloadSpec`] or replayed
/// [`TrafficScript`]), a [`SimConfig`], and the optional subsystems —
/// faults, journey tracing, telemetry — as builder options instead of
/// bolted-on constructors and post-construction mutators.
///
/// ```
/// # use iba_topology::IrregularConfig;
/// # use iba_routing::{FaRouting, RoutingConfig};
/// # use iba_sim::{Network, SimConfig, TelemetryOpts};
/// # use iba_workloads::WorkloadSpec;
/// let topo = IrregularConfig::paper(8, 1).generate().unwrap();
/// let routing = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
/// let mut net = Network::builder(&topo, &routing)
///     .workload(WorkloadSpec::uniform32(0.005))
///     .config(SimConfig::test(7))
///     .telemetry(TelemetryOpts::every_ns(1_000))
///     .build()
///     .unwrap();
/// let result = net.run();
/// assert!(result.delivered > 0);
/// ```
pub struct NetworkBuilder<'a> {
    topo: &'a Topology,
    routing: &'a FaRouting,
    workload: Option<WorkloadSpec>,
    script: Option<&'a TrafficScript>,
    config: Option<SimConfig>,
    faults: Option<(&'a FaultSchedule, RecoveryPolicy, u64)>,
    corruption: Option<f64>,
    trace: Option<TraceOpts>,
    telemetry: Option<(TelemetryOpts, Box<dyn TelemetrySink>)>,
    recorder: Option<RecorderOpts>,
}

impl<'a> NetworkBuilder<'a> {
    /// Drive the simulation with synthetic generators (mutually
    /// exclusive with [`Self::script`]).
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// Replay the exact injections of `script` instead of synthetic
    /// generators (mutually exclusive with [`Self::workload`]).
    pub fn script(mut self, script: &'a TrafficScript) -> Self {
        self.script = Some(script);
        self
    }

    /// The simulator configuration (required; see
    /// [`SimConfig::builder`] for validated construction).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Arm a link-fault schedule with the recovery policy answering it.
    /// `resweep_latency_ns` is the modelled duration of one SM re-sweep
    /// (ignored unless the policy is [`RecoveryPolicy::SmResweep`]);
    /// callers wanting a grounded value can time an actual
    /// `ManagedFabric` re-sweep and derive it from the SMP count.
    pub fn faults(
        mut self,
        schedule: &'a FaultSchedule,
        policy: RecoveryPolicy,
        resweep_latency_ns: u64,
    ) -> Self {
        self.faults = Some((schedule, policy, resweep_latency_ns));
        self
    }

    /// Arm transient packet corruption: every packet arriving at a
    /// switch input port independently fails its CRC check with
    /// probability `per_packet_prob` and is dropped (the IBA link layer
    /// has no retransmission; reliability lives in the transport). The
    /// receiver still advertises the freed space back, so corruption
    /// never leaks credits. Draws come from a dedicated RNG substream —
    /// arming corruption does not perturb arbitration or generation.
    pub fn corruption(mut self, per_packet_prob: f64) -> Self {
        self.corruption = Some(per_packet_prob);
        self
    }

    /// Record per-packet journeys (see [`crate::Tracer`]).
    pub fn trace(mut self, opts: TraceOpts) -> Self {
        self.trace = Some(opts);
        self
    }

    /// Arm the telemetry probes with an in-memory sink (retrieve it
    /// after the run through [`Network::telemetry_sink`]).
    pub fn telemetry(self, opts: TelemetryOpts) -> Self {
        self.telemetry_sink(opts, Box::new(MemorySink::new()))
    }

    /// Arm the telemetry probes flushing into `sink` (e.g. a
    /// [`crate::JsonLinesSink`] over a file for experiments).
    pub fn telemetry_sink(mut self, opts: TelemetryOpts, sink: Box<dyn TelemetrySink>) -> Self {
        self.telemetry = Some((opts, sink));
        self
    }

    /// Arm the flight recorder: bounded per-switch event rings, anomaly
    /// triggers, and the stall watchdog (see [`crate::FlightRecorder`]).
    /// Retrieve the dump after the run through [`Network::flight_dump`].
    pub fn recorder(mut self, opts: RecorderOpts) -> Self {
        self.recorder = Some(opts);
        self
    }

    /// Assemble the simulation. Fails on a missing config or traffic
    /// source, on both traffic sources at once, and on every
    /// inconsistency the individual subsystems check (workload vs
    /// routing tables, fault schedule vs topology, config invariants).
    pub fn build(self) -> Result<Network<'a>, IbaError> {
        let config = self.config.ok_or_else(|| {
            IbaError::InvalidConfig(
                "NetworkBuilder: a SimConfig is required (use .config(...))".into(),
            )
        })?;
        let mut net = match (self.workload, self.script) {
            (Some(spec), None) => Network::assemble(self.topo, self.routing, spec, config)?,
            (None, Some(script)) => {
                Network::assemble_scripted(self.topo, self.routing, script, config)?
            }
            (Some(_), Some(_)) => {
                return Err(IbaError::InvalidConfig(
                    "NetworkBuilder: .workload(...) and .script(...) are mutually exclusive".into(),
                ))
            }
            (None, None) => {
                return Err(IbaError::InvalidConfig(
                    "NetworkBuilder: a traffic source is required \
                     (use .workload(...) or .script(...))"
                        .into(),
                ))
            }
        };
        if let Some((schedule, policy, resweep_latency_ns)) = self.faults {
            net.arm_faults(schedule, policy, resweep_latency_ns)?;
        }
        if let Some(p) = self.corruption {
            if !(0.0..=1.0).contains(&p) {
                return Err(IbaError::InvalidConfig(format!(
                    "corruption probability {p} outside [0, 1]"
                )));
            }
            net.corrupt_prob = p;
        }
        if let Some(opts) = self.trace {
            net.tracer = Some(Tracer::with_opts(opts));
        }
        if let Some((opts, sink)) = self.telemetry {
            net.telemetry = Some(Box::new(TelemetryState::new(
                opts,
                sink,
                net.topo.num_switches(),
                net.topo.ports_per_switch() as usize,
            )));
        }
        if let Some(opts) = self.recorder {
            net.recorder = Some(Box::new(FlightRecorder::new(
                opts,
                net.topo.num_switches(),
                net.topo.ports_per_switch() as usize,
                net.config.data_vls as usize,
            )));
        }
        Ok(net)
    }
}

impl<'a> Network<'a> {
    /// Start building a simulation over `topo` with `routing` tables —
    /// see [`NetworkBuilder`] for the options.
    pub fn builder(topo: &'a Topology, routing: &'a FaRouting) -> NetworkBuilder<'a> {
        NetworkBuilder {
            topo,
            routing,
            workload: None,
            script: None,
            config: None,
            faults: None,
            corruption: None,
            trace: None,
            telemetry: None,
            recorder: None,
        }
    }

    /// Assemble a simulation (compatibility shim).
    #[deprecated(
        since = "0.2.0",
        note = "use Network::builder(topo, routing).workload(spec).config(config).build()"
    )]
    pub fn new(
        topo: &'a Topology,
        routing: &'a FaRouting,
        spec: WorkloadSpec,
        config: SimConfig,
    ) -> Result<Network<'a>, IbaError> {
        Network::assemble(topo, routing, spec, config)
    }

    /// Assemble a synthetic-workload simulation. Fails on inconsistent
    /// configuration (e.g. a workload requesting adaptive marking when
    /// the routing tables have no adaptive addresses).
    fn assemble(
        topo: &'a Topology,
        routing: &'a FaRouting,
        spec: WorkloadSpec,
        config: SimConfig,
    ) -> Result<Network<'a>, IbaError> {
        spec.validate()?;
        config.validate(spec.packet_bytes)?;
        if routing.lid_map().num_hosts() as usize != topo.num_hosts() {
            return Err(IbaError::InvalidConfig(
                "routing tables built for a different topology".into(),
            ));
        }
        if spec.adaptive_fraction > 0.0 && routing.config().table_options < 2 {
            return Err(IbaError::InvalidConfig(
                "adaptive traffic requires at least 2 routing options (LMC >= 1)".into(),
            ));
        }

        let root = StreamRng::from_seed(config.seed);
        let vls = config.data_vls as usize;
        let cap = config.vl_buffer_credits;

        let switches = topo
            .switch_ids()
            .map(|s| {
                let ports = topo.ports_per_switch() as usize;
                let inputs = (0..ports)
                    .map(|_| InputPort {
                        vls: (0..vls).map(|_| VlBuffer::new(cap)).collect(),
                        read_busy_until: SimTime::ZERO,
                        vl_cursor: 0,
                    })
                    .collect();
                let outputs = (0..ports)
                    .map(|p| {
                        let to_switch = topo
                            .endpoint(s, PortIndex(p as u8))
                            .is_some_and(|ep| ep.node.is_switch());
                        OutputPort {
                            busy_until: SimTime::ZERO,
                            credits: to_switch.then(|| vec![cap; vls]),
                            busy_ns_total: 0,
                        }
                    })
                    .collect();
                Ok(SwitchState {
                    inputs,
                    outputs,
                    sl2vl: SlToVlTable::identity(topo.ports_per_switch(), config.data_vls)?,
                    arb_pending: false,
                    rr_cursor: 0,
                    link_up: vec![true; ports],
                    down_depth: vec![0; ports],
                    switch_down_depth: vec![0; ports],
                })
            })
            .collect::<Result<Vec<_>, IbaError>>()?;

        // Hosts are numbered consecutively per switch by the topology
        // builders; permutation patterns act on the switch index.
        let hosts_per_switch = if topo.num_hosts().is_multiple_of(topo.num_switches()) {
            topo.num_hosts() / topo.num_switches()
        } else {
            1
        };
        let hosts = topo
            .host_ids()
            .map(|h| {
                Ok(HostState {
                    gen: Some(HostGenerator::with_groups(
                        h,
                        topo.num_hosts(),
                        hosts_per_switch,
                        spec,
                        &root,
                    )?),
                    queue: VecDeque::new(),
                    tx_busy_until: SimTime::ZERO,
                    credits: vec![cap; vls],
                    attached_switch: topo.host_switch(h),
                    next_seq: 0,
                    mp_cursor: h.0 % routing.config().table_options,
                })
            })
            .collect::<Result<Vec<_>, IbaError>>()?;

        // Pre-size the event queue from the topology: pending events are
        // bounded by buffered packets (each VL buffer holds at most its
        // credit count, each buffered packet has at most one pending
        // RouteDone/TxDone/CreditReturn) plus a few per host — so the
        // steady state never reallocates the queue.
        let ports = topo.ports_per_switch() as usize;
        let est_events = (topo.num_switches() * ports * vls * cap.count() as usize / 4
            + topo.num_hosts() * 4)
            .max(1024);

        let horizon = config.horizon();
        Ok(Network {
            topo,
            routing,
            spec,
            config,
            queue: DesQueue::with_capacity(config.queue_backend, est_events),
            switches,
            hosts,
            stats: StatsCollector::new(
                config.warmup,
                horizon,
                topo.num_hosts(),
                routing.lid_map().table_len(),
            ),
            next_packet_id: 0,
            arb_rng: root.derive(StreamKind::Arbiter),
            gen_deadline: horizon,
            primed: false,
            tracer: None,
            script: None,
            faults: Vec::new(),
            recovery: RecoveryPolicy::None,
            resweep_latency_ns: 0,
            active_faults: 0,
            dead_switches: vec![false; topo.num_switches()],
            corrupt_prob: 0.0,
            corrupt_rng: root.derive(StreamKind::Custom(0xC0DE)),
            apm_certified: false,
            recovery_routing: None,
            telemetry: None,
            recorder: None,
            decision_options: OptionOutcomes::new(),
        })
    }

    /// Arm a link-fault schedule (compatibility shim).
    #[deprecated(
        since = "0.2.0",
        note = "use Network::builder(..).faults(schedule, policy, resweep_latency_ns)"
    )]
    pub fn with_faults(
        mut self,
        schedule: &FaultSchedule,
        policy: RecoveryPolicy,
        resweep_latency_ns: u64,
    ) -> Result<Network<'a>, IbaError> {
        self.arm_faults(schedule, policy, resweep_latency_ns)?;
        Ok(self)
    }

    /// Arm a link-fault schedule and the recovery policy answering it
    /// (the working half of `NetworkBuilder::faults`).
    ///
    /// Fails when a schedule entry names a link the topology does not
    /// have, or when `ApmMigrate` is requested without APM tables.
    fn arm_faults(
        &mut self,
        schedule: &FaultSchedule,
        policy: RecoveryPolicy,
        resweep_latency_ns: u64,
    ) -> Result<(), IbaError> {
        if self.primed {
            return Err(IbaError::InvalidConfig(
                "fault schedule must be armed before the simulation starts".into(),
            ));
        }
        if policy == RecoveryPolicy::ApmMigrate && !self.routing.has_apm() {
            return Err(IbaError::InvalidConfig(
                "ApmMigrate recovery requires APM tables (FaRouting::build_with_apm)".into(),
            ));
        }
        self.faults.clear();
        for (i, e) in schedule.events().iter().enumerate() {
            let n = self.topo.num_switches();
            if e.a.index() >= n || e.b.index() >= n {
                return Err(IbaError::InvalidConfig(format!(
                    "fault entry {i}: switch out of range (topology has {n} switches)"
                )));
            }
            let (pa, pb) = match e.kind {
                // A switch fault names no link; the affected ports are
                // enumerated from the topology when the fault fires.
                FaultKind::SwitchDown | FaultKind::SwitchUp => (PortIndex(0), PortIndex(0)),
                FaultKind::LinkDown | FaultKind::LinkUp => {
                    let (Some(pa), Some(pb)) = (
                        self.topo.port_towards(e.a, e.b),
                        self.topo.port_towards(e.b, e.a),
                    ) else {
                        return Err(IbaError::InvalidConfig(format!(
                            "fault entry {i}: no link {}–{} in the topology",
                            e.a, e.b
                        )));
                    };
                    (pa, pb)
                }
            };
            self.faults.push(ResolvedFault {
                at: e.at,
                kind: e.kind,
                a: e.a,
                pa,
                b: e.b,
                pb,
            });
        }
        self.recovery = policy;
        self.resweep_latency_ns = resweep_latency_ns;
        Ok(())
    }

    /// Number of links currently down.
    pub fn active_faults(&self) -> usize {
        self.active_faults
    }

    /// Whether SM recovery tables (rather than the primary tables) are
    /// currently live.
    pub fn recovery_installed(&self) -> bool {
        self.recovery_routing.is_some()
    }

    /// The routing tables currently programmed into the fabric: the
    /// recovery tables once an SM re-sweep has installed them, the
    /// primary tables otherwise.
    #[inline]
    fn cur_routing(&self) -> &FaRouting {
        self.recovery_routing.as_ref().unwrap_or(self.routing)
    }

    /// Assemble a trace-driven simulation (compatibility shim).
    #[deprecated(
        since = "0.2.0",
        note = "use Network::builder(topo, routing).script(script).config(config).build()"
    )]
    pub fn new_scripted(
        topo: &'a Topology,
        routing: &'a FaRouting,
        script: &'a TrafficScript,
        config: SimConfig,
    ) -> Result<Network<'a>, IbaError> {
        Network::assemble_scripted(topo, routing, script, config)
    }

    /// Assemble a *trace-driven* simulation: instead of synthetic
    /// generators, the exact injections of `script` are replayed.
    fn assemble_scripted(
        topo: &'a Topology,
        routing: &'a FaRouting,
        script: &'a TrafficScript,
        config: SimConfig,
    ) -> Result<Network<'a>, IbaError> {
        if let Some(max) = script.max_host() {
            if max.index() >= topo.num_hosts() {
                return Err(IbaError::InvalidConfig(format!(
                    "script references {max} but the topology has {} hosts",
                    topo.num_hosts()
                )));
            }
        }
        if script.uses_adaptive() && routing.config().table_options < 2 {
            return Err(IbaError::InvalidConfig(
                "adaptive script entries require at least 2 routing options".into(),
            ));
        }
        if script.uses_alternate() {
            if !routing.has_apm() {
                return Err(IbaError::InvalidConfig(
                    "alternate-path script entries require APM tables \
                     (FaRouting::build_with_apm)"
                        .into(),
                ));
            }
            // The two escape orientations are only jointly deadlock-free
            // on disjoint virtual lanes: every SL used by alternate
            // entries must map to a different VL than every primary SL.
            let (primary, alternate) = script.sls_by_path_set();
            let vl_of = |sl: iba_core::ServiceLevel| sl.0 % config.data_vls;
            for a in &alternate {
                if primary.iter().any(|p| vl_of(*p) == vl_of(*a)) {
                    return Err(IbaError::InvalidConfig(format!(
                        "alternate-path SL {a} shares a VL with primary traffic; \
                         put the path sets on SLs mapping to disjoint VLs \
                         (data_vls = {})",
                        config.data_vls
                    )));
                }
            }
        }
        // The synthetic spec is a placeholder in this mode; only its
        // packet size participates in buffer validation, so mirror the
        // script's largest packet.
        let spec = WorkloadSpec {
            packet_bytes: script.max_packet_bytes().max(1),
            adaptive_fraction: 0.0,
            ..WorkloadSpec::uniform32(1e-6)
        };
        let mut net = Network::assemble(topo, routing, spec, config)?;
        for h in &mut net.hosts {
            h.gen = None;
        }
        net.script = Some(script);
        Ok(net)
    }

    /// The workload driving the simulation.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Enable journey tracing before running (compatibility shim).
    #[deprecated(
        since = "0.2.0",
        note = "use Network::builder(..).trace(TraceOpts::sampled(sample_every, max_packets))"
    )]
    pub fn enable_tracing(&mut self, sample_every: u64, max_packets: usize) {
        self.tracer = Some(Tracer::with_opts(TraceOpts::sampled(
            sample_every,
            max_packets,
        )));
    }

    /// Recorded journeys (empty unless tracing was enabled).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Whether the telemetry probes are armed.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The telemetry sink, once armed through the builder. The report is
    /// flushed into it when the run ends; with the default
    /// [`MemorySink`], downcast through
    /// [`TelemetrySink::as_memory`] to read the recorded samples.
    pub fn telemetry_sink(&self) -> Option<&dyn TelemetrySink> {
        self.telemetry.as_deref().map(|t| t.sink())
    }

    /// Whether the flight recorder is armed.
    pub fn recorder_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// The flight recorder, once armed through the builder.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref()
    }

    /// Drain the flight recorder into an exportable [`FlightDump`]
    /// (`None` unless the recorder was armed through the builder).
    pub fn flight_dump(&self) -> Option<FlightDump> {
        self.recorder.as_deref().map(|r| {
            r.dump(
                self.topo.num_switches(),
                self.topo.ports_per_switch() as usize,
                self.config.data_vls as usize,
            )
        })
    }

    /// Test hook: zero the sender-side credit counters of one output
    /// port without marking the link down. Nothing can be forwarded
    /// through the port (and, with nothing in flight, no credits ever
    /// return), which wedges any buffer whose packets have no other
    /// feasible option — the credit-withholding flavour of a fabric
    /// wedge, as opposed to the dead-escape-link flavour.
    #[doc(hidden)]
    pub fn debug_block_output(&mut self, sw: SwitchId, port: PortIndex) {
        if let Some(cs) = self.switches[sw.index()].outputs[port.index()]
            .credits
            .as_mut()
        {
            for c in cs.iter_mut() {
                *c = Credits::ZERO;
            }
        }
    }

    #[inline]
    fn trace(&mut self, id: PacketId, at: SimTime, step: TraceStep) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(id, at, step);
        }
    }

    /// Run until the measurement horizon, returning the per-run result.
    pub fn run(&mut self) -> RunResult {
        let horizon = self.config.horizon();
        self.prime();
        let wall_start = std::time::Instant::now();
        while self.queue.events_processed() < self.config.max_events {
            let Some((now, ev)) = self.queue.pop_until(horizon) else {
                break;
            };
            self.dispatch(now, ev);
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.flush();
        }
        self.stats.finish(
            self.topo.num_switches(),
            self.queue.events_processed(),
            wall_start.elapsed(),
        )
    }

    /// Run with generation stopped at `stop_generation`, continuing until
    /// every event has drained (all in-flight packets delivered) or
    /// `hard_deadline` passes. Returns the result and whether the network
    /// fully drained — the deadlock-freedom check used by the test suite.
    pub fn run_until_drained(
        &mut self,
        stop_generation: SimTime,
        hard_deadline: SimTime,
    ) -> (RunResult, bool) {
        self.gen_deadline = stop_generation;
        self.prime();
        let wall_start = std::time::Instant::now();
        let mut drained = true;
        while let Some((now, ev)) = self.queue.pop_until(hard_deadline) {
            self.dispatch(now, ev);
            if self.queue.events_processed() >= self.config.max_events {
                drained = false;
                break;
            }
        }
        drained &= self.queue.is_empty();
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.flush();
        }
        let result = self.stats.finish(
            self.topo.num_switches(),
            self.queue.events_processed(),
            wall_start.elapsed(),
        );
        // Packets dropped at full source queues never entered the fabric,
        // and packets lost on a failed link are resolved, not in flight —
        // every other generated packet must have been delivered.
        let fully_drained = drained
            && result.delivered + result.drops_in_transit == result.generated - result.source_drops;
        (result, fully_drained)
    }

    /// Whether every buffer is empty, every credit counter restored to
    /// capacity and every source queue empty — the quiescence invariant
    /// after a full drain.
    pub fn is_quiescent(&self) -> bool {
        let cap = self.config.vl_buffer_credits;
        self.switches.iter().all(|sw| {
            sw.inputs.iter().all(|ip| {
                ip.vls
                    .iter()
                    .all(|b| b.is_empty() && b.occupied() == Credits::ZERO)
            }) && sw.outputs.iter().all(|op| {
                op.credits
                    .as_ref()
                    .is_none_or(|cs| cs.iter().all(|&c| c == cap))
            })
        }) && self
            .hosts
            .iter()
            .all(|h| h.queue.is_empty() && h.credits.iter().all(|&c| c == cap))
    }

    /// Packets still resident in the fabric: everything buffered in
    /// switch VL buffers plus everything waiting in host source queues.
    /// After a drain this is exactly the `in-flight` term of the
    /// conservation invariant `generated = delivered + dropped +
    /// in-flight`.
    pub fn residual_packets(&self) -> usize {
        self.switches
            .iter()
            .flat_map(|sw| sw.inputs.iter())
            .flat_map(|ip| ip.vls.iter())
            .map(|b| b.len())
            .sum::<usize>()
            + self.hosts.iter().map(|h| h.queue.len()).sum::<usize>()
    }

    /// Per-VL credit-conservation audit: after a full drain every
    /// sender-side counter on a *live* link and every host counter on a
    /// live attachment must be back at capacity. Returns one
    /// human-readable line per violation (empty means conserved); ports
    /// still masked by an open fault window are skipped, since their
    /// counters are only re-synchronized when the link retrains.
    pub fn credit_audit(&self) -> Vec<String> {
        let cap = self.config.vl_buffer_credits;
        let mut out = Vec::new();
        for (si, sw) in self.switches.iter().enumerate() {
            for (p, op) in sw.outputs.iter().enumerate() {
                if !sw.link_up[p] {
                    continue;
                }
                let Some(cs) = op.credits.as_ref() else {
                    continue;
                };
                for (v, &c) in cs.iter().enumerate() {
                    if c != cap {
                        out.push(format!(
                            "switch {si} port {p} vl {v}: {}/{} credits",
                            c.count(),
                            cap.count()
                        ));
                    }
                }
            }
        }
        for (hi, h) in self.hosts.iter().enumerate() {
            let (sw, port) = self.topo.host_attachment(HostId(hi as u16));
            if !self.switches[sw.index()].link_up[port.index()] {
                continue;
            }
            for (v, &c) in h.credits.iter().enumerate() {
                if c != cap {
                    out.push(format!(
                        "host {hi} vl {v}: {}/{} credits",
                        c.count(),
                        cap.count()
                    ));
                }
            }
        }
        out
    }

    /// Per-(switch, output port) link utilization: cumulative
    /// transmission time divided by elapsed simulated time. A congestion
    /// probe — under pure up\*/down\* routing the ports around the tree
    /// root run visibly hotter than the rest (the §5.2.1 effect).
    pub fn port_utilization(&self) -> Vec<Vec<f64>> {
        let elapsed = self.queue.now().as_ns().max(1) as f64;
        self.switches
            .iter()
            .map(|sw| {
                sw.outputs
                    .iter()
                    .map(|op| op.busy_ns_total as f64 / elapsed)
                    .collect()
            })
            .collect()
    }

    /// Mean utilization of a switch's inter-switch links.
    pub fn switch_link_utilization(&self, s: SwitchId) -> f64 {
        let util = &self.port_utilization()[s.index()];
        let mut sum = 0.0;
        let mut n = 0usize;
        for (p, u) in util.iter().enumerate() {
            let is_switch_link = self
                .topo
                .endpoint(s, PortIndex(p as u8))
                .is_some_and(|ep| ep.node.is_switch());
            if is_switch_link {
                sum += u;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Seed the event queue: every host's first synthetic generation, or
    /// the script's first entry in trace-driven mode. Idempotent.
    fn prime(&mut self) {
        if self.primed {
            return;
        }
        self.primed = true;
        // Faults are plain events in the queue, so their application is
        // serialized with packet events at deterministic points — a
        // fault-driven run stays bit-identical across queue backends.
        for idx in 0..self.faults.len() {
            self.queue
                .schedule(self.faults[idx].at, Event::Fault { idx });
        }
        // The telemetry probe rides the event queue like everything else,
        // so sampling points are serialized deterministically across
        // backends. Disabled runs schedule nothing.
        if let Some(t) = self.telemetry.as_deref() {
            let at = SimTime::from_ns(t.cadence_ns());
            if at <= self.config.horizon() {
                self.queue.schedule(at, Event::TelemetrySample);
            }
        }
        // Likewise the stall watchdog: its checks are ordinary events at
        // deterministic times, so recorded runs stay bit-identical across
        // queue backends.
        if let Some(wd) = self.recorder.as_deref().and_then(|r| r.opts().watchdog) {
            let at = SimTime::from_ns(wd.check_every_ns);
            if at <= self.config.horizon() {
                self.queue.schedule(at, Event::WatchdogCheck);
            }
        }
        if let Some(script) = self.script {
            if let Some(first) = script.packets().first() {
                if first.at < self.gen_deadline {
                    self.queue
                        .schedule(first.at, Event::GenerateScripted { idx: 0 });
                }
            }
            return;
        }
        for h in 0..self.hosts.len() {
            let dt = self.hosts[h]
                .gen
                .as_mut()
                .expect("synthetic mode")
                .next_interarrival_ns();
            let at = SimTime::from_ns(dt);
            if at < self.gen_deadline {
                self.queue.schedule(
                    at,
                    Event::Generate {
                        host: HostId(h as u16),
                    },
                );
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Generate { host } => self.on_generate(now, host),
            Event::GenerateScripted { idx } => self.on_generate_scripted(now, idx),
            Event::TryInject { host } => self.try_inject(now, host),
            Event::HeaderArrive {
                sw,
                port,
                vl,
                packet,
            } => self.on_header_arrive(now, sw, port, vl, packet),
            Event::RouteDone {
                sw,
                port,
                vl,
                handle,
            } => self.on_route_done(now, sw, port, vl, handle),
            Event::Arbitrate { sw } => {
                self.switches[sw.index()].arb_pending = false;
                self.arbitrate(now, sw);
            }
            Event::TxDone {
                sw,
                port,
                vl,
                handle,
            } => self.on_tx_done(now, sw, port, vl, handle),
            Event::CreditReturn {
                target,
                port,
                vl,
                credits,
            } => self.on_credit_return(now, target, port, vl, credits),
            Event::Deliver { host, packet } => {
                self.trace(packet.id, now, TraceStep::Delivered { host });
                if let Some(r) = self.recorder.as_deref_mut() {
                    let latency_ns = now.since(packet.generated_at);
                    r.record(
                        None,
                        now,
                        FlightEvent::Delivered {
                            packet: packet.id,
                            host,
                            latency_ns,
                        },
                    );
                    if r.wants_latency_trigger(latency_ns) {
                        r.trigger(now, TriggerCause::LatencyThreshold, None, Some(packet.id));
                    }
                }
                self.stats.on_delivered(&packet, now);
            }
            Event::Fault { idx } => self.on_fault(now, idx),
            Event::ResweepDone => self.on_resweep_done(now),
            Event::TelemetrySample => self.on_telemetry_sample(now),
            Event::WatchdogCheck => self.on_watchdog_check(now),
        }
    }

    /// Take one telemetry sample of every VL buffer in the fabric, hand
    /// it to the sink, and reschedule the probe one cadence later (while
    /// the horizon allows).
    fn on_telemetry_sample(&mut self, now: SimTime) {
        let nvls = self.config.data_vls as usize;
        let nports = self.topo.ports_per_switch() as usize;
        let nsw = self.switches.len();
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        let switches = &self.switches;
        t.record_sample(
            now,
            nvls,
            |s, p, v| &switches[s].inputs[p].vls[v],
            nsw,
            nports,
        );
        let next = now.plus_ns(t.cadence_ns());
        if next <= self.config.horizon() {
            self.queue.schedule(next, Event::TelemetrySample);
        }
    }

    /// One stall-watchdog pass: check every (switch, input port, VL)
    /// buffer for forward progress, classify stalled buffers by the
    /// liveness of their escape path, and reschedule one cadence later
    /// (while the horizon allows).
    fn on_watchdog_check(&mut self, now: SimTime) {
        let Some(wd) = self.recorder.as_deref().and_then(|r| r.opts().watchdog) else {
            return;
        };
        if !self.recorder.as_deref().is_some_and(|r| r.frozen()) {
            let nports = self.topo.ports_per_switch() as usize;
            let nvls = self.config.data_vls as usize;
            for si in 0..self.switches.len() {
                for ip in 0..nports {
                    for vl in 0..nvls {
                        self.watchdog_check_buffer(
                            now,
                            SwitchId(si as u16),
                            ip,
                            vl,
                            wd.stall_after_ns,
                        );
                    }
                }
            }
        }
        let next = now.plus_ns(wd.check_every_ns);
        if next <= self.config.horizon() {
            self.queue.schedule(next, Event::WatchdogCheck);
        }
    }

    /// Check one buffer: stalled means occupied, not mid-transmission,
    /// head routed, and no forward progress for `stall_after_ns`. A
    /// stalled buffer is classified by its head packet's *escape* path
    /// (the deadlock-freedom invariant guarantees escape queues drain,
    /// so a lively escape path means the stall resolves); a suspected
    /// wedge logs a [`FlightEvent::Stall`] and fires the freeze trigger.
    fn watchdog_check_buffer(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        ip: usize,
        vl: usize,
        stall_after_ns: u64,
    ) {
        let st = &self.switches[sw.index()];
        let buf = &st.inputs[ip].vls[vl];
        if buf.is_empty() || buf.has_in_flight() {
            return;
        }
        let head = buf.get(0);
        let Some(route) = head.route.as_ref() else {
            return; // still in the routing pipeline: not stall-eligible
        };
        let waited = self
            .recorder
            .as_deref()
            .map_or(0, |r| r.stalled_for(sw, ip, vl, now));
        if waited < stall_after_ns {
            return;
        }
        let op = route.escape;
        let escape_link_up = st.link_up[op.index()];
        let out = &st.outputs[op.index()];
        let escape_streaming = out.busy_until > now;
        let out_vl = st.sl2vl.vl_for(PortIndex(ip as u8), op, head.packet.sl);
        let escape_credits_ok = match out.credits.as_ref() {
            None => true,
            Some(cs) => cs[out_vl.index()] >= head.packet.credits(),
        };
        let packet_id = head.packet.id;
        let since_return = self
            .recorder
            .as_deref()
            .and_then(|r| r.last_credit_return_at(sw, op))
            .map(|t| now.since(t));
        let class = classify_stall(
            escape_link_up,
            escape_streaming,
            escape_credits_ok,
            since_return,
            stall_after_ns,
        );
        let Some(r) = self.recorder.as_deref_mut() else {
            return;
        };
        if r.should_log_stall(sw, ip, vl, class) {
            r.record(
                Some(sw),
                now,
                FlightEvent::Stall {
                    port: PortIndex(ip as u8),
                    vl: VirtualLane(vl as u8),
                    packet: packet_id,
                    waited_ns: waited,
                    class,
                },
            );
            if class == StallClass::SuspectedWedge {
                r.trigger(now, TriggerCause::SuspectedWedge, Some(sw), Some(packet_id));
            }
        }
    }

    /// Raise the fault-mask depth of one port. Returns `true` when the
    /// port transitioned from live to masked.
    fn mask_port(&mut self, s: SwitchId, p: PortIndex, by_switch: bool) -> bool {
        let st = &mut self.switches[s.index()];
        st.down_depth[p.index()] += 1;
        if by_switch {
            st.switch_down_depth[p.index()] += 1;
        }
        let transitioned = st.down_depth[p.index()] == 1;
        if transitioned {
            st.link_up[p.index()] = false;
        }
        transitioned
    }

    /// Lower the fault-mask depth of one port. Returns `true` when the
    /// port transitioned from masked back to live (overlapping faults
    /// keep it masked until the last one clears).
    fn unmask_port(&mut self, s: SwitchId, p: PortIndex, by_switch: bool) -> bool {
        let st = &mut self.switches[s.index()];
        let was = st.down_depth[p.index()];
        st.down_depth[p.index()] = was.saturating_sub(1);
        if by_switch {
            st.switch_down_depth[p.index()] = st.switch_down_depth[p.index()].saturating_sub(1);
        }
        let live = was == 1;
        if live {
            st.link_up[p.index()] = true;
        }
        live
    }

    /// Re-synchronize the `s → peer` sender-side credit counters from the
    /// receiver's actual free space (link retraining resets flow
    /// control); space held by residencies still draining comes back
    /// through their normal CreditReturns.
    fn resync_link_credits(
        &mut self,
        now: SimTime,
        s: SwitchId,
        p: PortIndex,
        peer: SwitchId,
        pp: PortIndex,
    ) {
        let free: InlineVec<Credits, 16> = self.switches[peer.index()].inputs[pp.index()]
            .vls
            .iter()
            .map(|b| b.free())
            .collect();
        if let Some(cs) = self.switches[s.index()].outputs[p.index()].credits.as_mut() {
            for (c, f) in cs.iter_mut().zip(free.iter()) {
                *c = *f;
            }
        }
        self.schedule_arbitrate(now, s);
    }

    /// Apply one fault-schedule entry. Downing a link masks both port
    /// directions; downing a switch atomically masks every wired port of
    /// the switch in both directions (in-flight packets toward it are
    /// lost, its own buffered packets are stranded until it returns — a
    /// power-cycled switch that kept its buffer RAM, chosen so pending
    /// buffer residencies stay valid). The matching up event restores the
    /// ports and re-synchronizes sender-side credit counters from the
    /// receiver buffers. Redundant events (downing a dead link, upping a
    /// live one) are ignored.
    fn on_fault(&mut self, now: SimTime, idx: usize) {
        let f = self.faults[idx];
        match f.kind {
            FaultKind::LinkDown => {
                if !self.switches[f.a.index()].link_up[f.pa.index()] {
                    return;
                }
                self.mask_port(f.a, f.pa, false);
                self.mask_port(f.b, f.pb, false);
                self.active_faults += 1;
                self.stats.on_fault(now);
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.record(Some(f.a), now, FlightEvent::LinkDown { port: f.pa });
                    r.record(Some(f.b), now, FlightEvent::LinkDown { port: f.pb });
                }
            }
            FaultKind::LinkUp => {
                if self.switches[f.a.index()].link_up[f.pa.index()] {
                    return;
                }
                self.unmask_port(f.a, f.pa, false);
                self.unmask_port(f.b, f.pb, false);
                self.active_faults -= 1;
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.record(Some(f.a), now, FlightEvent::LinkUp { port: f.pa });
                    r.record(Some(f.b), now, FlightEvent::LinkUp { port: f.pb });
                }
                for (s, p, peer, pp) in [(f.a, f.pa, f.b, f.pb), (f.b, f.pb, f.a, f.pa)] {
                    self.resync_link_credits(now, s, p, peer, pp);
                }
            }
            FaultKind::SwitchDown => self.apply_switch_fault(now, f.a, true),
            FaultKind::SwitchUp => self.apply_switch_fault(now, f.a, false),
        }
        if self.recovery == RecoveryPolicy::SmResweep {
            self.queue
                .schedule(now.plus_ns(self.resweep_latency_ns), Event::ResweepDone);
        }
    }

    /// Down or up a whole switch: every inter-switch link is masked or
    /// unmasked in both directions, every host-facing port on the switch
    /// side. At switch-up, each link whose two sides both came back live
    /// gets its sender credits re-synchronized; attached hosts get their
    /// credit counters rebuilt from the receiver's free space — credits
    /// they spent on packets that died at the masked port never return,
    /// and without the resync they would be leaked forever.
    fn apply_switch_fault(&mut self, now: SimTime, s: SwitchId, down: bool) {
        if self.dead_switches[s.index()] == down {
            return; // redundant (already in the requested state)
        }
        self.dead_switches[s.index()] = down;
        if down {
            self.active_faults += 1;
            self.stats.on_fault(now);
        } else {
            self.active_faults -= 1;
        }
        if let Some(r) = self.recorder.as_deref_mut() {
            let ev = if down {
                FlightEvent::SwitchDown { sw: s }
            } else {
                FlightEvent::SwitchUp { sw: s }
            };
            r.record(Some(s), now, ev);
        }
        let neighbors: InlineVec<(PortIndex, SwitchId, PortIndex), MAX_PORTS> =
            self.topo.switch_neighbors(s).collect();
        for &(p, peer, pp) in neighbors.iter() {
            if down {
                self.mask_port(s, p, true);
                if self.mask_port(peer, pp, true) {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.record(Some(peer), now, FlightEvent::LinkDown { port: pp });
                    }
                }
            } else {
                let live_s = self.unmask_port(s, p, true);
                let live_peer = self.unmask_port(peer, pp, true);
                if live_peer {
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.record(Some(peer), now, FlightEvent::LinkUp { port: pp });
                    }
                }
                if live_s && live_peer {
                    self.resync_link_credits(now, s, p, peer, pp);
                    self.resync_link_credits(now, peer, pp, s, p);
                }
            }
        }
        let attached: InlineVec<(PortIndex, HostId), MAX_PORTS> =
            self.topo.attached_hosts(s).collect();
        for &(p, h) in attached.iter() {
            if down {
                self.mask_port(s, p, true);
            } else if self.unmask_port(s, p, true) {
                let free: InlineVec<Credits, 16> = self.switches[s.index()].inputs[p.index()]
                    .vls
                    .iter()
                    .map(|b| b.free())
                    .collect();
                for (c, f) in self.hosts[h.index()].credits.iter_mut().zip(free.iter()) {
                    *c = *f;
                }
                self.try_inject(now, h);
            }
        }
        if !down {
            self.schedule_arbitrate(now, s);
        }
    }

    /// The SM re-sweep completes: install routing rebuilt on the
    /// *current* degraded topology and re-route already-buffered packets
    /// against it. If every link is back up the primary tables are
    /// reinstated; if the degraded fabric is disconnected the sweep
    /// fails and the old tables stay live.
    fn on_resweep_done(&mut self, now: SimTime) {
        if self.active_faults == 0 {
            self.recovery_routing = None;
            self.stats.on_recovery_installed(now);
        } else {
            match self.rebuild_degraded_routing() {
                Ok(r) => {
                    self.recovery_routing = Some(r);
                    self.stats.on_recovery_installed(now);
                }
                Err(_) => {
                    self.stats.on_resweep_failed();
                    return;
                }
            }
        }
        // Every freshly installed table set — degraded recovery tables or
        // the reinstated primaries — is certified deadlock-free before
        // traffic resumes on it.
        self.certify_escape(false);
        self.reroute_buffered();
        for s in 0..self.switches.len() {
            self.schedule_arbitrate(now, SwitchId(s as u16));
        }
    }

    /// Certify the currently live tables' escape paths acyclic with
    /// [`check_escape_routes`] (the up\*/down\* deadlock-freedom
    /// invariant), feeding the verdict into the run statistics. With
    /// `alternate` set the APM alternate path set is walked instead of
    /// the primary one. Purely observational: no RNG, no control flow —
    /// certified runs stay bit-identical across queue backends.
    fn certify_escape(&mut self, alternate: bool) {
        let ok = {
            let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
            check_escape_routes(self.topo, |s, h| {
                let dlid = if alternate {
                    routing.apm_dlid(h, false).ok()?
                } else {
                    routing.dlid(h, false).ok()?
                };
                routing.route_shared(s, dlid).ok().map(|r| r.escape)
            })
            .is_ok()
        };
        self.stats.on_escape_certification(ok);
    }

    /// Test hook: run an escape certification against an arbitrary
    /// next-hop function through the production stats path, so the
    /// failure-counting plumbing can be exercised with a deliberately
    /// cyclic table.
    #[doc(hidden)]
    pub fn debug_certify_with(&mut self, next_hop: impl Fn(SwitchId, HostId) -> Option<PortIndex>) {
        let ok = check_escape_routes(self.topo, next_hop).is_ok();
        self.stats.on_escape_certification(ok);
    }

    /// Rebuild routing on the degraded topology, in *physical* id order
    /// so the LID space is unchanged and DLIDs of in-flight packets stay
    /// valid (the SMP-level SM pipeline discovers in BFS order and
    /// correlates by GUID; the in-sim re-sweep models its outcome, not
    /// its numbering).
    fn rebuild_degraded_routing(&self) -> Result<FaRouting, IbaError> {
        let mut b = TopologyBuilder::new(self.topo.num_switches(), self.topo.ports_per_switch());
        for s in self.topo.switch_ids() {
            for (p, peer, pp) in self.topo.switch_neighbors(s) {
                if peer.0 > s.0 && self.switches[s.index()].link_up[p.index()] {
                    b.connect_ports(s, p, peer, pp)?;
                }
            }
        }
        for h in self.topo.host_ids() {
            let (sw, port) = self.topo.host_attachment(h);
            b.attach_host_at(sw, port)?;
        }
        let degraded = b.build()?; // errors when the dead link disconnected the fabric
        let cfg = *self.routing.config();
        if self.routing.has_apm() {
            FaRouting::build_with_apm(&degraded, cfg)
        } else if self.routing.source_multipath().is_some() {
            FaRouting::build_source_multipath(&degraded, cfg)
        } else {
            let caps: Vec<bool> = self
                .topo
                .switch_ids()
                .map(|s| self.routing.switch_adaptive(s))
                .collect();
            FaRouting::build_mixed(&degraded, cfg, &caps)
        }
    }

    /// Point every routed, not-in-flight buffered packet at the freshly
    /// installed tables (packets routed before the sweep may hold
    /// options through a dead link and would stall forever).
    fn reroute_buffered(&mut self) {
        let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
        for (si, st) in self.switches.iter_mut().enumerate() {
            let sw = SwitchId(si as u16);
            for input in st.inputs.iter_mut() {
                for buf in input.vls.iter_mut() {
                    buf.reroute_with(|p| routing.route_shared(sw, p.dlid).ok());
                }
            }
        }
    }

    fn on_generate(&mut self, now: SimTime, host: HostId) {
        // APM migration: while any link is down, new packets address the
        // alternate path set, steering them off the primary tree without
        // waiting for the SM.
        let migrate = self.recovery == RecoveryPolicy::ApmMigrate && self.active_faults > 0;
        if migrate && !self.apm_certified {
            // First migration onto the alternate path set: certify its
            // escape chains acyclic before any packet addresses them
            // (once per run — the APM tables never change).
            self.apm_certified = true;
            self.certify_escape(true);
        }
        let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
        let h = &mut self.hosts[host.index()];
        let gp = h.gen.as_mut().expect("synthetic mode").generate();
        let dlid = match routing.source_multipath() {
            // Source-selected multipath: rotate over the destination's
            // whole address range; each address is a distinct fixed path.
            Some(x) => {
                let offset = h.mp_cursor % x;
                h.mp_cursor = (h.mp_cursor + 1) % x;
                routing
                    .lid_map()
                    .lid_for(gp.dst, offset)
                    .expect("offset within the LMC range")
            }
            None if migrate => routing
                .apm_dlid(gp.dst, gp.adaptive)
                .expect("APM tables checked in with_faults"),
            None => routing
                .dlid(gp.dst, gp.adaptive)
                .expect("validated at construction"),
        };
        self.enqueue_generated(now, host, gp.dst, dlid, gp.sl, gp.size_bytes);

        let dt = self.hosts[host.index()]
            .gen
            .as_mut()
            .expect("synthetic mode")
            .next_interarrival_ns();
        if now.plus_ns(dt) < self.gen_deadline {
            self.queue
                .schedule(now.plus_ns(dt), Event::Generate { host });
        }
        self.try_inject(now, host);
    }

    fn on_generate_scripted(&mut self, now: SimTime, idx: usize) {
        let script = self.script.expect("scripted mode");
        let entry = script.packets()[idx];
        // Scripted path sets are explicit traces and are honoured as
        // written even under ApmMigrate; only the tables may be swapped
        // by an SM re-sweep.
        let routing = self.recovery_routing.as_ref().unwrap_or(self.routing);
        let dlid = match (routing.source_multipath(), entry.path_set) {
            (Some(x), _) => {
                let h = &mut self.hosts[entry.src.index()];
                let offset = h.mp_cursor % x;
                h.mp_cursor = (h.mp_cursor + 1) % x;
                routing
                    .lid_map()
                    .lid_for(entry.dst, offset)
                    .expect("offset within the LMC range")
            }
            (None, PathSet::Primary) => routing
                .dlid(entry.dst, entry.adaptive)
                .expect("validated at construction"),
            (None, PathSet::Alternate) => routing
                .apm_dlid(entry.dst, entry.adaptive)
                .expect("validated at construction"),
        };
        self.enqueue_generated(now, entry.src, entry.dst, dlid, entry.sl, entry.size_bytes);
        if let Some(next) = script.packets().get(idx + 1) {
            if next.at < self.gen_deadline {
                self.queue
                    .schedule(next.at, Event::GenerateScripted { idx: idx + 1 });
            }
        }
        self.try_inject(now, entry.src);
    }

    /// Create the packet and place it in the source queue (or drop it at
    /// a full finite queue).
    fn enqueue_generated(
        &mut self,
        now: SimTime,
        host: HostId,
        dst: HostId,
        dlid: iba_core::Lid,
        sl: iba_core::ServiceLevel,
        size_bytes: u32,
    ) {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let h = &mut self.hosts[host.index()];
        let packet = Packet {
            id,
            src: host,
            dst,
            dlid,
            sl,
            size_bytes,
            generated_at: now,
            seq: h.next_seq,
            hops: 0,
            escape_uses: 0,
        };
        h.next_seq += 1;
        let attached = h.attached_switch;
        let queue_full = self
            .config
            .host_queue_capacity
            .is_some_and(|cap| h.queue.len() >= cap);
        if !queue_full {
            h.queue.push_back(packet);
        }
        self.stats.on_generated(now);
        if queue_full {
            // Finite CA send queue: the new packet is discarded.
            self.stats.on_source_drop();
            self.trace(
                id,
                now,
                TraceStep::Dropped {
                    sw: attached,
                    cause: DropCause::SourceQueueFull,
                },
            );
            if let Some(r) = self.recorder.as_deref_mut() {
                r.record(
                    None,
                    now,
                    FlightEvent::Dropped {
                        packet: id,
                        cause: DropCause::SourceQueueFull,
                    },
                );
                if r.wants_drop_trigger() {
                    r.trigger(now, TriggerCause::Drop, None, Some(id));
                }
            }
        } else {
            self.trace(id, now, TraceStep::Generated { host });
        }
    }

    fn try_inject(&mut self, now: SimTime, host: HostId) {
        let h = &mut self.hosts[host.index()];
        if h.tx_busy_until > now {
            return; // a TryInject is already scheduled at tx_busy_until
        }
        let Some(front) = h.queue.front() else {
            return;
        };
        let vl = VirtualLane(front.sl.0 % self.config.data_vls);
        let need = front.credits();
        if h.credits[vl.index()] < need {
            return; // woken again by CreditReturn
        }
        let packet = h.queue.pop_front().expect("checked above");
        let traced_id = packet.id;
        h.credits[vl.index()] -= need;
        let ser = self.config.phys.serialization_ns(packet.size_bytes);
        h.tx_busy_until = now.plus_ns(ser);
        let queue_len = h.queue.len();
        let sw = h.attached_switch;
        let (_, port) = self.topo.host_attachment(host);
        self.stats.on_injected(queue_len);
        self.trace(traced_id, now, TraceStep::Injected);
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(
                None,
                now,
                FlightEvent::Injected {
                    packet: traced_id,
                    host,
                },
            );
        }
        self.queue.schedule(
            now.plus_ns(self.config.phys.propagation_ns),
            Event::HeaderArrive {
                sw,
                port,
                vl,
                packet,
            },
        );
        self.queue
            .schedule(now.plus_ns(ser), Event::TryInject { host });
    }

    /// Account one in-transit loss at `sw`: stats (per cause), journey
    /// trace, flight-recorder event and (when configured) the drop
    /// trigger.
    fn drop_in_transit(&mut self, now: SimTime, sw: SwitchId, id: PacketId, cause: DropCause) {
        self.stats.on_transit_drop(now, cause);
        self.trace(id, now, TraceStep::Dropped { sw, cause });
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(Some(sw), now, FlightEvent::Dropped { packet: id, cause });
            if r.wants_drop_trigger() {
                r.trigger(now, TriggerCause::Drop, Some(sw), Some(id));
            }
        }
    }

    fn on_header_arrive(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        packet: Packet,
    ) {
        if !self.switches[sw.index()].link_up[port.index()] {
            // The link (or the whole receiving switch) died while the
            // packet was on the wire: with no receiver it is lost —
            // virtual cut-through has no retransmission below the
            // transport layer. The sender's stale credit counter is
            // re-synchronized at link-up.
            let cause = if self.switches[sw.index()].switch_down_depth[port.index()] > 0 {
                DropCause::SwitchDown
            } else {
                DropCause::LinkDown
            };
            self.drop_in_transit(now, sw, packet.id, cause);
            return;
        }
        if self.corrupt_prob > 0.0 && self.corrupt_rng.chance(self.corrupt_prob) {
            // CRC failure at the receiver. The link is healthy, so the
            // space the packet would have occupied must still be
            // advertised back to the sender — dropping without the
            // return would leak credits from the upstream counter.
            self.drop_in_transit(now, sw, packet.id, DropCause::Corrupted);
            let upstream = self.topo.endpoint(sw, port).expect("input port is wired");
            self.queue.schedule(
                now.plus_ns(self.config.phys.propagation_ns),
                Event::CreditReturn {
                    target: upstream.node,
                    port: upstream.port,
                    vl,
                    credits: packet.credits(),
                },
            );
            return;
        }
        let id = packet.id;
        let ready_at = now.plus_ns(self.config.phys.routing_delay_ns);
        self.trace(id, now, TraceStep::ArrivedAt { sw, port, vl });
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(
                Some(sw),
                now,
                FlightEvent::Arrived {
                    packet: id,
                    port,
                    vl,
                },
            );
            // A packet landing in an empty buffer starts a fresh
            // forward-progress clock for the watchdog.
            if self.switches[sw.index()].inputs[port.index()].vls[vl.index()].is_empty() {
                r.note_progress(sw, port.index(), vl.index(), now);
            }
        }
        let handle =
            self.switches[sw.index()].inputs[port.index()].vls[vl.index()].push(packet, ready_at);
        self.queue.schedule(
            ready_at,
            Event::RouteDone {
                sw,
                port,
                vl,
                handle,
            },
        );
    }

    fn on_route_done(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    ) {
        let dlid = {
            let buf = &self.switches[sw.index()].inputs[port.index()].vls[vl.index()];
            buf.get_slot(handle).map(|p| p.packet.dlid)
        };
        let Some(dlid) = dlid else {
            return; // residency already gone (cannot happen before ready_at)
        };
        let route = self
            .cur_routing()
            .route_shared(sw, dlid)
            .expect("forwarding tables are fully programmed");
        self.switches[sw.index()].inputs[port.index()].vls[vl.index()].set_route_at(handle, route);
        self.schedule_arbitrate(now, sw);
    }

    fn on_tx_done(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        port: PortIndex,
        vl: VirtualLane,
        handle: SlotHandle,
    ) {
        let removed = self.switches[sw.index()].inputs[port.index()].vls[vl.index()]
            .remove_at(handle)
            .expect("tx-done packet still buffered");
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(
                Some(sw),
                now,
                FlightEvent::TailLeft {
                    packet: removed.packet.id,
                    port,
                    vl,
                },
            );
            // A freed slot is forward progress for this buffer.
            r.note_progress(sw, port.index(), vl.index(), now);
        }
        // Return the freed credits to whoever feeds this input port.
        let upstream = self.topo.endpoint(sw, port).expect("input port is wired");
        self.queue.schedule(
            now.plus_ns(self.config.phys.propagation_ns),
            Event::CreditReturn {
                target: upstream.node,
                port: upstream.port,
                vl,
                credits: removed.packet.credits(),
            },
        );
        self.schedule_arbitrate(now, sw);
    }

    fn on_credit_return(
        &mut self,
        now: SimTime,
        target: NodeRef,
        port: PortIndex,
        vl: VirtualLane,
        credits: Credits,
    ) {
        match target {
            NodeRef::Switch(s) => {
                let st = &mut self.switches[s.index()];
                if !st.link_up[port.index()] {
                    return; // the return was on the wire of a dead link
                }
                let cap = self.config.vl_buffer_credits;
                if let Some(cs) = st.outputs[port.index()].credits.as_mut() {
                    // Clamp at capacity: after a link-up credit reset, a
                    // return already in flight before the fault could
                    // otherwise overshoot. A no-op in fault-free runs.
                    cs[vl.index()] = (cs[vl.index()] + credits).min(cap);
                }
                if let Some(r) = self.recorder.as_deref_mut() {
                    r.record(
                        Some(s),
                        now,
                        FlightEvent::CreditReturned {
                            port,
                            vl,
                            credits: credits.count(),
                        },
                    );
                    r.note_credit_return(s, port, now);
                }
                self.schedule_arbitrate(now, s);
            }
            NodeRef::Host(h) => {
                // Clamp at capacity for the same reason as the switch
                // path: a switch-up resync rebuilds the host counter from
                // free space, and a return already on the wire would
                // otherwise overshoot. A no-op in fault-free runs.
                let cap = self.config.vl_buffer_credits;
                let c = &mut self.hosts[h.index()].credits[vl.index()];
                *c = (*c + credits).min(cap);
                self.try_inject(now, h);
            }
        }
    }

    fn schedule_arbitrate(&mut self, now: SimTime, sw: SwitchId) {
        let st = &mut self.switches[sw.index()];
        if !st.arb_pending {
            st.arb_pending = true;
            self.queue.schedule(now, Event::Arbitrate { sw });
        }
    }

    /// Process up to `max_events` further events (priming the generators
    /// on first use), stopping early at the configured horizon. Returns
    /// the number of events actually processed. A stepping hook for
    /// benchmarks and diagnostics; [`Self::run`] and
    /// [`Self::run_until_drained`] remain the measurement entry points.
    pub fn advance(&mut self, max_events: u64) -> u64 {
        self.prime();
        let horizon = self.config.horizon();
        let mut n = 0;
        while n < max_events {
            let Some((now, ev)) = self.queue.pop_until(horizon) else {
                break;
            };
            self.dispatch(now, ev);
            n += 1;
        }
        n
    }

    /// One §4.3 arbitration sweep over every switch at the current
    /// simulated time, returning the total number of grants. The
    /// microbenchmark probe for the arbitration hot path; grants made
    /// here reserve resources and schedule downstream events exactly as
    /// in-loop arbitration does.
    pub fn arbitrate_pass(&mut self) -> usize {
        let now = self.queue.now();
        let mut grants = 0;
        for s in 0..self.switches.len() {
            grants += self.arbitrate(now, SwitchId(s as u16));
        }
        grants
    }

    /// One arbitration pass: repeatedly grant feasible (input, output)
    /// matches until no further progress, with a round-robin cursor over
    /// input ports for fairness. Returns the number of grants made.
    fn arbitrate(&mut self, now: SimTime, sw: SwitchId) -> usize {
        let nports = self.topo.ports_per_switch() as usize;
        let mut grants = 0;
        loop {
            let mut progress = false;
            for k in 0..nports {
                let ip = (self.switches[sw.index()].rr_cursor + k) % nports;
                if self.switches[sw.index()].inputs[ip].read_busy_until > now {
                    continue;
                }
                if let Some(d) = self.pick_for_input(now, sw, ip) {
                    self.start_forward(now, sw, d);
                    progress = true;
                    grants += 1;
                }
            }
            let st = &mut self.switches[sw.index()];
            st.rr_cursor = (st.rr_cursor + 1) % nports;
            if !progress {
                break;
            }
        }
        grants
    }

    /// Find one forwardable candidate in input port `ip`'s buffers.
    fn pick_for_input(&mut self, now: SimTime, sw: SwitchId, ip: usize) -> Option<Decision> {
        let nvls = self.config.data_vls as usize;
        let start = self.switches[sw.index()].inputs[ip].vl_cursor;
        for k in 0..nvls {
            let vl = (start + k) % nvls;
            let cands = {
                let buf = &self.switches[sw.index()].inputs[ip].vls[vl];
                if buf.has_in_flight() {
                    continue;
                }
                let mut cands = buf.candidates(now, self.config.escape_order);
                if !self.routing.switch_adaptive(sw) {
                    // A plain deterministic IBA switch (§4.2 mixed
                    // fabrics) has a single FIFO read point: no escape
                    // head, no pointer redirection.
                    cands.retain(|&(idx, _)| idx == 0);
                }
                cands
            };
            let record = self.recorder.as_deref().is_some_and(|r| !r.frozen());
            for &(idx, read_point) in &cands {
                let mut scratch = OptionOutcomes::new();
                if let Some(d) = self.pick_option(
                    now,
                    sw,
                    ip,
                    vl,
                    idx,
                    read_point,
                    record.then_some(&mut scratch),
                ) {
                    if record {
                        // Park the granted candidate's option verdicts for
                        // `start_forward` to attach to the RouteDecision
                        // event; keeping them out of `Decision` spares the
                        // recorder-off path the ~100-byte copy per grant.
                        self.decision_options = scratch;
                    }
                    // Advance the VL cursor past the served lane.
                    self.switches[sw.index()].inputs[ip].vl_cursor = (vl + 1) % nvls;
                    return Some(d);
                }
                if record && !scratch.is_empty() {
                    // Every candidate option was rejected: log the full
                    // reason set (deduplicated per buffer).
                    let packet = self.switches[sw.index()].inputs[ip].vls[vl]
                        .get(idx)
                        .packet
                        .id;
                    if let Some(r) = self.recorder.as_deref_mut() {
                        r.record_blocked(sw, now, ip, vl, packet, &scratch);
                    }
                }
            }
        }
        None
    }

    /// §4.3/§4.4 output selection for one candidate packet: adaptive
    /// options first (minimal paths — the livelock-avoidance preference),
    /// gated by adaptive-queue credits; the escape option as fallback,
    /// gated by total credits.
    ///
    /// With the flight recorder armed, `rec` collects one
    /// [`OptionOutcome`] per candidate — including, when an adaptive
    /// option wins, the *observed* fate the escape option would have had
    /// — so recorded routing decisions carry their full alternative set.
    /// The observation never touches the RNG or any control flow, so
    /// recorded runs stay bit-identical to unrecorded ones.
    #[allow(clippy::too_many_arguments)]
    fn pick_option(
        &mut self,
        now: SimTime,
        sw: SwitchId,
        ip: usize,
        vl: usize,
        idx: usize,
        read_point: ReadPoint,
        mut rec: Option<&mut OptionOutcomes>,
    ) -> Option<Decision> {
        let cap = self.config.vl_buffer_credits;
        let st = &self.switches[sw.index()];
        let bp = st.inputs[ip].vls[vl].get(idx);
        let need = bp.packet.credits();
        let sl = bp.packet.sl;
        let route = bp.route.as_ref().expect("candidate is routed");

        let adaptive_allowed =
            read_point == ReadPoint::AdaptiveHead || self.config.adaptive_from_escape_head;
        if !adaptive_allowed {
            if let Some(o) = rec.as_deref_mut() {
                for &op in &route.adaptive {
                    o.push(OptionOutcome {
                        port: op,
                        escape: false,
                        verdict: OptionVerdict::AdaptiveRestricted,
                    });
                }
            }
        }

        // Collect feasible adaptive options with their free adaptive-queue
        // credits (host ports are infinite sinks). At most one option per
        // switch port, so the list lives on the stack — arbitration runs
        // once per event and must not allocate.
        let mut feasible: InlineVec<(PortIndex, VirtualLane, u32), MAX_PORTS> = InlineVec::new();
        if adaptive_allowed {
            for &op in &route.adaptive {
                if !st.link_up[op.index()] {
                    // Dead port: graceful degradation (§4.3).
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.note_stall(sw, op, StallCause::DeadPort);
                    }
                    if let Some(o) = rec.as_deref_mut() {
                        o.push(OptionOutcome {
                            port: op,
                            escape: false,
                            verdict: OptionVerdict::DeadPort,
                        });
                    }
                    continue;
                }
                let out = &st.outputs[op.index()];
                if out.busy_until > now {
                    if let Some(o) = rec.as_deref_mut() {
                        o.push(OptionOutcome {
                            port: op,
                            escape: false,
                            verdict: OptionVerdict::LinkBusy,
                        });
                    }
                    continue;
                }
                let out_vl = st.sl2vl.vl_for(PortIndex(ip as u8), op, sl);
                match out.credits.as_ref() {
                    None => feasible.push((op, out_vl, u32::MAX)),
                    Some(cs) => {
                        let avail = cs[out_vl.index()].adaptive_share(cap);
                        if avail >= need {
                            feasible.push((op, out_vl, avail.count()));
                        } else {
                            if let Some(t) = self.telemetry.as_deref_mut() {
                                t.note_stall(sw, op, StallCause::NoAdaptiveCredit);
                            }
                            if let Some(o) = rec.as_deref_mut() {
                                o.push(OptionOutcome {
                                    port: op,
                                    escape: false,
                                    verdict: OptionVerdict::NoAdaptiveCredit,
                                });
                            }
                        }
                    }
                }
            }
        }

        let adaptive_pick: Option<(PortIndex, VirtualLane, u32)> = match self.config.selection {
            SelectionPolicy::CreditWeighted => {
                // Most free adaptive-queue space wins; random tie-break
                // among equals keeps the load balanced.
                feasible.iter().map(|f| f.2).max().map(|best| {
                    let ties: InlineVec<_, MAX_PORTS> =
                        feasible.iter().filter(|f| f.2 == best).copied().collect();
                    ties[self.arb_rng.below(ties.len())]
                })
            }
            SelectionPolicy::RandomAdaptive => {
                (!feasible.is_empty()).then(|| feasible[self.arb_rng.below(feasible.len())])
            }
            SelectionPolicy::FirstFeasible => feasible.iter().min_by_key(|f| f.0).copied(),
        };

        if let Some(o) = rec.as_deref_mut() {
            for f in feasible.iter() {
                o.push(OptionOutcome {
                    port: f.0,
                    escape: false,
                    verdict: if adaptive_pick.map(|p| p.0) == Some(f.0) {
                        OptionVerdict::Selected
                    } else {
                        OptionVerdict::LostArbitration
                    },
                });
            }
        }

        if let Some((op, out_vl, _)) = adaptive_pick {
            if let Some(o) = rec.as_deref_mut() {
                // The escape option was never consulted (an adaptive
                // option won); observe the fate it *would* have had so
                // the recorded candidate set is complete. Observation
                // only — no RNG, no control flow.
                let ep = route.escape;
                let verdict = if !st.link_up[ep.index()] {
                    OptionVerdict::DeadPort
                } else if st.outputs[ep.index()].busy_until > now {
                    OptionVerdict::LinkBusy
                } else {
                    let evl = st.sl2vl.vl_for(PortIndex(ip as u8), ep, sl);
                    let fits = match st.outputs[ep.index()].credits.as_ref() {
                        None => true,
                        Some(cs) => cs[evl.index()] >= need,
                    };
                    if fits {
                        OptionVerdict::LostArbitration
                    } else {
                        OptionVerdict::NoEscapeCredit
                    }
                };
                o.push(OptionOutcome {
                    port: ep,
                    escape: true,
                    verdict,
                });
            }
            return Some(Decision {
                input: ip,
                vl,
                idx,
                handle: st.inputs[ip].vls[vl].handle_at(idx),
                packet_id: bp.packet.id,
                out_port: op,
                out_vl,
                via_escape: false,
                read_point,
            });
        }

        // Escape fallback: usable whenever the *total* credit count fits
        // the packet — it lands in the adaptive or escape region of the
        // downstream buffer depending on occupancy (§4.4).
        let op = route.escape;
        if !st.link_up[op.index()] {
            // Escape path severed: the packet waits for recovery (an SM
            // re-sweep re-routes it; under other policies it stays until
            // the link returns).
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_stall(sw, op, StallCause::DeadPort);
            }
            if let Some(o) = rec.as_deref_mut() {
                o.push(OptionOutcome {
                    port: op,
                    escape: true,
                    verdict: OptionVerdict::DeadPort,
                });
            }
            return None;
        }
        let out = &st.outputs[op.index()];
        if out.busy_until > now {
            if let Some(o) = rec.as_deref_mut() {
                o.push(OptionOutcome {
                    port: op,
                    escape: true,
                    verdict: OptionVerdict::LinkBusy,
                });
            }
            return None;
        }
        let out_vl = st.sl2vl.vl_for(PortIndex(ip as u8), op, sl);
        let ok = match out.credits.as_ref() {
            None => true,
            Some(cs) => cs[out_vl.index()] >= need,
        };
        if !ok {
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_stall(sw, op, StallCause::NoEscapeCredit);
            }
            if let Some(o) = rec.as_deref_mut() {
                o.push(OptionOutcome {
                    port: op,
                    escape: true,
                    verdict: OptionVerdict::NoEscapeCredit,
                });
            }
            return None;
        }
        if let Some(o) = rec {
            o.push(OptionOutcome {
                port: op,
                escape: true,
                verdict: OptionVerdict::Selected,
            });
        }
        Some(Decision {
            input: ip,
            vl,
            idx,
            handle: st.inputs[ip].vls[vl].handle_at(idx),
            packet_id: bp.packet.id,
            out_port: op,
            out_vl,
            via_escape: true,
            read_point,
        })
    }

    /// Commit a forwarding decision: reserve the resources, update the
    /// packet, and schedule the downstream events.
    fn start_forward(&mut self, now: SimTime, sw: SwitchId, d: Decision) {
        if self.telemetry.is_some() || self.recorder.is_some() {
            // Arbitration-pass latency: how long the packet sat routed in
            // the input buffer before the crossbar granted it.
            let ready_at = self.switches[sw.index()].inputs[d.input].vls[d.vl]
                .get(d.idx)
                .ready_at;
            let wait = now.since(ready_at);
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_forward(sw, d.via_escape, wait);
            }
            if let Some(r) = self.recorder.as_deref_mut() {
                // `decision_options` holds the verdict set `pick_for_input`
                // parked for this grant (stale contents are possible only
                // when frozen, where `record` discards the event anyway).
                r.record(
                    Some(sw),
                    now,
                    FlightEvent::RouteDecision {
                        packet: d.packet_id,
                        in_port: PortIndex(d.input as u8),
                        vl: VirtualLane(d.vl as u8),
                        out_port: d.out_port,
                        via_escape: d.via_escape,
                        from_escape_head: d.read_point == ReadPoint::EscapeHead,
                        waited_ns: wait,
                        options: self.decision_options.clone(),
                    },
                );
                // Winning arbitration is forward progress.
                r.note_progress(sw, d.input, d.vl, now);
            }
        }
        let st = &mut self.switches[sw.index()];
        let buf = &mut st.inputs[d.input].vls[d.vl];

        // Clone the packet for the downstream hop, updating its counters.
        let (packet, ser) = {
            let bp = buf.get(d.idx);
            debug_assert_eq!(bp.packet.id, d.packet_id);
            let mut p = bp.packet.clone();
            p.hops += 1;
            p.escape_uses += u32::from(d.via_escape);
            let ser = self.config.phys.serialization_ns(p.size_bytes);
            (p, ser)
        };
        buf.mark_in_flight(d.idx);
        st.inputs[d.input].read_busy_until = now.plus_ns(ser);
        let out = &mut st.outputs[d.out_port.index()];
        out.busy_until = now.plus_ns(ser);
        out.busy_ns_total += ser;
        if let Some(cs) = out.credits.as_mut() {
            cs[d.out_vl.index()] -= packet.credits();
        }

        if d.via_escape {
            self.stats.on_escape_forward();
        } else {
            self.stats.on_adaptive_forward();
        }
        self.trace(
            d.packet_id,
            now,
            TraceStep::Forwarded {
                sw,
                out_port: d.out_port,
                via_escape: d.via_escape,
                from_escape_head: d.read_point == ReadPoint::EscapeHead,
            },
        );

        let prop = self.config.phys.propagation_ns;
        let ep = self
            .topo
            .endpoint(sw, d.out_port)
            .expect("output port is wired");
        match ep.node {
            NodeRef::Switch(n) => {
                self.queue.schedule(
                    now.plus_ns(prop),
                    Event::HeaderArrive {
                        sw: n,
                        port: ep.port,
                        vl: d.out_vl,
                        packet,
                    },
                );
            }
            NodeRef::Host(h) => {
                self.queue
                    .schedule(now.plus_ns(ser + prop), Event::Deliver { host: h, packet });
            }
        }
        self.queue.schedule(
            now.plus_ns(ser),
            Event::TxDone {
                sw,
                port: PortIndex(d.input as u8),
                vl: VirtualLane(d.vl as u8),
                handle: d.handle,
            },
        );
    }
}
