//! The simulation coordinator.
//!
//! [`Network`] wires a [`Topology`] + [`FaRouting`] + [`WorkloadSpec`]
//! into a register-transfer-level simulation of an IBA subnet, following
//! §5.1 of the paper:
//!
//! * virtual cut-through switching: a packet is forwarded as soon as its
//!   header has been routed *and* the downstream VL buffer can hold the
//!   whole packet (credit check);
//! * credit-based flow control per VL, in 64-byte credits; the sender
//!   decrements its counter at transmission start, the receiver returns
//!   credits when the packet's tail leaves its buffer, and the return
//!   travels back with the link's propagation delay;
//! * the 100 ns switch routing time covers forwarding-table access,
//!   arbitration and crossbar setup — modelled as a pipeline delay
//!   between header arrival and arbitration eligibility;
//! * serialization at 4 ns/byte (1X link) and 100 ns propagation (20 m
//!   copper), both taken from [`iba_core::PhysParams`];
//! * the split adaptive/escape VL buffers, the per-VL credit split
//!   (`C_A`/`C_E`), and the §4.3 output selection at arbitration time.
//!
//! Hosts are open-loop sources with unbounded source queues and infinite
//! sink buffers (the paper measures fabric performance, not end-node
//! limits).
//!
//! ## Serial and parallel execution
//!
//! The event-handling machinery lives in the (private) `shard` module:
//! a `Shard` owns a connected group of switches, their attached hosts,
//! and a private event queue. This module is the coordinator around it:
//!
//! * **serial engine** (the default, `shards(1)`): one shard owns the
//!   whole fabric and the coordinator steps its queue directly —
//!   byte-identical to the historical single-queue engine;
//! * **parallel engine** (`shards(n)`, n > 1): the fabric is split by
//!   [`Partition::contiguous`] into `n` connected regions. Shards
//!   synchronize conservatively: every pending-event timestamp is
//!   collected, the global minimum plus the link propagation delay
//!   bounds a window, and each shard drains its queue up to (and
//!   excluding) the window end before any cross-shard message is
//!   exchanged. Since every cross-shard effect travels over a physical
//!   link (≥ one propagation delay in the future), no shard can receive
//!   an event earlier than the window it just executed — classic
//!   conservative link-latency lookahead.
//!
//! Cross-shard events carry canonical `(class, entity, counter)` keys so
//! each shard's queue order — and therefore the whole simulation — is
//! independent of thread interleaving and of the shard count: for a
//! fixed fabric, `shards(2)` and `shards(8)` produce identical results,
//! on any `threads(..)` setting and any event-queue backend. The
//! parallel engine uses per-switch RNG substreams and source-local
//! packet ids (the serial engine keeps its historical shared streams),
//! so serial and parallel results are each internally deterministic but
//! not numerically identical to each other.
//!
//! Three subsystems require the serial engine and are rejected by
//! `build()` when combined with `shards(n > 1)`: trace-driven replay
//! (a global script cursor), the flight recorder (globally ordered
//! rings), and [`RecoveryPolicy::SmResweep`] (a fabric-wide atomic
//! table swap).

use crate::config::{RecoveryPolicy, SimConfig};
use crate::fib::FibCache;
use crate::metrics::{fill_run_metrics, EngineProfile, WorkerProfile};
use crate::recorder::{FlightDump, FlightRecorder, RecorderOpts};
use crate::shard::{Mailbox, OutMsg, Shard};
use crate::stats::{RunResult, StatsCollector};
use crate::telemetry::{
    MemorySink, SwitchTelemetry, TelemetryOpts, TelemetryReport, TelemetrySample, TelemetrySink,
    TelemetryState, TELEMETRY_SCHEMA_VERSION,
};
use crate::trace::{PacketTrace, TraceOpts, TraceStep, Tracer};
use iba_core::{HostId, IbaError, PacketId, PortIndex, SimTime, SwitchId};
use iba_engine::{conservative_window, SpinBarrier};
use iba_routing::{EscapeEngine, FaRouting, UpDownRouting};
use iba_stats::{LogHistogram, MetricsRegistry};
use iba_topology::{Partition, Topology};
use iba_workloads::{FaultSchedule, TrafficScript, WorkloadSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An IBA subnet simulation: one shard stepping serially, or several
/// shards advancing in conservative lookahead windows (see the module
/// docs for the execution model).
pub struct Network<'a, E: EscapeEngine = UpDownRouting> {
    topo: &'a Topology,
    routing: &'a FaRouting<E>,
    config: SimConfig,
    /// `None` selects the serial engine; `Some` the parallel engine.
    partition: Option<Arc<Partition>>,
    /// Worker threads for the parallel engine (1 = run windows inline).
    threads: usize,
    shards: Vec<Shard<'a, E>>,
    /// Whether the one-shot parallel observer merge has run.
    finalized: bool,
    /// The user's telemetry sink in parallel mode (shards record into
    /// private `MemorySink`s; the merge feeds this one).
    par_sink: Option<Box<dyn TelemetrySink>>,
    /// The merged journey recorder in parallel mode (built by the
    /// observer merge from the shard-local tracers).
    merged_tracer: Option<Tracer>,
    trace_opts: Option<TraceOpts>,
    /// Whether engine profiling (the `.metrics()` builder option) is
    /// armed; the deterministic half of [`Self::metrics_registry`]
    /// works without it.
    metrics_enabled: bool,
    /// Accumulated engine profile, populated by the run loops when
    /// `metrics_enabled`.
    profile: Option<Box<EngineProfile>>,
}

/// The one construction path for [`Network`]: topology and routing up
/// front, then a traffic source (synthetic [`WorkloadSpec`] or replayed
/// [`TrafficScript`]), a [`SimConfig`], and the optional subsystems —
/// faults, journey tracing, telemetry, sharding — as builder options
/// instead of bolted-on constructors and post-construction mutators.
///
/// ```
/// # use iba_topology::IrregularConfig;
/// # use iba_routing::{FaRouting, RoutingConfig};
/// # use iba_sim::{Network, SimConfig, TelemetryOpts};
/// # use iba_workloads::WorkloadSpec;
/// let topo = IrregularConfig::paper(8, 1).generate().unwrap();
/// let routing = FaRouting::build(&topo, RoutingConfig::two_options()).unwrap();
/// let mut net = Network::builder(&topo, &routing)
///     .workload(WorkloadSpec::uniform32(0.005))
///     .config(SimConfig::test(7))
///     .telemetry(TelemetryOpts::every_ns(1_000))
///     .build()
///     .unwrap();
/// let result = net.run();
/// assert!(result.delivered > 0);
/// ```
pub struct NetworkBuilder<'a, E: EscapeEngine = UpDownRouting> {
    topo: &'a Topology,
    routing: &'a FaRouting<E>,
    workload: Option<WorkloadSpec>,
    script: Option<&'a TrafficScript>,
    config: Option<SimConfig>,
    faults: Option<(&'a FaultSchedule, RecoveryPolicy, u64)>,
    corruption: Option<f64>,
    trace: Option<TraceOpts>,
    telemetry: Option<(TelemetryOpts, Box<dyn TelemetrySink>)>,
    recorder: Option<RecorderOpts>,
    fib_ways: Option<usize>,
    shards: Option<usize>,
    threads: Option<usize>,
    metrics: bool,
}

/// The single serial-only guard for [`RecoveryPolicy::SmResweep`]: the
/// re-sweep installs tables fabric-atomically, which the conservative
/// windows of the parallel engine cannot express. [`NetworkBuilder::build`]
/// routes through this one predicate for every engine instantiation, so
/// the check cannot drift.
fn check_resweep_serial(parallel: bool, policy: RecoveryPolicy) -> Result<(), IbaError> {
    if parallel && policy == RecoveryPolicy::SmResweep {
        return Err(IbaError::InvalidConfig(
            "SmResweep recovery requires the serial engine (shards = 1): \
             the re-sweep installs tables fabric-atomically"
                .into(),
        ));
    }
    Ok(())
}

impl<'a, E: EscapeEngine> NetworkBuilder<'a, E> {
    /// Drive the simulation with synthetic generators (mutually
    /// exclusive with [`Self::script`]).
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// Replay the exact injections of `script` instead of synthetic
    /// generators (mutually exclusive with [`Self::workload`]).
    pub fn script(mut self, script: &'a TrafficScript) -> Self {
        self.script = Some(script);
        self
    }

    /// The simulator configuration (required; see
    /// [`SimConfig::builder`] for validated construction).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Arm a link-fault schedule with the recovery policy answering it.
    /// `resweep_latency_ns` is the modelled duration of one SM re-sweep
    /// (ignored unless the policy is [`RecoveryPolicy::SmResweep`]);
    /// callers wanting a grounded value can time an actual
    /// `ManagedFabric` re-sweep and derive it from the SMP count.
    pub fn faults(
        mut self,
        schedule: &'a FaultSchedule,
        policy: RecoveryPolicy,
        resweep_latency_ns: u64,
    ) -> Self {
        self.faults = Some((schedule, policy, resweep_latency_ns));
        self
    }

    /// Arm transient packet corruption: every packet arriving at a
    /// switch input port independently fails its CRC check with
    /// probability `per_packet_prob` and is dropped (the IBA link layer
    /// has no retransmission; reliability lives in the transport). The
    /// receiver still advertises the freed space back, so corruption
    /// never leaks credits. Draws come from a dedicated RNG substream —
    /// arming corruption does not perturb arbitration or generation.
    pub fn corruption(mut self, per_packet_prob: f64) -> Self {
        self.corruption = Some(per_packet_prob);
        self
    }

    /// Record per-packet journeys (see [`crate::Tracer`]).
    pub fn trace(mut self, opts: TraceOpts) -> Self {
        self.trace = Some(opts);
        self
    }

    /// Arm the telemetry probes with an in-memory sink (retrieve it
    /// after the run through [`Network::telemetry_sink`]).
    pub fn telemetry(self, opts: TelemetryOpts) -> Self {
        self.telemetry_sink(opts, Box::new(MemorySink::new()))
    }

    /// Arm the telemetry probes flushing into `sink` (e.g. a
    /// [`crate::JsonLinesSink`] over a file for experiments).
    pub fn telemetry_sink(mut self, opts: TelemetryOpts, sink: Box<dyn TelemetrySink>) -> Self {
        self.telemetry = Some((opts, sink));
        self
    }

    /// Arm the flight recorder: bounded per-switch event rings, anomaly
    /// triggers, and the stall watchdog (see [`crate::FlightRecorder`]).
    /// Retrieve the dump after the run through [`Network::flight_dump`].
    /// Requires the serial engine (the default [`Self::shards`] of 1).
    pub fn recorder(mut self, opts: RecorderOpts) -> Self {
        self.recorder = Some(opts);
        self
    }

    /// Arm the hot-entry FIB cache: a direct-mapped cache of `ways`
    /// recently routed destinations per switch, in front of the full
    /// forwarding table. Purely observational — cached entries are
    /// shared decodes of the live tables, so results are identical with
    /// and without it; the run gains the [`RunResult::fib_hits`] /
    /// [`RunResult::fib_misses`] counters that size how much table
    /// bandwidth such a cache would absorb. Off by default (a disabled
    /// cache costs one pointer-null check per routing, like the flight
    /// recorder).
    pub fn fib_cache(mut self, ways: usize) -> Self {
        self.fib_ways = Some(ways);
        self
    }

    /// Partition the fabric into `n` shards for parallel execution
    /// (default 1 = the serial engine). Results are deterministic for a
    /// fixed `n` regardless of [`Self::threads`] and the event-queue
    /// backend, and identical across every `n > 1`; `n = 1` is
    /// byte-identical to the historical serial engine. See the module
    /// docs for the subsystems that require `n = 1`.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Worker threads driving the shards (default 1 = execute windows
    /// inline on the calling thread). Only meaningful with
    /// [`Self::shards`] above 1; never affects results.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = Some(t);
        self
    }

    /// Arm engine profiling for the metrics plane: per-worker wall-clock
    /// breakdowns (barrier waits, window execution, mailbox ingest) and
    /// conservative-window shape distributions, retrievable after the
    /// run through [`Network::engine_profile`] and folded into
    /// [`Network::metrics_registry`] under the non-deterministic
    /// `profiling_` namespace. Off by default: the deterministic half of
    /// the metrics registry costs nothing at runtime and works without
    /// this flag; arming it adds a handful of `Instant` reads per
    /// conservative window. Never affects simulation results.
    pub fn metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Assemble the simulation. Fails on a missing config or traffic
    /// source, on both traffic sources at once, on a parallel request
    /// combined with a serial-only subsystem, and on every
    /// inconsistency the individual subsystems check (workload vs
    /// routing tables, fault schedule vs topology, config invariants).
    pub fn build(self) -> Result<Network<'a, E>, IbaError> {
        let config = self.config.ok_or_else(|| {
            IbaError::InvalidConfig(
                "NetworkBuilder: a SimConfig is required (use .config(...))".into(),
            )
        })?;
        let num_shards = self.shards.unwrap_or(1);
        if num_shards == 0 {
            return Err(IbaError::InvalidConfig(
                "NetworkBuilder: at least one shard is required".into(),
            ));
        }
        let threads = self.threads.unwrap_or(1).max(1);
        let (spec, script) = match (self.workload, self.script) {
            (Some(spec), None) => (spec, None),
            (None, Some(script)) => (
                validate_script(self.topo, self.routing, &config, script)?,
                Some(script),
            ),
            (Some(_), Some(_)) => {
                return Err(IbaError::InvalidConfig(
                    "NetworkBuilder: .workload(...) and .script(...) are mutually exclusive".into(),
                ))
            }
            (None, None) => {
                return Err(IbaError::InvalidConfig(
                    "NetworkBuilder: a traffic source is required \
                     (use .workload(...) or .script(...))"
                        .into(),
                ))
            }
        };
        if let Some(p) = self.corruption {
            if !(0.0..=1.0).contains(&p) {
                return Err(IbaError::InvalidConfig(format!(
                    "corruption probability {p} outside [0, 1]"
                )));
            }
        }
        // One boolean decides the engine; the partition exists iff it is
        // set, so `Network::parallel_mode` and these builder checks can
        // never disagree.
        let parallel = num_shards > 1;
        if let Some((_, policy, _)) = self.faults {
            check_resweep_serial(parallel, policy)?;
        }
        let partition = if parallel {
            if script.is_some() {
                return Err(IbaError::InvalidConfig(
                    "trace-driven replay requires the serial engine (shards = 1): \
                     the script cursor is a single global sequence"
                        .into(),
                ));
            }
            if self.recorder.is_some() {
                return Err(IbaError::InvalidConfig(
                    "the flight recorder requires the serial engine (shards = 1): \
                     its rings are globally ordered"
                        .into(),
                ));
            }
            Some(Arc::new(Partition::contiguous(self.topo, num_shards)?))
        } else {
            None
        };

        let mut shards = Vec::with_capacity(num_shards);
        for id in 0..num_shards {
            let mut sh = Shard::new(self.topo, self.routing, spec, config, id, partition.clone())?;
            if let Some(script) = script {
                sh.set_script(script);
            }
            if let Some((schedule, policy, resweep_latency_ns)) = self.faults {
                sh.arm_faults(schedule, policy, resweep_latency_ns)?;
            }
            if let Some(p) = self.corruption {
                sh.corrupt_prob = p;
            }
            if let Some(opts) = self.trace {
                sh.tracer = Some(Tracer::with_opts(opts));
            }
            if let Some(ways) = self.fib_ways {
                if ways == 0 {
                    return Err(IbaError::InvalidConfig(
                        "fib_cache needs at least one way per switch".into(),
                    ));
                }
                sh.fib = Some(Box::new(FibCache::new(self.topo.num_switches(), ways)));
            }
            shards.push(sh);
        }

        let num_switches = self.topo.num_switches();
        let ports = self.topo.ports_per_switch() as usize;
        let mut par_sink = None;
        if let Some((opts, sink)) = self.telemetry {
            if partition.is_some() {
                // Each shard samples only its own switches into a
                // private memory sink; the end-of-run merge splices the
                // slices and feeds the user's sink.
                for sh in shards.iter_mut() {
                    sh.telemetry = Some(Box::new(TelemetryState::new(
                        opts,
                        Box::new(MemorySink::new()),
                        num_switches,
                        ports,
                    )));
                }
                par_sink = Some(sink);
            } else {
                shards[0].telemetry = Some(Box::new(TelemetryState::new(
                    opts,
                    sink,
                    num_switches,
                    ports,
                )));
            }
        }
        if let Some(opts) = self.recorder {
            shards[0].recorder = Some(Box::new(FlightRecorder::new(
                opts,
                num_switches,
                ports,
                config.data_vls as usize,
            )));
        }

        Ok(Network {
            topo: self.topo,
            routing: self.routing,
            config,
            partition,
            threads,
            shards,
            finalized: false,
            par_sink,
            merged_tracer: None,
            trace_opts: self.trace,
            metrics_enabled: self.metrics,
            profile: None,
        })
    }
}

/// The trace-driven-mode validations (script vs topology, routing
/// capabilities, VL separation of alternate paths), returning the
/// placeholder [`WorkloadSpec`] whose packet size mirrors the script's
/// largest packet (only the size participates in buffer validation).
fn validate_script<E: EscapeEngine>(
    topo: &Topology,
    routing: &FaRouting<E>,
    config: &SimConfig,
    script: &TrafficScript,
) -> Result<WorkloadSpec, IbaError> {
    if let Some(max) = script.max_host() {
        if max.index() >= topo.num_hosts() {
            return Err(IbaError::InvalidConfig(format!(
                "script references {max} but the topology has {} hosts",
                topo.num_hosts()
            )));
        }
    }
    if script.uses_adaptive() && routing.config().table_options < 2 {
        return Err(IbaError::InvalidConfig(
            "adaptive script entries require at least 2 routing options".into(),
        ));
    }
    if script.uses_alternate() {
        if !routing.has_apm() {
            return Err(IbaError::InvalidConfig(
                "alternate-path script entries require APM tables \
                 (FaRouting::build_with_apm)"
                    .into(),
            ));
        }
        // The two escape orientations are only jointly deadlock-free
        // on disjoint virtual lanes: every SL used by alternate
        // entries must map to a different VL than every primary SL.
        let (primary, alternate) = script.sls_by_path_set();
        let vl_of = |sl: iba_core::ServiceLevel| sl.0 % config.data_vls;
        for a in &alternate {
            if primary.iter().any(|p| vl_of(*p) == vl_of(*a)) {
                return Err(IbaError::InvalidConfig(format!(
                    "alternate-path SL {a} shares a VL with primary traffic; \
                     put the path sets on SLs mapping to disjoint VLs \
                     (data_vls = {})",
                    config.data_vls
                )));
            }
        }
    }
    Ok(WorkloadSpec {
        packet_bytes: script.max_packet_bytes().max(1),
        adaptive_fraction: 0.0,
        ..WorkloadSpec::uniform32(1e-6)
    })
}

/// Canonical ordering of trace steps sharing a timestamp, used when the
/// observer merge splices one packet's steps recorded by different
/// shards.
fn step_rank(s: &TraceStep) -> u8 {
    match s {
        TraceStep::Generated { .. } => 0,
        TraceStep::Injected => 1,
        TraceStep::ArrivedAt { .. } => 2,
        TraceStep::Forwarded { .. } => 3,
        TraceStep::Dropped { .. } => 4,
        TraceStep::Delivered { .. } => 5,
    }
}

impl<'a, E: EscapeEngine> Network<'a, E> {
    /// Start building a simulation over `topo` with `routing` tables —
    /// see [`NetworkBuilder`] for the options.
    pub fn builder(topo: &'a Topology, routing: &'a FaRouting<E>) -> NetworkBuilder<'a, E> {
        NetworkBuilder {
            topo,
            routing,
            workload: None,
            script: None,
            config: None,
            faults: None,
            corruption: None,
            trace: None,
            telemetry: None,
            recorder: None,
            fib_ways: None,
            shards: None,
            threads: None,
            metrics: false,
        }
    }

    /// The workload driving the simulation.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.shards[0].spec
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current simulated time (in the parallel engine: the furthest
    /// shard clock — shard clocks never differ by more than one
    /// conservative window).
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.queue.now())
            .max()
            .expect("at least one shard")
    }

    /// Number of shards the fabric is partitioned into (1 = serial).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether the parallel engine is driving the run — the predicate
    /// every serial-only guard keys on (`partition` exists iff the
    /// builder saw `shards(n > 1)`).
    pub fn parallel_mode(&self) -> bool {
        self.partition.is_some()
    }

    /// Whether the hot-entry FIB cache is armed.
    pub fn fib_cache_enabled(&self) -> bool {
        self.shards[0].fib.is_some()
    }

    /// Number of links currently down.
    pub fn active_faults(&self) -> usize {
        // Fault events are replicated: every shard applies every fault,
        // so shard 0's count is the fabric's.
        self.shards[0].active_faults
    }

    /// Whether SM recovery tables (rather than the primary tables) are
    /// currently live.
    pub fn recovery_installed(&self) -> bool {
        self.shards[0].recovery_routing.is_some()
    }

    /// Recorded journeys (empty unless tracing was enabled; in the
    /// parallel engine, available after the run has finished).
    pub fn tracer(&self) -> Option<&Tracer> {
        if self.partition.is_none() {
            self.shards[0].tracer.as_ref()
        } else {
            self.merged_tracer.as_ref()
        }
    }

    /// Whether the telemetry probes are armed.
    pub fn telemetry_enabled(&self) -> bool {
        self.shards[0].telemetry.is_some()
    }

    /// The telemetry sink, once armed through the builder. The report is
    /// flushed into it when the run ends; with the default
    /// [`MemorySink`], downcast through
    /// [`TelemetrySink::as_memory`] to read the recorded samples.
    pub fn telemetry_sink(&self) -> Option<&dyn TelemetrySink> {
        if self.partition.is_none() {
            self.shards[0].telemetry.as_deref().map(|t| t.sink())
        } else {
            self.par_sink.as_deref()
        }
    }

    /// Whether the flight recorder is armed.
    pub fn recorder_enabled(&self) -> bool {
        self.shards[0].recorder.is_some()
    }

    /// The flight recorder, once armed through the builder.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.shards[0].recorder.as_deref()
    }

    /// Drain the flight recorder into an exportable [`FlightDump`]
    /// (`None` unless the recorder was armed through the builder).
    pub fn flight_dump(&self) -> Option<FlightDump> {
        self.shards[0].recorder.as_deref().map(|r| {
            r.dump(
                self.topo.num_switches(),
                self.topo.ports_per_switch() as usize,
                self.config.data_vls as usize,
            )
        })
    }

    /// The shard owning switch `si` (0 in the serial engine).
    #[inline]
    fn shard_for_switch(&self, si: usize) -> usize {
        self.partition
            .as_deref()
            .map_or(0, |p| p.shard_of_switch(SwitchId(si as u16)))
    }

    /// The shard owning host `hi` (0 in the serial engine).
    #[inline]
    fn shard_for_host(&self, hi: usize) -> usize {
        self.partition
            .as_deref()
            .map_or(0, |p| p.shard_of_host(HostId(hi as u16)))
    }

    /// Test hook: zero the sender-side credit counters of one output
    /// port without marking the link down. Nothing can be forwarded
    /// through the port (and, with nothing in flight, no credits ever
    /// return), which wedges any buffer whose packets have no other
    /// feasible option — the credit-withholding flavour of a fabric
    /// wedge, as opposed to the dead-escape-link flavour.
    #[doc(hidden)]
    pub fn debug_block_output(&mut self, sw: SwitchId, port: PortIndex) {
        let sid = self.shard_for_switch(sw.index());
        self.shards[sid].debug_block_output(sw, port);
    }

    /// Test hook: run an escape certification against an arbitrary
    /// next-hop function through the production stats path, so the
    /// failure-counting plumbing can be exercised with a deliberately
    /// cyclic table.
    #[doc(hidden)]
    pub fn debug_certify_with(&mut self, next_hop: impl Fn(SwitchId, HostId) -> Option<PortIndex>) {
        self.shards[0].debug_certify_with(next_hop);
    }

    /// Run until the measurement horizon, returning the per-run result.
    pub fn run(&mut self) -> RunResult {
        let horizon = self.config.horizon();
        for sh in self.shards.iter_mut() {
            sh.prime();
        }
        let wall_start = std::time::Instant::now();
        if self.partition.is_none() {
            let max_events = self.config.max_events;
            let num_switches = self.topo.num_switches();
            let sh = &mut self.shards[0];
            while sh.queue.events_processed() < max_events {
                if !sh.step_until(horizon) {
                    break;
                }
            }
            if let Some(t) = sh.telemetry.as_deref_mut() {
                t.flush();
            }
            let result = sh.stats.finish(
                num_switches,
                sh.queue.events_processed(),
                wall_start.elapsed(),
            );
            self.note_serial_profile(wall_start.elapsed());
            return result;
        }
        self.execute_windows(horizon, self.config.max_events);
        self.finalize_observers();
        let events = self.total_events();
        self.merged_result(events, wall_start.elapsed())
    }

    /// Run with generation stopped at `stop_generation`, continuing until
    /// every event has drained (all in-flight packets delivered) or
    /// `hard_deadline` passes. Returns the result and whether the network
    /// fully drained — the deadlock-freedom check used by the test suite.
    pub fn run_until_drained(
        &mut self,
        stop_generation: SimTime,
        hard_deadline: SimTime,
    ) -> (RunResult, bool) {
        for sh in self.shards.iter_mut() {
            sh.gen_deadline = stop_generation;
            sh.prime();
        }
        let wall_start = std::time::Instant::now();
        let (result, drained) = if self.partition.is_none() {
            let max_events = self.config.max_events;
            let num_switches = self.topo.num_switches();
            let sh = &mut self.shards[0];
            let mut drained = true;
            while sh.step_until(hard_deadline) {
                if sh.queue.events_processed() >= max_events {
                    drained = false;
                    break;
                }
            }
            drained &= sh.queue.is_empty();
            if let Some(t) = sh.telemetry.as_deref_mut() {
                t.flush();
            }
            let result = sh.stats.finish(
                num_switches,
                sh.queue.events_processed(),
                wall_start.elapsed(),
            );
            self.note_serial_profile(wall_start.elapsed());
            (result, drained)
        } else {
            let hit_budget = self.execute_windows(hard_deadline, self.config.max_events);
            let drained = !hit_budget && self.shards.iter().all(|s| s.queue.is_empty());
            self.finalize_observers();
            let events = self.total_events();
            (self.merged_result(events, wall_start.elapsed()), drained)
        };
        // Packets dropped at full source queues never entered the fabric,
        // and packets lost on a failed link are resolved, not in flight —
        // every other generated packet must have been delivered.
        let fully_drained = drained
            && result.delivered + result.drops_in_transit == result.generated - result.source_drops;
        (result, fully_drained)
    }

    /// Process up to `max_events` further events (priming the generators
    /// on first use), stopping early at the configured horizon. Returns
    /// the number of events actually processed. A stepping hook for
    /// benchmarks and diagnostics; [`Self::run`] and
    /// [`Self::run_until_drained`] remain the measurement entry points.
    /// The parallel engine steps whole conservative windows, so it may
    /// overshoot `max_events` by up to one window's worth of events.
    pub fn advance(&mut self, max_events: u64) -> u64 {
        let horizon = self.config.horizon();
        for sh in self.shards.iter_mut() {
            sh.prime();
        }
        if self.partition.is_none() {
            let sh = &mut self.shards[0];
            let mut n = 0;
            while n < max_events {
                if !sh.step_until(horizon) {
                    break;
                }
                n += 1;
            }
            return n;
        }
        let before = self.total_events();
        self.execute_windows(horizon, before.saturating_add(max_events));
        self.total_events() - before
    }

    /// One §4.3 arbitration sweep over every switch at the current
    /// simulated time, returning the total number of grants. The
    /// microbenchmark probe for the arbitration hot path; grants made
    /// here reserve resources and schedule downstream events exactly as
    /// in-loop arbitration does.
    pub fn arbitrate_pass(&mut self) -> usize {
        self.shards.iter_mut().map(|s| s.arbitrate_pass()).sum()
    }

    /// Events processed fabric-wide, with parallel-replicated events
    /// (faults, telemetry ticks) counted once — invariant in the shard
    /// count.
    fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.counted_events()).sum()
    }

    /// Run conservative lookahead windows until every queue is drained,
    /// `limit` is passed, or `max_total` fabric-wide events have been
    /// processed. Returns whether the event budget stopped the run.
    fn execute_windows(&mut self, limit: SimTime, max_total: u64) -> bool {
        let lookahead = self.config.phys.propagation_ns;
        let limit_ns = limit.as_ns();
        let nshards = self.shards.len();
        let workers_req = self.threads.min(nshards).max(1);

        if workers_req == 1 {
            // Inline execution: same window protocol, no threads.
            let mut prof = self.metrics_enabled.then(|| EngineProfile {
                shards: nshards,
                workers: 1,
                ..EngineProfile::default()
            });
            let started = std::time::Instant::now();
            let mut prev_total: Option<u64> = None;
            let hit_budget = loop {
                let total = self.total_events();
                if let (Some(p), Some(prev)) = (prof.as_mut(), prev_total) {
                    p.events_per_window.record(total - prev);
                }
                prev_total = Some(total);
                if total >= max_total {
                    break true;
                }
                let next: Vec<u64> = self.shards.iter().map(|s| s.next_time_ns()).collect();
                let Some(w) = conservative_window(&next, lookahead) else {
                    break false;
                };
                if w.start_ns > limit_ns {
                    break false;
                }
                if let Some(p) = prof.as_mut() {
                    p.windows += 1;
                    p.window_width_ns.record(w.end_ns - w.start_ns);
                }
                // `pop_until` is inclusive; the window end is exclusive.
                let exec = SimTime::from_ns((w.end_ns - 1).min(limit_ns));
                let mut msgs: Vec<OutMsg> = Vec::new();
                for sh in self.shards.iter_mut() {
                    sh.run_window(exec);
                    msgs.append(&mut sh.take_outbox());
                }
                if let Some(p) = prof.as_mut() {
                    p.mailbox_msgs += msgs.len() as u64;
                }
                for m in msgs {
                    self.shards[m.dst].enqueue_remote(m.at, m.key, m.ev);
                }
            };
            if let Some(mut p) = prof {
                p.wall_ns = started.elapsed().as_nanos() as u64;
                p.worker_profiles.push(WorkerProfile {
                    worker: 0,
                    shards: nshards,
                    run_ns: p.wall_ns,
                    mailbox_msgs: p.mailbox_msgs,
                    ..WorkerProfile::default()
                });
                self.absorb_profile(p);
            }
            return hit_budget;
        }

        // Threaded execution. Shards are split into contiguous chunks,
        // one worker per chunk; `workers` is recomputed from the chunk
        // size so the barrier matches the number of threads actually
        // spawned (e.g. 4 shards over 3 requested threads → chunks of 2
        // → 2 workers).
        let chunk = nshards.div_ceil(workers_req);
        let workers = nshards.div_ceil(chunk);
        let mailboxes: Vec<Mailbox> = (0..nshards).map(|_| Mutex::new(Vec::new())).collect();
        let next_times: Vec<AtomicU64> = self
            .shards
            .iter()
            .map(|s| AtomicU64::new(s.next_time_ns()))
            .collect();
        let counted: Vec<AtomicU64> = self
            .shards
            .iter()
            .map(|s| AtomicU64::new(s.counted_events()))
            .collect();
        let barrier = SpinBarrier::new(workers);
        let hit_budget = AtomicBool::new(false);
        // Shared profile the workers fold their fragments into at exit
        // (None = profiling off; the hot loop then only tests a bool).
        let prof_collect: Option<Mutex<EngineProfile>> = self.metrics_enabled.then(|| {
            Mutex::new(EngineProfile {
                shards: nshards,
                workers,
                ..EngineProfile::default()
            })
        });
        let started = std::time::Instant::now();

        std::thread::scope(|scope| {
            for (wi, chunk_shards) in self.shards.chunks_mut(chunk).enumerate() {
                let mailboxes = &mailboxes;
                let next_times = &next_times;
                let counted = &counted;
                let barrier = &barrier;
                let hit_budget = &hit_budget;
                let prof_collect = &prof_collect;
                let base = wi * chunk;
                scope.spawn(move || {
                    let metrics = prof_collect.is_some();
                    let mut wp = WorkerProfile {
                        worker: wi,
                        shards: chunk_shards.len(),
                        ..WorkerProfile::default()
                    };
                    // Window-shape observations are identical in every
                    // worker (all compute the same window), so worker 0
                    // records them for the fabric.
                    let mut windows = 0u64;
                    let mut width_hist = LogHistogram::new();
                    let mut epw_hist = LogHistogram::new();
                    let mut prev_total: Option<u64> = None;
                    loop {
                        // Decide: every worker reads the same published
                        // values (stores precede barrier B, reads follow
                        // it), computes the same window, and therefore
                        // takes the same branch — no worker can strand
                        // another at a barrier.
                        let total: u64 = counted.iter().map(|c| c.load(Ordering::Acquire)).sum();
                        if metrics && wi == 0 {
                            if let Some(prev) = prev_total {
                                epw_hist.record(total - prev);
                            }
                            prev_total = Some(total);
                        }
                        if total >= max_total {
                            hit_budget.store(true, Ordering::Release);
                            break;
                        }
                        let next: Vec<u64> = next_times
                            .iter()
                            .map(|t| t.load(Ordering::Acquire))
                            .collect();
                        let Some(w) = conservative_window(&next, lookahead) else {
                            break;
                        };
                        if w.start_ns > limit_ns {
                            break;
                        }
                        if metrics && wi == 0 {
                            windows += 1;
                            width_hist.record(w.end_ns - w.start_ns);
                        }
                        let exec = SimTime::from_ns((w.end_ns - 1).min(limit_ns));
                        let t_run = metrics.then(std::time::Instant::now);
                        for sh in chunk_shards.iter_mut() {
                            sh.run_window(exec);
                            sh.flush_outbox(mailboxes);
                        }
                        if let Some(t) = t_run {
                            wp.run_ns += t.elapsed().as_nanos() as u64;
                        }
                        let t_a = metrics.then(std::time::Instant::now);
                        barrier.wait(); // A: every outbox flushed
                        if let Some(t) = t_a {
                            wp.barrier_a_wait_ns += t.elapsed().as_nanos() as u64;
                        }
                        let t_ingest = metrics.then(std::time::Instant::now);
                        for (i, sh) in chunk_shards.iter_mut().enumerate() {
                            let msgs = std::mem::take(
                                &mut *mailboxes[base + i].lock().expect("mailbox poisoned"),
                            );
                            if metrics {
                                wp.mailbox_msgs += msgs.len() as u64;
                            }
                            sh.ingest(msgs);
                            next_times[base + i].store(sh.next_time_ns(), Ordering::Release);
                            counted[base + i].store(sh.counted_events(), Ordering::Release);
                        }
                        if let Some(t) = t_ingest {
                            wp.ingest_ns += t.elapsed().as_nanos() as u64;
                        }
                        let t_b = metrics.then(std::time::Instant::now);
                        barrier.wait(); // B: every ingest published
                        if let Some(t) = t_b {
                            wp.barrier_b_wait_ns += t.elapsed().as_nanos() as u64;
                        }
                    }
                    if let Some(pc) = prof_collect.as_ref() {
                        let frag = EngineProfile {
                            windows,
                            window_width_ns: width_hist,
                            events_per_window: epw_hist,
                            mailbox_msgs: wp.mailbox_msgs,
                            worker_profiles: vec![wp],
                            ..EngineProfile::default()
                        };
                        pc.lock().expect("profile poisoned").absorb(&frag);
                    }
                });
            }
        });
        if let Some(pc) = prof_collect {
            let mut p = pc.into_inner().expect("profile poisoned");
            p.wall_ns = started.elapsed().as_nanos() as u64;
            self.absorb_profile(p);
        }
        hit_budget.load(Ordering::Acquire)
    }

    /// Fold a profile fragment from one engine invocation into the
    /// network's accumulated profile.
    fn absorb_profile(&mut self, frag: EngineProfile) {
        match self.profile.as_deref_mut() {
            Some(p) => p.absorb(&frag),
            None => self.profile = Some(Box::new(frag)),
        }
    }

    /// Record a serial run into the profile (when `.metrics()` is
    /// armed): one worker, no windows, no barriers — the whole wall
    /// time is window execution.
    fn note_serial_profile(&mut self, wall: Duration) {
        if !self.metrics_enabled {
            return;
        }
        let wall_ns = wall.as_nanos() as u64;
        self.absorb_profile(EngineProfile {
            shards: 1,
            workers: 1,
            wall_ns,
            worker_profiles: vec![WorkerProfile {
                worker: 0,
                shards: 1,
                run_ns: wall_ns,
                ..WorkerProfile::default()
            }],
            ..EngineProfile::default()
        });
    }

    /// The accumulated engine profile (`None` unless `.metrics()` was
    /// armed and a run has executed).
    pub fn engine_profile(&self) -> Option<&EngineProfile> {
        self.profile.as_deref()
    }

    /// Whether engine profiling (`.metrics()`) is armed.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_enabled
    }

    /// Build the fabric-wide [`MetricsRegistry`] for a finished run:
    /// deterministic outcome counters and latency histograms from
    /// `result` and the (merged) collectors, per-VL occupancy gauges
    /// from the last telemetry snapshot (when telemetry was armed with
    /// a memory sink), and — when `.metrics()` was armed — the engine
    /// profile under the non-deterministic `profiling_` namespace.
    ///
    /// Everything outside that namespace is bit-identical across
    /// event-queue backends and (for the parallel engine) shard counts;
    /// [`MetricsRegistry::digest`] covers exactly that deterministic
    /// half.
    pub fn metrics_registry(&self, result: &RunResult) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        if self.partition.is_none() {
            fill_run_metrics(&mut reg, result, &self.shards[0].stats);
        } else {
            let mut merged = StatsCollector::new(
                self.config.warmup,
                self.config.horizon(),
                self.topo.num_hosts(),
                self.routing.lid_map().table_len(),
            );
            for sh in &self.shards {
                merged.merge(&sh.stats);
            }
            fill_run_metrics(&mut reg, result, &merged);
        }
        if let Some(mem) = self.telemetry_sink().and_then(|s| s.as_memory()) {
            if let Some(sample) = mem.samples().last() {
                for o in &sample.occupancy {
                    let sw = o.sw.index().to_string();
                    let vl = o.vl.0.to_string();
                    reg.set_gauge(
                        "iba_sim_vl_occupancy_credits",
                        &[("region", "adaptive"), ("sw", &sw), ("vl", &vl)],
                        o.adaptive.0 as f64,
                    );
                    reg.set_gauge(
                        "iba_sim_vl_occupancy_credits",
                        &[("region", "escape"), ("sw", &sw), ("vl", &vl)],
                        o.escape.0 as f64,
                    );
                    reg.set_gauge(
                        "iba_sim_vl_occupancy_peak_credits",
                        &[("sw", &sw), ("vl", &vl)],
                        o.peak.0 as f64,
                    );
                }
            }
        }
        if let Some(p) = self.profile.as_deref() {
            p.record_metrics(&mut reg);
        }
        reg
    }

    /// Flush shard telemetry and, in the parallel engine, run the
    /// one-shot observer merge: splice per-shard occupancy samples into
    /// fabric-wide samples for the user's sink, absorb per-shard switch
    /// accumulations into one report, and union the shard tracers.
    fn finalize_observers(&mut self) {
        for sh in self.shards.iter_mut() {
            if let Some(t) = sh.telemetry.as_deref_mut() {
                t.flush();
            }
        }
        if self.partition.is_none() || self.finalized {
            return;
        }
        self.finalized = true;

        if let Some(sink) = self.par_sink.as_deref_mut() {
            let shard_sinks: Vec<&MemorySink> = self
                .shards
                .iter()
                .filter_map(|s| s.telemetry.as_deref())
                .map(|t| {
                    t.sink()
                        .as_memory()
                        .expect("parallel shards use memory sinks")
                })
                .collect();
            let n_samples = shard_sinks
                .iter()
                .map(|m| m.samples().len())
                .max()
                .unwrap_or(0);
            for k in 0..n_samples {
                let mut at = None;
                let mut occupancy = Vec::new();
                for ms in &shard_sinks {
                    if let Some(sample) = ms.samples().get(k) {
                        at.get_or_insert(sample.at);
                        occupancy.extend_from_slice(&sample.occupancy);
                    }
                }
                occupancy.sort_by_key(|o| (o.sw.0, o.vl.0));
                sink.on_sample(&TelemetrySample {
                    at: at.expect("nonempty sample index"),
                    occupancy,
                });
            }
            if !shard_sinks.is_empty() {
                let r0 = shard_sinks[0].report().expect("telemetry flushed");
                let ports = self.topo.ports_per_switch() as usize;
                let mut switches: Vec<SwitchTelemetry> = (0..self.topo.num_switches())
                    .map(|s| SwitchTelemetry::new(SwitchId(s as u16), ports))
                    .collect();
                for ms in &shard_sinks {
                    for st in &ms.report().expect("telemetry flushed").switches {
                        switches[st.sw.index()].absorb(st);
                    }
                }
                let merged = TelemetryReport {
                    schema_version: TELEMETRY_SCHEMA_VERSION,
                    sample_every_ns: r0.sample_every_ns,
                    samples_taken: r0.samples_taken,
                    samples_dropped: r0.samples_dropped,
                    switches,
                };
                sink.on_report(&merged);
            }
        }

        if let Some(opts) = self.trace_opts {
            // Each shard records the steps it executed for a sampled
            // packet; a journey crossing shards is split across tracers.
            // Union the steps per packet and re-sort by (time, step
            // kind) — the canonical order a single-queue run would have
            // recorded them in.
            let mut all: HashMap<PacketId, PacketTrace> = HashMap::new();
            for sh in &self.shards {
                if let Some(tr) = sh.tracer.as_ref() {
                    for (id, t) in tr.traces() {
                        all.entry(*id)
                            .or_default()
                            .steps
                            .extend(t.steps.iter().cloned());
                    }
                }
            }
            let mut merged = Tracer::with_opts(opts);
            for (id, mut t) in all {
                t.steps.sort_by_key(|s| (s.0, step_rank(&s.1)));
                merged.insert(id, t);
            }
            self.merged_tracer = Some(merged);
        }
    }

    /// The run result: shard 0's collector in the serial engine, the
    /// deterministic merge of every shard's collector in the parallel
    /// engine.
    fn merged_result(&self, events: u64, wall: Duration) -> RunResult {
        if self.partition.is_none() {
            return self.shards[0]
                .stats
                .finish(self.topo.num_switches(), events, wall);
        }
        let mut merged = StatsCollector::new(
            self.config.warmup,
            self.config.horizon(),
            self.topo.num_hosts(),
            self.routing.lid_map().table_len(),
        );
        for sh in &self.shards {
            merged.merge(&sh.stats);
        }
        merged.finish(self.topo.num_switches(), events, wall)
    }

    /// Whether every buffer is empty, every credit counter restored to
    /// capacity and every source queue empty — the quiescence invariant
    /// after a full drain. Each entity is checked in its owning shard
    /// (the only shard whose copy of that state advances).
    pub fn is_quiescent(&self) -> bool {
        (0..self.topo.num_switches())
            .all(|si| self.shards[self.shard_for_switch(si)].switch_quiescent(si))
            && (0..self.topo.num_hosts())
                .all(|hi| self.shards[self.shard_for_host(hi)].host_quiescent(hi))
    }

    /// Packets still resident in the fabric: everything buffered in
    /// switch VL buffers plus everything waiting in host source queues.
    /// After a drain this is exactly the `in-flight` term of the
    /// conservation invariant `generated = delivered + dropped +
    /// in-flight`.
    pub fn residual_packets(&self) -> usize {
        (0..self.topo.num_switches())
            .map(|si| self.shards[self.shard_for_switch(si)].switch_residual(si))
            .sum::<usize>()
            + (0..self.topo.num_hosts())
                .map(|hi| self.shards[self.shard_for_host(hi)].host_residual(hi))
                .sum::<usize>()
    }

    /// Per-VL credit-conservation audit: after a full drain every
    /// sender-side counter on a *live* link and every host counter on a
    /// live attachment must be back at capacity. Returns one
    /// human-readable line per violation (empty means conserved); ports
    /// still masked by an open fault window are skipped, since their
    /// counters are only re-synchronized when the link retrains.
    pub fn credit_audit(&self) -> Vec<String> {
        let mut out = Vec::new();
        for si in 0..self.topo.num_switches() {
            self.shards[self.shard_for_switch(si)].audit_switch_into(si, &mut out);
        }
        for hi in 0..self.topo.num_hosts() {
            self.shards[self.shard_for_host(hi)].audit_host_into(hi, &mut out);
        }
        out
    }

    /// Per-(switch, output port) link utilization: cumulative
    /// transmission time divided by elapsed simulated time. A congestion
    /// probe — under pure up\*/down\* routing the ports around the tree
    /// root run visibly hotter than the rest (the §5.2.1 effect).
    pub fn port_utilization(&self) -> Vec<Vec<f64>> {
        let elapsed = self.now().as_ns().max(1) as f64;
        (0..self.topo.num_switches())
            .map(|si| {
                self.shards[self.shard_for_switch(si)]
                    .port_busy_row(si)
                    .into_iter()
                    .map(|busy| busy as f64 / elapsed)
                    .collect()
            })
            .collect()
    }

    /// Mean utilization of a switch's inter-switch links.
    pub fn switch_link_utilization(&self, s: SwitchId) -> f64 {
        let util = &self.port_utilization()[s.index()];
        let mut sum = 0.0;
        let mut n = 0usize;
        for (p, u) in util.iter().enumerate() {
            let is_switch_link = self
                .topo
                .endpoint(s, PortIndex(p as u8))
                .is_some_and(|ep| ep.node.is_switch());
            if is_switch_link {
                sum += u;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}
