//! Simulation configuration.

use crate::buffer::EscapeOrderPolicy;
use iba_core::{Credits, IbaError, PhysParams, SimTime};
use iba_engine::QueueBackend;
use serde::{Deserialize, Serialize};

/// How the switch picks among feasible routing options at arbitration
/// time (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Prefer the adaptive option whose downstream adaptive queue has the
    /// most free credits ("selecting the output port with more buffer
    /// space"); fall back to the escape option. The paper's evaluated
    /// configuration.
    CreditWeighted,
    /// Pick a pseudo-random feasible adaptive option (the "static
    /// selection" alternative of §4.3); fall back to escape.
    RandomAdaptive,
    /// Pick the lowest-numbered feasible adaptive option; fall back to
    /// escape. Cheapest hardware, worst balance — ablation baseline.
    FirstFeasible,
}

/// How the fabric reacts to link faults injected through an
/// [`iba_workloads::FaultSchedule`] (see DESIGN.md §8).
///
/// Under every policy a dead port is masked out of the feasible-option
/// sets at arbitration time, so no packet is *granted* onto a dead link;
/// the policies differ in what, if anything, repairs reachability for
/// destinations whose programmed routes crossed the dead link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No reaction beyond the local masking. Packets whose every
    /// programmed option crosses a dead link stay buffered until the
    /// link returns (or the run ends).
    None,
    /// Automatic Path Migration: while any link is down, sources address
    /// the APM alternate path set (the second up\*/down\* orientation) so
    /// *new* traffic avoids the primary tree without SM involvement.
    /// Requires tables built with `FaRouting::build_with_apm`.
    ApmMigrate,
    /// Subnet-manager re-sweep: a configurable latency after each fault
    /// event, the SM installs routing rebuilt on the degraded topology
    /// (re-discovery plus LFT reprogramming, modelled as one
    /// deterministic delay) and already-buffered packets are re-routed
    /// against the new tables.
    SmResweep,
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Physical-layer timing.
    pub phys: PhysParams,
    /// Number of data virtual lanes in use (the paper's evaluation keeps
    /// the adaptive/escape machinery inside a single VL).
    pub data_vls: u8,
    /// Capacity of each VL input buffer, in 64-byte credits (`C_max`).
    /// Each logical half must hold at least one MTU packet (§4.4).
    pub vl_buffer_credits: Credits,
    /// Routing-option selection policy.
    pub selection: SelectionPolicy,
    /// In-order guard flavour for the escape read point.
    pub escape_order: EscapeOrderPolicy,
    /// Whether a packet read from the escape head may still use adaptive
    /// options (the options are in its header either way). Disabling
    /// forces escape-head reads onto the escape path — ablation knob.
    pub adaptive_from_escape_head: bool,
    /// Warm-up period: packets generated before this time do not enter
    /// the latency statistics.
    pub warmup: SimTime,
    /// Measurement window length after warm-up. Accepted traffic is the
    /// bytes delivered inside the window divided by its length.
    pub measure_window: SimTime,
    /// Source-queue capacity per host: `None` models the paper's
    /// open-loop unbounded queues; `Some(n)` models a finite CA send
    /// queue — packets generated against a full queue are *dropped* and
    /// counted in [`crate::RunResult::source_drops`].
    pub host_queue_capacity: Option<usize>,
    /// Which priority-queue implementation drives the event loop. The
    /// result of a run is bit-identical across backends (both honour the
    /// `(time, insertion order)` contract); only wall-clock speed
    /// differs.
    pub queue_backend: QueueBackend,
    /// Hard event-count ceiling (guards runaway configurations).
    pub max_events: u64,
    /// Experiment seed (drives topology-independent randomness: arrival
    /// processes, destinations, marking, arbitration tie-breaks).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's configuration (§5.1) with a 1 KiB VL buffer
    /// (16 credits — each logical half holds one 256 B MTU packet with
    /// headroom; the paper does not state the size, see DESIGN.md).
    pub fn paper(seed: u64) -> SimConfig {
        SimConfig {
            phys: PhysParams::paper_1x(),
            data_vls: 1,
            vl_buffer_credits: Credits(16),
            selection: SelectionPolicy::CreditWeighted,
            escape_order: EscapeOrderPolicy::DeterministicFifo,
            adaptive_from_escape_head: true,
            host_queue_capacity: None,
            warmup: SimTime::from_us(60),
            measure_window: SimTime::from_us(240),
            queue_backend: QueueBackend::BinaryHeap,
            max_events: 400_000_000,
            seed,
        }
    }

    /// A small/fast configuration for unit and integration tests.
    pub fn test(seed: u64) -> SimConfig {
        SimConfig {
            warmup: SimTime::from_us(10),
            measure_window: SimTime::from_us(40),
            max_events: 20_000_000,
            ..SimConfig::paper(seed)
        }
    }

    /// A validating builder, starting from [`SimConfig::paper`]`(seed)`.
    /// Settings are checked at [`SimConfigBuilder::build`] time, so an
    /// inconsistent configuration fails where it is written rather than
    /// deep inside network construction.
    pub fn builder(seed: u64) -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::paper(seed),
        }
    }

    /// End of the measurement window (the simulation horizon).
    pub fn horizon(&self) -> SimTime {
        self.warmup.plus_ns(self.measure_window.as_ns())
    }

    /// Validate the workload-independent invariants: physical timing,
    /// VL count, non-empty measurement window. The packet-size
    /// cross-checks need the workload and live in [`Self::validate`].
    pub fn validate_self(&self) -> Result<(), IbaError> {
        self.phys.validate()?;
        if self.data_vls == 0 || self.data_vls > 15 {
            return Err(IbaError::InvalidConfig(format!(
                "data VL count {} outside 1..=15",
                self.data_vls
            )));
        }
        if self.measure_window == SimTime::ZERO {
            return Err(IbaError::InvalidConfig("empty measurement window".into()));
        }
        Ok(())
    }

    /// Validate the configuration against `mtu` (the largest packet the
    /// workload will inject).
    pub fn validate(&self, max_packet_bytes: u32) -> Result<(), IbaError> {
        self.validate_self()?;
        // The escape queue owns the *floor* half of an odd capacity
        // (`Credits::escape_share` uses integer division), so the packet
        // bound must be checked against that smaller half — an odd
        // capacity whose rounded-down escape half cannot hold one packet
        // would deadlock the escape drain.
        let escape_half = Credits(self.vl_buffer_credits.count() / 2);
        let pkt = Credits::for_bytes(max_packet_bytes);
        if pkt > escape_half {
            return Err(IbaError::InvalidConfig(format!(
                "each logical queue (escape half {escape_half}) must hold an entire \
                 packet ({pkt}); increase vl_buffer_credits or reduce the MTU (§4.4)"
            )));
        }
        if max_packet_bytes > self.phys.mtu_bytes {
            return Err(IbaError::InvalidConfig(format!(
                "packet size {} exceeds MTU {}",
                max_packet_bytes, self.phys.mtu_bytes
            )));
        }
        Ok(())
    }
}

/// A validating [`SimConfig`] builder (see [`SimConfig::builder`]).
///
/// Starts from the paper's configuration and overrides field by field;
/// [`Self::build`] runs [`SimConfig::validate_self`] so configuration
/// mistakes surface at construction. The workload-dependent checks
/// (packet vs escape half, MTU) still run when the network is
/// assembled, where the packet size is known.
#[derive(Clone, Copy, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Physical-layer timing.
    pub fn phys(mut self, phys: PhysParams) -> Self {
        self.cfg.phys = phys;
        self
    }

    /// Number of data virtual lanes (1..=15).
    pub fn data_vls(mut self, n: u8) -> Self {
        self.cfg.data_vls = n;
        self
    }

    /// Per-VL buffer capacity in credits (`C_max`).
    pub fn vl_buffer_credits(mut self, c: Credits) -> Self {
        self.cfg.vl_buffer_credits = c;
        self
    }

    /// Output-selection policy (§4.3).
    pub fn selection(mut self, p: SelectionPolicy) -> Self {
        self.cfg.selection = p;
        self
    }

    /// Escape read-point in-order guard flavour.
    pub fn escape_order(mut self, p: EscapeOrderPolicy) -> Self {
        self.cfg.escape_order = p;
        self
    }

    /// Whether escape-head reads may still use adaptive options.
    pub fn adaptive_from_escape_head(mut self, yes: bool) -> Self {
        self.cfg.adaptive_from_escape_head = yes;
        self
    }

    /// Warm-up period before measurement.
    pub fn warmup(mut self, t: SimTime) -> Self {
        self.cfg.warmup = t;
        self
    }

    /// Measurement-window length after warm-up.
    pub fn measure_window(mut self, t: SimTime) -> Self {
        self.cfg.measure_window = t;
        self
    }

    /// Source-queue capacity per host (`None` = unbounded open loop).
    pub fn host_queue_capacity(mut self, cap: Option<usize>) -> Self {
        self.cfg.host_queue_capacity = cap;
        self
    }

    /// Event-queue backend.
    pub fn queue_backend(mut self, b: QueueBackend) -> Self {
        self.cfg.queue_backend = b;
        self
    }

    /// Hard event-count ceiling.
    pub fn max_events(mut self, n: u64) -> Self {
        self.cfg.max_events = n;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SimConfig, IbaError> {
        self.cfg.validate_self()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_for_paper_packet_sizes() {
        let c = SimConfig::paper(0);
        c.validate(32).unwrap();
        c.validate(256).unwrap();
    }

    #[test]
    fn rejects_packet_larger_than_half_buffer() {
        let mut c = SimConfig::paper(0);
        c.vl_buffer_credits = Credits(6); // half = 3 credits = 192 B
        assert!(c.validate(256).is_err());
        assert!(c.validate(192).is_ok());
    }

    #[test]
    fn odd_capacity_is_validated_against_the_escape_half() {
        // C_max = 7: the escape half is floor(7/2) = 3 credits = 192 B,
        // even though the adaptive half (4 credits) could hold 256 B.
        let mut c = SimConfig::paper(0);
        c.vl_buffer_credits = Credits(7);
        assert!(c.validate(256).is_err());
        assert!(c.validate(192).is_ok());
        // C_max = 9: escape half 4 credits = 256 B — one MTU fits exactly.
        c.vl_buffer_credits = Credits(9);
        assert!(c.validate(256).is_ok());
    }

    #[test]
    fn rejects_packet_larger_than_mtu() {
        let mut c = SimConfig::paper(0);
        c.vl_buffer_credits = Credits(64);
        assert!(c.validate(300).is_err()); // MTU is 256
        c.phys.mtu_bytes = 4096;
        assert!(c.validate(300).is_ok());
    }

    #[test]
    fn rejects_bad_vl_counts_and_empty_window() {
        let mut c = SimConfig::paper(0);
        c.data_vls = 0;
        assert!(c.validate(32).is_err());
        let mut c = SimConfig::paper(0);
        c.data_vls = 16;
        assert!(c.validate(32).is_err());
        let mut c = SimConfig::paper(0);
        c.measure_window = SimTime::ZERO;
        assert!(c.validate(32).is_err());
    }

    #[test]
    fn horizon_is_warmup_plus_window() {
        let c = SimConfig::paper(0);
        assert_eq!(c.horizon(), SimTime::from_us(300));
    }

    #[test]
    fn builder_starts_from_paper_and_overrides() {
        let c = SimConfig::builder(7)
            .data_vls(2)
            .vl_buffer_credits(Credits(32))
            .selection(SelectionPolicy::FirstFeasible)
            .max_events(1_000)
            .build()
            .unwrap();
        assert_eq!(c.seed, 7);
        assert_eq!(c.data_vls, 2);
        assert_eq!(c.vl_buffer_credits, Credits(32));
        assert_eq!(c.selection, SelectionPolicy::FirstFeasible);
        assert_eq!(c.max_events, 1_000);
        // Untouched fields keep the paper values.
        assert_eq!(c.warmup, SimConfig::paper(7).warmup);
    }

    #[test]
    fn builder_rejects_invalid_configs_at_build_time() {
        assert!(SimConfig::builder(0).data_vls(0).build().is_err());
        assert!(SimConfig::builder(0).data_vls(16).build().is_err());
        assert!(SimConfig::builder(0)
            .measure_window(SimTime::ZERO)
            .build()
            .is_err());
        assert!(SimConfig::builder(0).build().is_ok());
    }
}
