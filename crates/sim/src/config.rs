//! Simulation configuration.

use crate::buffer::EscapeOrderPolicy;
use iba_core::{Credits, IbaError, PhysParams, SimTime};
use iba_engine::QueueBackend;
use serde::{Deserialize, Serialize};

/// How the switch picks among feasible routing options at arbitration
/// time (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Prefer the adaptive option whose downstream adaptive queue has the
    /// most free credits ("selecting the output port with more buffer
    /// space"); fall back to the escape option. The paper's evaluated
    /// configuration.
    CreditWeighted,
    /// Pick a pseudo-random feasible adaptive option (the "static
    /// selection" alternative of §4.3); fall back to escape.
    RandomAdaptive,
    /// Pick the lowest-numbered feasible adaptive option; fall back to
    /// escape. Cheapest hardware, worst balance — ablation baseline.
    FirstFeasible,
}

/// How the fabric reacts to link faults injected through an
/// [`iba_workloads::FaultSchedule`] (see DESIGN.md §8).
///
/// Under every policy a dead port is masked out of the feasible-option
/// sets at arbitration time, so no packet is *granted* onto a dead link;
/// the policies differ in what, if anything, repairs reachability for
/// destinations whose programmed routes crossed the dead link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No reaction beyond the local masking. Packets whose every
    /// programmed option crosses a dead link stay buffered until the
    /// link returns (or the run ends).
    None,
    /// Automatic Path Migration: while any link is down, sources address
    /// the APM alternate path set (the second up\*/down\* orientation) so
    /// *new* traffic avoids the primary tree without SM involvement.
    /// Requires tables built with `FaRouting::build_with_apm`.
    ApmMigrate,
    /// Subnet-manager re-sweep: a configurable latency after each fault
    /// event, the SM installs routing rebuilt on the degraded topology
    /// (re-discovery plus LFT reprogramming, modelled as one
    /// deterministic delay) and already-buffered packets are re-routed
    /// against the new tables.
    SmResweep,
}

/// Full simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Physical-layer timing.
    pub phys: PhysParams,
    /// Number of data virtual lanes in use (the paper's evaluation keeps
    /// the adaptive/escape machinery inside a single VL).
    pub data_vls: u8,
    /// Capacity of each VL input buffer, in 64-byte credits (`C_max`).
    /// Each logical half must hold at least one MTU packet (§4.4).
    pub vl_buffer_credits: Credits,
    /// Routing-option selection policy.
    pub selection: SelectionPolicy,
    /// In-order guard flavour for the escape read point.
    pub escape_order: EscapeOrderPolicy,
    /// Whether a packet read from the escape head may still use adaptive
    /// options (the options are in its header either way). Disabling
    /// forces escape-head reads onto the escape path — ablation knob.
    pub adaptive_from_escape_head: bool,
    /// Warm-up period: packets generated before this time do not enter
    /// the latency statistics.
    pub warmup: SimTime,
    /// Measurement window length after warm-up. Accepted traffic is the
    /// bytes delivered inside the window divided by its length.
    pub measure_window: SimTime,
    /// Source-queue capacity per host: `None` models the paper's
    /// open-loop unbounded queues; `Some(n)` models a finite CA send
    /// queue — packets generated against a full queue are *dropped* and
    /// counted in [`crate::RunResult::source_drops`].
    pub host_queue_capacity: Option<usize>,
    /// Which priority-queue implementation drives the event loop. The
    /// result of a run is bit-identical across backends (both honour the
    /// `(time, insertion order)` contract); only wall-clock speed
    /// differs.
    pub queue_backend: QueueBackend,
    /// Hard event-count ceiling (guards runaway configurations).
    pub max_events: u64,
    /// Experiment seed (drives topology-independent randomness: arrival
    /// processes, destinations, marking, arbitration tie-breaks).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's configuration (§5.1) with a 1 KiB VL buffer
    /// (16 credits — each logical half holds one 256 B MTU packet with
    /// headroom; the paper does not state the size, see DESIGN.md).
    pub fn paper(seed: u64) -> SimConfig {
        SimConfig {
            phys: PhysParams::paper_1x(),
            data_vls: 1,
            vl_buffer_credits: Credits(16),
            selection: SelectionPolicy::CreditWeighted,
            escape_order: EscapeOrderPolicy::DeterministicFifo,
            adaptive_from_escape_head: true,
            host_queue_capacity: None,
            warmup: SimTime::from_us(60),
            measure_window: SimTime::from_us(240),
            queue_backend: QueueBackend::BinaryHeap,
            max_events: 400_000_000,
            seed,
        }
    }

    /// A small/fast configuration for unit and integration tests.
    pub fn test(seed: u64) -> SimConfig {
        SimConfig {
            warmup: SimTime::from_us(10),
            measure_window: SimTime::from_us(40),
            max_events: 20_000_000,
            ..SimConfig::paper(seed)
        }
    }

    /// End of the measurement window (the simulation horizon).
    pub fn horizon(&self) -> SimTime {
        self.warmup.plus_ns(self.measure_window.as_ns())
    }

    /// Validate the configuration against `mtu` (the largest packet the
    /// workload will inject).
    pub fn validate(&self, max_packet_bytes: u32) -> Result<(), IbaError> {
        self.phys.validate()?;
        if self.data_vls == 0 || self.data_vls > 15 {
            return Err(IbaError::InvalidConfig(format!(
                "data VL count {} outside 1..=15",
                self.data_vls
            )));
        }
        // The escape queue owns the *floor* half of an odd capacity
        // (`Credits::escape_share` uses integer division), so the packet
        // bound must be checked against that smaller half — an odd
        // capacity whose rounded-down escape half cannot hold one packet
        // would deadlock the escape drain.
        let escape_half = Credits(self.vl_buffer_credits.count() / 2);
        let pkt = Credits::for_bytes(max_packet_bytes);
        if pkt > escape_half {
            return Err(IbaError::InvalidConfig(format!(
                "each logical queue (escape half {escape_half}) must hold an entire \
                 packet ({pkt}); increase vl_buffer_credits or reduce the MTU (§4.4)"
            )));
        }
        if max_packet_bytes > self.phys.mtu_bytes {
            return Err(IbaError::InvalidConfig(format!(
                "packet size {} exceeds MTU {}",
                max_packet_bytes, self.phys.mtu_bytes
            )));
        }
        if self.measure_window == SimTime::ZERO {
            return Err(IbaError::InvalidConfig("empty measurement window".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_for_paper_packet_sizes() {
        let c = SimConfig::paper(0);
        c.validate(32).unwrap();
        c.validate(256).unwrap();
    }

    #[test]
    fn rejects_packet_larger_than_half_buffer() {
        let mut c = SimConfig::paper(0);
        c.vl_buffer_credits = Credits(6); // half = 3 credits = 192 B
        assert!(c.validate(256).is_err());
        assert!(c.validate(192).is_ok());
    }

    #[test]
    fn odd_capacity_is_validated_against_the_escape_half() {
        // C_max = 7: the escape half is floor(7/2) = 3 credits = 192 B,
        // even though the adaptive half (4 credits) could hold 256 B.
        let mut c = SimConfig::paper(0);
        c.vl_buffer_credits = Credits(7);
        assert!(c.validate(256).is_err());
        assert!(c.validate(192).is_ok());
        // C_max = 9: escape half 4 credits = 256 B — one MTU fits exactly.
        c.vl_buffer_credits = Credits(9);
        assert!(c.validate(256).is_ok());
    }

    #[test]
    fn rejects_packet_larger_than_mtu() {
        let mut c = SimConfig::paper(0);
        c.vl_buffer_credits = Credits(64);
        assert!(c.validate(300).is_err()); // MTU is 256
        c.phys.mtu_bytes = 4096;
        assert!(c.validate(300).is_ok());
    }

    #[test]
    fn rejects_bad_vl_counts_and_empty_window() {
        let mut c = SimConfig::paper(0);
        c.data_vls = 0;
        assert!(c.validate(32).is_err());
        let mut c = SimConfig::paper(0);
        c.data_vls = 16;
        assert!(c.validate(32).is_err());
        let mut c = SimConfig::paper(0);
        c.measure_window = SimTime::ZERO;
        assert!(c.validate(32).is_err());
    }

    #[test]
    fn horizon_is_warmup_plus_window() {
        let c = SimConfig::paper(0);
        assert_eq!(c.horizon(), SimTime::from_us(300));
    }
}
